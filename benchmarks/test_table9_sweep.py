"""Table 9: missed ARs vs number of watchpoint registers."""

from repro.bench import table9


def test_table9_watchpoint_sweep(once):
    result = once(table9.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
