"""Figure 7: false-positive decay over training iterations."""

from repro.bench import figure7


def test_figure7_training(once):
    result = once(figure7.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
