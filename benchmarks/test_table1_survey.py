"""Table 1: hardware watchpoint survey (static data check)."""

from repro.bench import table1


def test_table1_survey(once):
    table = once(table1.generate)
    print(table.render())
    assert table1.matches_paper()
