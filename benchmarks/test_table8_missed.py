"""Table 8: ARs missed due to watchpoint exhaustion."""

from repro.bench import table8


def test_table8_missed_ars(once):
    result = once(table8.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
