"""Table 7: false positives and watchpoint trap rates."""

from repro.bench import table7


def test_table7_false_positives(once):
    result = once(table7.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
