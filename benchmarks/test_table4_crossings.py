"""Table 4: kernel domain crossings per second."""

from repro.bench import table4


def test_table4_crossings(once):
    result = once(table4.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
    # the optimizations must cut crossings substantially (paper: 41%)
    assert result.average_optimized_reduction() > 0.25
