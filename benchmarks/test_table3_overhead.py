"""Table 3: run-time overhead across optimization levels and modes."""

from repro.bench import table3


def test_table3_overhead(once):
    result = once(table3.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
