"""Static pruning pressure study (off vs on per workload)."""

from repro.bench import staticprune


def test_static_prune_pressure(once):
    result = once(staticprune.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
    # every workload keeps some statically provable ARs to prune
    for app, (safe, total) in result.static_counts.items():
        assert 0 < safe < total, (app, safe, total)
