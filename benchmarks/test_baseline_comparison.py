"""Kivati vs per-access software instrumentation (Sections 1 and 5)."""

from repro.bench import baseline


def test_baseline_comparison(once):
    result = once(baseline.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
