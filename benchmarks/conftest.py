"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark regenerates one table or figure from the paper, prints it
(paper values side by side), and asserts the qualitative shape. The
expensive measurement pass shared by Tables 3/4/5/7/8 is cached across
benchmarks within the session.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once through pytest-benchmark (these are
    whole-experiment harnesses, not microbenchmarks)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
