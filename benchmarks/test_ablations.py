"""Ablations for the DESIGN.md design choices."""

from repro.bench import ablations


def test_ablations(once):
    result = once(ablations.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
