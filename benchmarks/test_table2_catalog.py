"""Table 2: applications and workloads."""

from repro.bench import table2


def test_table2_catalog(once):
    table = once(table2.generate)
    print(table.render())
    assert len(table.rows) == 5
