"""Table 5: request latency for the server workloads."""

from repro.bench import table5


def test_table5_latency(once):
    result = once(table5.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
