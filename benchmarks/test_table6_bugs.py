"""Table 6: time to detect and prevent the 11 corpus bugs."""

from repro.bench import table6


def test_table6_bug_detection(once):
    result = once(table6.generate)
    print(result.render())
    problems = result.check_shape()
    assert not problems, problems
