"""Whitelist training: turn benign violations into a deployable whitelist.

Section 4.2 / Figure 7: Kivati cannot statically tell benign atomicity
violations from buggy ones, so production deployments train a whitelist —
run the workload, mark every violated AR that is not a real bug as
benign, repeat until no new false positives appear. The whitelist file is
shipped to customers and re-read periodically by the runtime.

The last section trains *federated*: each round's seeds are split across
two worker processes, the per-shard observations are merged, and the
result is asserted equal to serial training — the fleet's core
equivalence guarantee, live.

Usage::

    python examples/train_whitelist.py
"""

import os
import tempfile

from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.core.training import train, train_rounds
from repro.fleet import FleetSupervisor, federated_train
from repro.fleet.supervisor import FleetPolicy
from repro.runtime.whitelist import Whitelist, read_whitelist_ids
from repro.workloads.apps.tpcw import build_tpcw


def main():
    workload = build_tpcw(txns=24)
    pp = ProtectedProgram(workload.source)
    print("TPC-W model: %d ARs, %d on synchronization variables"
          % (pp.num_ars, len(pp.sync_ar_ids)))

    print("\n=== training (prevention mode vs bug-finding mode) ===")
    prev = train(pp, bench_config(Mode.PREVENTION, OptLevel.OPTIMIZED),
                 iterations=8)
    bug = train(pp, bench_config(Mode.BUG_FINDING, OptLevel.OPTIMIZED,
                                 pause_probability=0.15),
                iterations=8)
    print("new false positives per iteration (Figure 7):")
    print("  prevention:  %s" % prev.iterations)
    print("  bug-finding: %s" % bug.iterations)
    print("bug-finding flushed out %d benign ARs vs %d in prevention mode"
          % (len(bug.whitelist), len(prev.whitelist)))

    trained = set(prev.whitelist) | set(bug.whitelist)
    path = os.path.join(tempfile.mkdtemp(prefix="kivati-"), "whitelist.txt")
    Whitelist.write_file(path, trained,
                         comment="trained on the TPC-W model")
    print("\nwhitelist written to %s (%d entries)" % (path, len(trained)))

    print("\n=== deploying the whitelist ===")
    before = pp.run(bench_config(Mode.PREVENTION, OptLevel.OPTIMIZED),
                    seed=999)
    after = pp.run(bench_config(Mode.PREVENTION, OptLevel.OPTIMIZED,
                                whitelist_path=path), seed=999)
    print("false positives: %d -> %d"
          % (len(before.violated_ars()), len(after.violated_ars())))
    print("kernel crossings: %d -> %d"
          % (before.stats.crossings(), after.stats.crossings()))
    print("run time: %.3f ms -> %.3f ms"
          % (before.time_ns / 1e6, after.time_ns / 1e6))

    print("\n=== federated training across 2 worker processes ===")
    config = bench_config(Mode.BUG_FINDING, OptLevel.OPTIMIZED,
                          pause_probability=0.15)
    seed_rounds = [[100 + r * 4 + i for i in range(4)] for r in range(3)]
    shard_dir = tempfile.mkdtemp(prefix="kivati-shards-")
    supervisor = FleetSupervisor(
        workers=2,
        policy=FleetPolicy(workers=2, verify=False, collect_journals=False,
                           start_method="fork"))
    fed = federated_train(supervisor, workload.source, config, seed_rounds,
                          shards=2, shard_dir=shard_dir)
    print(fed.describe())
    serial = train_rounds(pp, config, seed_rounds)
    assert fed.whitelist == serial.whitelist, "federated != serial"
    assert fed.iterations == serial.iterations, "per-round FP series differ"
    print("federated whitelist == serial training "
          "(%d ARs, rounds %s)" % (len(fed.whitelist), fed.iterations))
    merged_ids, _, ok = read_whitelist_ids(
        os.path.join(shard_dir, "merged.whitelist"))
    assert ok and merged_ids == set(serial.whitelist)
    print("merged shard files reproduce it too: %s"
          % os.path.join(shard_dir, "merged.whitelist"))


if __name__ == "__main__":
    main()
