"""Quickstart: protect a buggy program with Kivati.

This is the paper's Figure 1 scenario: a check-then-act on a shared
pointer without a lock. Run unprotected, the update is lost; run under
Kivati, the remote write is detected, undone and reordered after the
atomic region.

Usage::

    python examples/quickstart.py
"""

from repro import Kivati, KivatiConfig, Mode, OptLevel, annotate_source

SOURCE = """
int shared_counter = 0;

void increment_worker() {
    int t = shared_counter;        /* read  --+ must be atomic           */
    sleep(40000);                  /*         | (the developer forgot    */
    shared_counter = t + 1;        /* write --+  the lock)               */
}

void overwrite_worker() {
    sleep(15000);
    shared_counter = 99;           /* interleaves inside the window      */
}

void main() {
    spawn increment_worker();
    spawn overwrite_worker();
    join();
    output(shared_counter);
}
"""


def main():
    print("=== 1. What the static annotator produces ===")
    annotated, result = annotate_source(SOURCE)
    print(annotated)
    print("Atomic regions found: %d" % result.num_ars)
    for info in result.ar_table.values():
        print("  " + info.describe())

    kivati = Kivati(KivatiConfig(mode=Mode.PREVENTION, opt=OptLevel.OPTIMIZED))

    print("\n=== 2. Unprotected run ===")
    vanilla = kivati.run_vanilla(SOURCE, seed=1)
    print("output: %s   <- the increment was lost!" % vanilla.output)

    print("\n=== 3. Protected run ===")
    report = kivati.run(SOURCE, seed=1)
    print("output: %s   <- remote write reordered after the atomic region"
          % report.output)
    print(report.summary())
    for violation in report.violations:
        print("violation: " + violation.describe())

    print("\n=== 4. Overhead ===")
    print("run-time overhead vs vanilla: %.1f%%"
          % (kivati.overhead(SOURCE, seed=1) * 100))


if __name__ == "__main__":
    main()
