"""The Section 3.5 extensions: sharper static analysis + forensics.

The paper's prototype deliberately uses a simple intra-procedural,
name-based annotator and lists three improvements as future work. This
repo implements them; this example shows each one catching a violation
the simple annotator misses, plus the execution-trace forensics.

Usage::

    python examples/sharper_analysis.py
"""

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.core.tracing import Trace

# 1. An AR that spans a subroutine: the producer writes x, then calls
#    consume() which reads it. No single function contains both accesses.
SPANNING = """
int x = 0;
int sink = 0;

void consume() {
    sink = x;
    sleep(40000);
}

void producer() {
    x = 5;
    consume();
}

void remote_thread() {
    sleep(15000);
    x = 99;
}

void main() {
    spawn producer();
    spawn remote_thread();
    join();
    output(sink);
}
"""

# 2. An aliased pair: the local thread reads x through a pointer, then
#    writes it directly. Name-based matching never pairs *p with x.
ALIASED = """
int x = 0;

void local_thread() {
    int *p = &x;
    int t = *p;
    sleep(40000);
    x = t + 1;
}

void remote_thread() {
    sleep(15000);
    x = 99;
}

void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""


def show(title, source, **annotator_options):
    print("=" * 66)
    print(title)
    simple = ProtectedProgram(source)
    sharp = ProtectedProgram(source, **annotator_options)
    config = KivatiConfig(opt=OptLevel.BASE)

    report = simple.run(config, seed=1)
    print("  simple annotator:  %d ARs, %d violation(s) reported"
          % (simple.num_ars, len(report.violations)))

    trace = Trace()
    report = sharp.run(config.copy(trace=trace), seed=1)
    print("  sharper annotator: %d ARs, %d violation(s) reported"
          % (sharp.num_ars, len(report.violations)))
    for violation in report.violations:
        print("    " + violation.describe())
    if report.violations:
        print("\n  forensic timeline around the violation:")
        for line in trace.render_violation(
                report.violations.records[0]).splitlines()[1:]:
            print("    " + line)
    print()


def main():
    show("ARs spanning subroutines (interprocedural=True)", SPANNING,
         interprocedural=True)
    show("Aliased access pairs (pointer_analysis=True)", ALIASED,
         pointer_analysis=True)


if __name__ == "__main__":
    main()
