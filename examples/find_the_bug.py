"""Bug-finding mode on a real bug pattern: MySQL bug 19938.

The binlog dump thread can observe DROP TABLE state half-written (a
W-R-W atomicity violation). This example shows the three faces of the
Table 6 experiment:

1. unprotected runs occasionally corrupt the binlog,
2. prevention mode detects and prevents the violation when it occurs,
3. bug-finding mode stretches the atomic region and finds the bug in far
   fewer attempts.

Usage::

    python examples/find_the_bug.py
"""

from repro.bench.scale import bench_config, scaled_times
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.workloads.bugs import get_bug
from repro.workloads.driver import detect_bug, manifestation_rate


def main():
    bug = get_bug("19938")
    print("Bug %s (%s): %s" % (bug.bug_id, bug.app, bug.description))
    print("interleaving pattern: %s\n" % bug.pattern)

    pp = ProtectedProgram(bug.source)

    rate = manifestation_rate(bug, attempts=20, protected=pp)
    print("unprotected: bug corrupts %.0f%% of runs" % (rate * 100))

    prev = detect_bug(bug, bench_config(Mode.PREVENTION),
                      max_attempts=60, protected=pp)
    print("\nprevention mode: %s after %d attempt(s), %s of testing "
          "(paper-equivalent %s)"
          % ("DETECTED" if prev.detected else "not found",
             prev.attempts, "%.2f ms" % prev.time_ms,
             scaled_times(prev.time_ns)))
    for record in prev.records[:3]:
        print("   " + record.describe())

    for pause_ms in (20, 50):
        res = detect_bug(bug, bench_config(Mode.BUG_FINDING,
                                           pause_ms=pause_ms),
                         max_attempts=30, protected=pp)
        print("\nbug-finding mode (%d ms pause): %s after %d attempt(s), "
              "%.2f ms (paper-equivalent %s)"
              % (pause_ms,
                 "DETECTED" if res.detected else "not found",
                 res.attempts, res.time_ms, scaled_times(res.time_ns)))

    print("\nNote the paper's observation: a longer pause does not always "
          "find the bug faster,\nbecause it also slows the application "
          "down (Section 4.2).")


if __name__ == "__main__":
    main()
