"""Protect a web server: the paper's Webstone scenario.

Runs the Apache/Webstone application model under each of Kivati's four
configurations (Table 3 columns) and reports run time, kernel crossings,
watchpoint traps and request latency — a miniature of the paper's
performance evaluation on one application.

Usage::

    python examples/protect_web_server.py
"""

from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.apps.webstone import build_webstone


def main():
    workload = build_webstone(requests=24)
    pp = ProtectedProgram(workload.source)
    print("Webstone model: %d atomic regions annotated, %d worker threads"
          % (pp.num_ars, workload.threads))

    vanilla = pp.run_vanilla(seed=7)
    assert workload.check_output(vanilla.output)
    base_latency = vanilla.time_ns * workload.threads / workload.requests
    print("\nvanilla: %.3f ms, latency %.2f us/request"
          % (vanilla.time_ns / 1e6, base_latency / 1e3))

    print("\n%-14s %10s %10s %10s %8s %10s" % (
        "config", "time(ms)", "overhead", "crossings", "traps", "latency"))
    for opt in (OptLevel.BASE, OptLevel.NULL_SYSCALL, OptLevel.SYNCVARS,
                OptLevel.OPTIMIZED):
        report = pp.run(bench_config(Mode.PREVENTION, opt), seed=7)
        assert workload.check_output(report.output), "Kivati broke the app!"
        latency = report.time_ns * workload.threads / workload.requests
        print("%-14s %10.3f %9.1f%% %10d %8d %8.2fus" % (
            opt.value,
            report.time_ns / 1e6,
            (report.time_ns / vanilla.time_ns - 1) * 100,
            report.stats.crossings(),
            report.stats.traps,
            latency / 1e3,
        ))

    report = pp.run(bench_config(Mode.BUG_FINDING, OptLevel.OPTIMIZED),
                    seed=7)
    latency = report.time_ns * workload.threads / workload.requests
    print("%-14s %10.3f %9.1f%% %10d %8d %8.2fus   (bug-finding)" % (
        "optimized", report.time_ns / 1e6,
        (report.time_ns / vanilla.time_ns - 1) * 100,
        report.stats.crossings(), report.stats.traps, latency / 1e3))

    print("\nbenign violations observed (false positives, by AR):")
    optimized = pp.run(bench_config(Mode.PREVENTION, OptLevel.OPTIMIZED),
                       seed=7)
    for ar_id in sorted(optimized.violated_ars()):
        info = pp.ar_table[ar_id]
        print("  " + info.describe())


if __name__ == "__main__":
    main()
