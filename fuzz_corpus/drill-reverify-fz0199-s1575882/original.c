int g0 = 0;
int g1 = 0;
int g2 = 0;
int h0 = 0;
int h1 = 0;

void mix(int a, int b)
{
    return a * 2 + b % 7;
}

void worker0()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        if (t % 2 == 0)
        {
            t = g2;
            yield();
            g2 = t + 2;
        }
        t = g1;
        u = t * 2;
        g1 = t + 1;
        i = i + 1;
    }
}

void worker1()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        t = g2;
        g2 = t + 2;
        t = g0;
        g0 = t + 2;
        i = i + 1;
    }
}

void main()
{
    spawn worker0();
    spawn worker1();
    join();
    output(g0);
    output(g1);
    output(g2);
}
