int g2 = 0;

void worker0()
{
    int i = 0;
    while (i < 1)
    {
        g2 = 2;
        i = 1;
    }
}

void worker1()
{
    int t = 0;
    t = g2;
}

void main()
{
    spawn worker0();
    spawn worker1();
}
