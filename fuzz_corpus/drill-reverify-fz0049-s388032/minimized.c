int g0 = 0;

void worker1()
{
    int i = 0;
    while (i < 1)
    {
        g0 = 2;
        i = 1;
    }
}

void worker2()
{
    int t = 0;
    t = g0;
}

void main()
{
    spawn worker1();
    spawn worker2();
}
