int g0 = 0;
int g1 = 0;
int g2 = 0;
int lk0 = 0;
int lk1 = 0;
int lk2 = 0;
int h0 = 0;
int h1 = 0;
int h2 = 0;
int h3 = 0;

void mix(int a, int b)
{
    return a * 2 + b % 7;
}

void worker0()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        t = t + h0;
        t = h0;
        i = i + 1;
    }
}

void worker1()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        t = mix(t, 7);
        lock(&lk0);
        g0 = t + 2;
        unlock(&lk0);
        i = i + 1;
    }
}

void worker2()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        lock(&lk0);
        t = g0;
        u = t * 2;
        g0 = t + 2;
        unlock(&lk0);
        lock(&lk0);
        t = g0;
        u = mix(t, 2);
        g0 = t + 1;
        unlock(&lk0);
        i = i + 1;
    }
}

void worker3()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        t = h3;
        h3 = t + 1;
        h3 = t + 4;
        i = i + 1;
    }
}

void main()
{
    spawn worker0();
    spawn worker1();
    spawn worker2();
    spawn worker3();
    join();
    output(g0);
    output(g1);
    output(g2);
}
