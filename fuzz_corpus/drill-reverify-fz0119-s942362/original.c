int g0 = 0;
int lk0 = 0;
int h0 = 0;
int h1 = 0;
int h2 = 0;
int h3 = 0;

void mix(int a, int b)
{
    return a * 2 + b % 7;
}

void worker0()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 3)
    {
        atomic_add(&g0, 2);
        t = atomic_add(&g0, 1);
        if (t % 3 == 1)
        {
            t = mix(t, 2);
        }
        if (t % 2 == 0)
        {
            lock(&lk0);
            t = g0;
            u = mix(t, 3);
            g0 = t + 2;
            unlock(&lk0);
        }
        i = i + 1;
    }
}

void worker1()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 3)
    {
        lock(&lk0);
        t = g0;
        g0 = t + 2;
        unlock(&lk0);
        t = mix(t, 4);
        t = mix(t, 4);
        t = atomic_add(&g0, 1);
        i = i + 1;
    }
}

void worker2()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 3)
    {
        lock(&lk0);
        t = g0;
        u = mix(t, 2);
        g0 = t + 2;
        unlock(&lk0);
        lock(&lk0);
        g0 = t + 3;
        unlock(&lk0);
        lock(&lk0);
        t = t + g0;
        unlock(&lk0);
        t = mix(t, 5);
        i = i + 1;
    }
}

void worker3()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 3)
    {
        t = mix(t, 6);
        lock(&lk0);
        t = t + g0;
        unlock(&lk0);
        lock(&lk0);
        t = g0;
        u = mix(t, 4);
        g0 = t + 1;
        unlock(&lk0);
        atomic_add(&g0, 2);
        i = i + 1;
    }
}

void main()
{
    spawn worker0();
    spawn worker1();
    spawn worker2();
    spawn worker3();
    join();
    output(g0);
}
