int g0 = 0;

void worker2()
{
    int i = 0;
    int t = 0;
    while (i < 1)
    {
        t = g0;
        i = 1;
    }
}

void worker3()
{
    atomic_add(&g0, 2);
}

void main()
{
    spawn worker2();
    spawn worker3();
}
