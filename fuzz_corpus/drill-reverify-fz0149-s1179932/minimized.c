int g0 = 0;

void worker2()
{
    int i = 0;
    while (i < 1)
    {
        g0 = 1;
        i = 1;
    }
}

void worker3()
{
    int t = 0;
    t = g0;
}

void main()
{
    spawn worker2();
    spawn worker3();
}
