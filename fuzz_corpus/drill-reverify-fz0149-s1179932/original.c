int g0 = 0;
int h0 = 0;
int h1 = 0;
int h2 = 0;
int h3 = 0;

void mix(int a, int b)
{
    return a * 2 + b % 7;
}

void worker0()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 2)
    {
        t = t + 4;
        if (t % 2 == 0)
        {
            t = t + 4;
        }
        t = t + 6;
        i = i + 1;
    }
}

void worker1()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 2)
    {
        t = g0;
        u = mix(t, 4);
        g0 = t + 3;
        if (t % 2 == 1)
        {
            g0 = t + 1;
        }
        if (t % 3 == 2)
        {
            t = g0;
            g0 = t + 2;
        }
        i = i + 1;
    }
}

void worker2()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 2)
    {
        t = t + 3;
        if (t % 3 == 2)
        {
            t = g0;
            g0 = t + 3;
        }
        t = g0;
        yield();
        g0 = t + 1;
        i = i + 1;
    }
}

void worker3()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 2)
    {
        g0 = t + 4;
        t = mix(t, 1);
        t = t + g0;
        i = i + 1;
    }
}

void main()
{
    spawn worker0();
    spawn worker1();
    spawn worker2();
    spawn worker3();
    join();
    output(g0);
}
