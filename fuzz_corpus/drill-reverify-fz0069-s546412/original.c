int g0 = 0;
int lk0 = 0;
int h0 = 0;
int h1 = 0;

void mix(int a, int b)
{
    return a * 2 + b % 7;
}

void worker0()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        t = g0;
        t = t + g0;
        g0 = t + 3;
        i = i + 1;
    }
}

void worker1()
{
    int i = 0;
    int t = 0;
    int u = 0;
    while (i < 4)
    {
        t = g0;
        u = t * 2;
        g0 = t + 2;
        lock(&lk0);
        t = g0;
        u = t * 2;
        g0 = t + 2;
        unlock(&lk0);
        t = g0;
        g0 = t + 2;
        i = i + 1;
    }
}

void main()
{
    spawn worker0();
    spawn worker1();
    join();
    output(g0);
}
