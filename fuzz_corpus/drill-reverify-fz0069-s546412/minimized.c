int g0 = 0;

void worker0()
{
    int t = 0;
    t = g0;
}

void worker1()
{
    int i = 0;
    while (i < 1)
    {
        g0 = 2;
        i = 1;
    }
}

void main()
{
    spawn worker0();
    spawn worker1();
}
