int g1 = 0;

void worker0()
{
    int i = 0;
    while (i < 3)
    {
        g1 = 4;
        i = i + 1;
    }
}

void worker1()
{
    int t = 0;
    t = g1;
}

void main()
{
    spawn worker0();
    spawn worker1();
}
