"""Deterministic replay of a journaled run.

A journal is replayable because every source of scheduling freedom in the
simulation is either a pure function of the seed (jitter, pause sampling,
fault decisions — all restored from the run-start config snapshot) or an
explicit journaled decision (``sched`` events).  Replay re-executes the
program under the snapshot config with a :class:`SchedulePin` that forces
each scheduler decision to pick the journaled thread, then compares the
fresh event stream frame-by-frame against the recording.

The divergence detector reports the *first* mismatching event — by
construction every later mismatch is noise caused by the first one.
"""

from repro.errors import JournalError
from repro.journal.format import read_journal
from repro.journal.recorder import JournalRecorder
from repro.journal.snapshot import (config_from_snapshot, config_snapshot,
                                    source_digest)
from repro.machine.threads import ThreadState


def events_from(obj):
    """Normalize a journal argument: path, JournalReadResult, recorder or
    plain event list; returns (events, torn)."""
    if isinstance(obj, str):
        result = read_journal(obj)
        return list(result.events), result.torn
    if isinstance(obj, JournalRecorder):
        return list(obj.events), False
    if hasattr(obj, "events"):  # JournalReadResult
        return list(obj.events), bool(getattr(obj, "torn", False))
    return list(obj), False


def run_start_snapshot(events):
    """The config snapshot carried by the journal's run-start header."""
    for event in events:
        if event.kind == "run-start":
            return event.payload.get("config")
    raise JournalError("journal has no run-start header (torn at frame 0?)")


class SchedulePin:
    """Forces Machine scheduling decisions to follow a recorded journal.

    ``select`` is consulted before the natural run-queue pop; it removes
    and returns the journaled thread when that thread is runnable.  When
    the pinned thread is unavailable but others are, the pin records a
    divergence and falls back to natural scheduling — replay never hangs
    on a journal that no longer matches the program.
    """

    def __init__(self, sched_events):
        self._decisions = [(e.payload.get("core"), e.tid)
                           for e in sched_events if e.kind == "sched"]
        self._cursor = 0
        self.divergences = []  # (decision index, wanted tid, note)

    @property
    def exhausted(self):
        return self._cursor >= len(self._decisions)

    @property
    def consumed(self):
        return self._cursor

    def select(self, machine, core):
        if self.exhausted:
            return None
        want_core, want_tid = self._decisions[self._cursor]
        queue = machine.run_queue
        for i, cand in enumerate(queue):
            if (cand == want_tid
                    and machine.threads[cand].state == ThreadState.RUNNABLE):
                del queue[i]
                if want_core != core.index:
                    self.divergences.append(
                        (self._cursor, want_tid,
                         "ran on core %d, recorded core %s"
                         % (core.index, want_core)))
                self._cursor += 1
                return cand
        if any(machine.threads[cand].state == ThreadState.RUNNABLE
               for cand in queue):
            # the journaled thread cannot run here but another can: note
            # the divergence, skip the decision, schedule naturally
            self.divergences.append(
                (self._cursor, want_tid, "pinned thread not runnable"))
            self._cursor += 1
        return None


class Divergence:
    """First point where the replayed stream departs from the recording."""

    __slots__ = ("index", "recorded", "replayed", "reason")

    def __init__(self, index, recorded, replayed, reason):
        self.index = index
        self.recorded = recorded
        self.replayed = replayed
        self.reason = reason

    def describe(self):
        lines = ["first divergence at event %d: %s" % (self.index, self.reason)]
        if self.recorded is not None:
            lines.append("  recorded: %s" % self.recorded.describe())
        if self.replayed is not None:
            lines.append("  replayed: %s" % self.replayed.describe())
        return "\n".join(lines)

    def __repr__(self):
        return "Divergence(index=%d, %s)" % (self.index, self.reason)


def first_divergence(recorded, replayed, allow_longer_replay=False):
    """Frame-by-frame comparison; returns a :class:`Divergence` or None.

    ``allow_longer_replay`` accepts a replayed stream that extends past
    the end of the recording — the recovery path uses it to check that a
    torn journal is a clean prefix of the re-executed run.
    """
    for i in range(min(len(recorded), len(replayed))):
        if recorded[i].key() != replayed[i].key():
            return Divergence(i, recorded[i], replayed[i],
                              "event mismatch")
    if len(recorded) > len(replayed):
        i = len(replayed)
        return Divergence(i, recorded[i], None,
                          "replay ended %d events early"
                          % (len(recorded) - len(replayed)))
    if len(replayed) > len(recorded) and not allow_longer_replay:
        i = len(recorded)
        return Divergence(i, None, replayed[i],
                          "replay produced %d extra events"
                          % (len(replayed) - len(recorded)))
    return None


def verdict_multiset(events):
    """Canonical multiset of violation verdicts in an event stream."""
    verdicts = []
    for event in events:
        if event.kind == "violation":
            p = event.payload
            verdicts.append((p.get("ar"), event.tid, p.get("remote_tid"),
                             p.get("first"), p.get("remote"), p.get("second"),
                             bool(p.get("prevented"))))
    return sorted(verdicts)


class ReplayResult:
    """Outcome of one deterministic replay."""

    __slots__ = ("report", "recorded", "replayed", "divergence",
                 "pin_divergences", "torn", "config")

    def __init__(self, report, recorded, replayed, divergence,
                 pin_divergences, torn, config):
        self.report = report
        self.recorded = recorded
        self.replayed = replayed
        self.divergence = divergence
        self.pin_divergences = list(pin_divergences)
        self.torn = torn
        self.config = config

    @property
    def ok(self):
        return self.divergence is None and not self.pin_divergences

    @property
    def verdicts_match(self):
        return (verdict_multiset(self.recorded)
                == verdict_multiset(self.replayed[:len(self.recorded)]
                                    if self.torn else self.replayed))

    def describe(self):
        lines = ["replay of %d recorded events%s: %s"
                 % (len(self.recorded), " (torn journal)" if self.torn else "",
                    "DETERMINISTIC" if self.ok else "DIVERGED")]
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        for index, tid, note in self.pin_divergences:
            lines.append("  sched decision %d (tid %d): %s"
                         % (index, tid, note))
        lines.append("verdicts %s" % ("match" if self.verdicts_match
                                      else "MISMATCH"))
        return "\n".join(lines)


def record_run(program, config=None, seed=None, writer=None):
    """Run ``program`` with a journal attached; returns (report, recorder)."""
    from repro.core.config import KivatiConfig

    config = config or KivatiConfig()
    recorder = JournalRecorder(writer=writer)
    report = program.run(config.copy(journal=recorder), seed=seed)
    return report, recorder


def replay_run(program, journal, check_source=True, pin=True,
               drop_fault_points=()):
    """Re-execute ``program`` pinned to a journaled schedule.

    ``journal`` is a path, JournalReadResult, JournalRecorder or event
    list.  The run's config is rebuilt from the run-start snapshot; the
    replay records into a fresh in-memory journal which is compared
    frame-by-frame against the recording.  A journal with no run-end
    frame (torn tail or crashed recorder) is treated as a prefix: the
    replay may legitimately run past its end.  ``drop_fault_points``
    strips injection points (recovery removes ``journal.crash`` so the
    replay outlives the recorded crash).
    """
    recorded, torn = events_from(journal)
    snapshot = run_start_snapshot(recorded)
    if check_source:
        want = snapshot.get("source_sha256")
        if want is not None and want != source_digest(program.source):
            raise JournalError(
                "journal was recorded from a different program "
                "(source hash %s... != %s...)"
                % (want[:12], source_digest(program.source)[:12]))
    config = config_from_snapshot(snapshot,
                                  drop_fault_points=drop_fault_points)
    recorder = JournalRecorder()
    schedule_pin = SchedulePin(recorded) if pin else None
    report = program.run(config.copy(journal=recorder, trace=None),
                         schedule_pin=schedule_pin)
    incomplete = torn or not any(e.kind == "run-end" for e in recorded)
    offset = 0
    if (drop_fault_points and recorded and recorder.events
            and recorded[0].kind == "run-start"
            and recorder.events[0].kind == "run-start"):
        # the rebuilt header legitimately differs: it lost the stripped
        # fault points; compare from the first execution event instead
        offset = 1
    divergence = first_divergence(recorded[offset:], recorder.events[offset:],
                                  allow_longer_replay=incomplete)
    if divergence is not None:
        divergence.index += offset
    return ReplayResult(report, recorded, recorder.events, divergence,
                        schedule_pin.divergences if schedule_pin is not None
                        else [], incomplete, config)


__all__ = ["Divergence", "ReplayResult", "SchedulePin", "events_from",
           "first_divergence", "record_run", "replay_run",
           "run_start_snapshot", "verdict_multiset"]
