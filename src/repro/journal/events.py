"""Canonical journal event model.

An event is the unit of everything downstream: one frame on disk, one
comparison step in the replay divergence detector, one fact for the
recovery and postmortem planes. Payloads are restricted to JSON-safe
values and encoded canonically (sorted keys, no whitespace) so that two
identical runs produce byte-identical frames regardless of
PYTHONHASHSEED or dict construction order.

Event kinds, by emitting layer:

- machine:  ``sched`` (a thread placed on a core)
- session:  ``run-start`` (config snapshot + source hash), ``run-end``
- runtime:  ``begin``, ``end``, ``trap``, ``pause``, ``miss``
- kernel:   ``arm``, ``disarm``, ``trigger``, ``zombify``, ``clear``,
            ``suspend``, ``wake``, ``timeout``, ``watchdog``, ``undo``,
            ``degrade``, ``resync``, ``violation``
- pressure: ``arbiter`` (slot preemption/denial), ``quarantine``
            (enter/increase/decrease/release plus per-entry
            monitor/skip sampling decisions), ``pressure``
            (admission shed, slot-leak reclaim)
"""

import enum
import json

from repro.errors import JournalError

#: Every kind a well-formed journal may contain.
EVENT_KINDS = frozenset((
    "run-start", "run-end", "sched",
    "begin", "end", "trap", "pause", "miss",
    "arm", "disarm", "trigger", "zombify", "clear",
    "suspend", "wake", "timeout", "watchdog", "undo",
    "degrade", "resync", "violation",
    "arbiter", "quarantine", "pressure",
))


def jsonable(value):
    """Coerce a payload value to a canonical JSON-safe form.

    Enums become their ``str()`` (AccessKind -> "R"/"W"), tuples and sets
    become lists (sets sorted for determinism), dicts are rebuilt with
    string keys. Anything else must already be a JSON scalar.
    """
    if isinstance(value, enum.Enum):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise JournalError("payload value %r is not journal-serializable"
                       % (value,))


class JournalEvent:
    """One journaled fact: (seq, time_ns, tid, kind, payload)."""

    __slots__ = ("seq", "time_ns", "tid", "kind", "payload")

    def __init__(self, seq, time_ns, tid, kind, payload):
        self.seq = seq
        self.time_ns = time_ns
        self.tid = tid
        self.kind = kind
        self.payload = payload

    def key(self):
        """Canonical comparison identity (what replay must reproduce)."""
        return (self.seq, self.time_ns, self.tid, self.kind,
                json.dumps(self.payload, sort_keys=True))

    def describe(self):
        detail = " ".join("%s=%s" % (k, v)
                          for k, v in sorted(self.payload.items()))
        return "#%-6d %10.3fus tid%-3s %-10s %s" % (
            self.seq, self.time_ns / 1e3,
            self.tid if self.tid >= 0 else "-", self.kind, detail)

    def __eq__(self, other):
        return isinstance(other, JournalEvent) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return "JournalEvent(#%d, %s, t=%dns, tid=%d)" % (
            self.seq, self.kind, self.time_ns, self.tid)


def encode_event(event):
    """Canonical frame payload bytes for one event."""
    record = [event.seq, event.time_ns, event.tid, event.kind, event.payload]
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_event(data):
    """Inverse of :func:`encode_event`; raises JournalError on any
    malformed payload (the reader treats that as a corrupt frame)."""
    try:
        record = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise JournalError("undecodable frame payload: %s" % exc)
    if (not isinstance(record, list) or len(record) != 5
            or not isinstance(record[3], str)
            or not isinstance(record[4], dict)):
        raise JournalError("malformed frame record: %r" % (record,))
    seq, time_ns, tid, kind, payload = record
    if not isinstance(seq, int) or not isinstance(tid, int):
        raise JournalError("malformed frame record: %r" % (record,))
    return JournalEvent(seq, time_ns, tid, kind, payload)
