"""Config serialization for the journal's run-start header.

A journal must be self-describing: ``kivati replay FILE JOURNAL`` has to
rebuild the exact :class:`repro.core.config.KivatiConfig` the recorded
run used without the operator re-supplying flags.  The run-start event
therefore carries a JSON snapshot of every determinism-relevant field —
seed, topology, mode, optimization switches, timing parameters, cost
model, fault plan — plus a hash of the protected source so replay can
refuse a journal recorded from a different program.

Per-run mutable objects (trace, journal recorder, injector state) are
deliberately not part of the snapshot: replay supplies fresh ones.
"""

import hashlib

from repro.core.config import KivatiConfig, Mode, OptimizationConfig
from repro.errors import JournalError
from repro.faults.breaker import BreakerPolicy
from repro.faults.plan import FaultPlan, FaultSpec
from repro.pressure.policy import PressurePolicy

#: Bump when the snapshot layout changes incompatibly. Version 2 added
#: the pressure-plane policy; version 3 added ``conflict_sched``.
#: Older journals (missing keys) still load — missing fields take the
#: defaults the recording run used.
SNAPSHOT_VERSION = 3

#: Every version :func:`config_from_snapshot` can rebuild.
SUPPORTED_SNAPSHOT_VERSIONS = frozenset((1, 2, 3))


def source_digest(source):
    """Stable identity of the protected program's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _breaker_snapshot(breaker):
    if isinstance(breaker, BreakerPolicy):
        return {name: getattr(breaker, name) for name in BreakerPolicy.__slots__}
    return bool(breaker)


def _pressure_snapshot(pressure):
    if isinstance(pressure, PressurePolicy):
        return {name: getattr(pressure, name)
                for name in PressurePolicy.__slots__}
    if pressure is True:
        return True
    return None


def _faults_snapshot(plan):
    if plan is None:
        return None
    return {
        "name": plan.name,
        "specs": [
            {
                "point": spec.point,
                "probability": spec.probability,
                "max_fires": spec.max_fires,
                "start_after": spec.start_after,
                "param": dict(spec.param),
            }
            for spec in plan.specs
        ],
    }


def config_snapshot(config, source=None):
    """JSON-able snapshot of ``config`` (plus the program's source hash)."""
    opt = config.opt
    snap = {
        "version": SNAPSHOT_VERSION,
        "seed": config.seed,
        "mode": config.mode.value,
        "opt": {name: bool(getattr(opt, name))
                for name in OptimizationConfig.__slots__},
        "num_watchpoints": config.num_watchpoints,
        "num_cores": config.num_cores,
        "pause_ns": config.pause_ns,
        "pause_probability": config.pause_probability,
        "suspend_timeout_ns": config.suspend_timeout_ns,
        "whitelist": sorted(config.whitelist),
        "whitelist_path": config.whitelist_path,
        "whitelist_reread_ns": config.whitelist_reread_ns,
        "costs": {name: getattr(config.costs, name)
                  for name in type(config.costs).__slots__},
        "trap_before": config.trap_before,
        "eager_crosscore": config.eager_crosscore,
        "max_steps": config.max_steps,
        "breaker": _breaker_snapshot(config.breaker),
        "watchdog": bool(config.watchdog),
        "static_prune": bool(config.static_prune),
        "faults": _faults_snapshot(config.faults),
        "pressure": _pressure_snapshot(config.pressure),
        "conflict_sched": bool(config.conflict_sched),
    }
    if source is not None:
        snap["source_sha256"] = source_digest(source)
    return snap


def config_from_snapshot(snap, drop_fault_points=()):
    """Rebuild a :class:`KivatiConfig` from a run-start snapshot.

    ``drop_fault_points`` removes injection points from the rebuilt fault
    plan — recovery uses it to strip ``journal.crash`` so the re-executed
    run does not die at the same frame again.
    """
    if not isinstance(snap, dict) or "seed" not in snap:
        raise JournalError("journal has no usable config snapshot")
    version = snap.get("version")
    if version not in SUPPORTED_SNAPSHOT_VERSIONS:
        raise JournalError("unsupported config snapshot version %r" % (version,))
    from repro.machine.costs import CostModel

    # validate timing fields that older writers could not have checked,
    # so a corrupted or hand-edited journal aborts cleanly here instead
    # of deep inside the run
    timeout = snap.get("suspend_timeout_ns", 10_000_000)
    if not isinstance(timeout, int) or timeout < 1:
        raise JournalError("snapshot suspend_timeout_ns %r is not a "
                           "positive integer" % (timeout,))

    breaker = snap["breaker"]
    if isinstance(breaker, dict):
        breaker = BreakerPolicy(**breaker)
    # absent in version-1 snapshots: those runs predate the plane
    pressure = snap.get("pressure")
    if isinstance(pressure, dict):
        pressure = PressurePolicy(**pressure)
    elif pressure is not None and pressure is not True:
        raise JournalError("snapshot pressure %r is not null/true/object"
                           % (pressure,))
    faults = None
    fsnap = snap.get("faults")
    if fsnap is not None:
        specs = [FaultSpec(point=s["point"], probability=s["probability"],
                           max_fires=s["max_fires"],
                           start_after=s["start_after"], param=s["param"])
                 for s in fsnap["specs"]
                 if s["point"] not in drop_fault_points]
        if specs:
            faults = FaultPlan(fsnap["name"], specs)
    return KivatiConfig(
        mode=Mode(snap["mode"]),
        opt=OptimizationConfig(**snap["opt"]),
        num_watchpoints=snap["num_watchpoints"],
        num_cores=snap["num_cores"],
        pause_ns=snap["pause_ns"],
        pause_probability=snap["pause_probability"],
        suspend_timeout_ns=timeout,
        whitelist=snap["whitelist"],
        whitelist_path=snap["whitelist_path"],
        whitelist_reread_ns=snap["whitelist_reread_ns"],
        costs=CostModel(**snap["costs"]),
        seed=snap["seed"],
        trap_before=snap["trap_before"],
        eager_crosscore=snap["eager_crosscore"],
        max_steps=snap["max_steps"],
        breaker=breaker,
        watchdog=snap["watchdog"],
        static_prune=snap["static_prune"],
        faults=faults,
        pressure=pressure,
        # absent before version 3
        conflict_sched=snap.get("conflict_sched", False),
    )


__all__ = ["SNAPSHOT_VERSION", "SUPPORTED_SNAPSHOT_VERSIONS",
           "config_from_snapshot", "config_snapshot", "source_digest"]
