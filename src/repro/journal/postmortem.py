"""Postmortem serializability re-verification.

An offline, RegionTrack-style checker that re-derives every violation
verdict from the journal alone, independently of the kernel's online
evaluation path.  The journal carries each AR window (``begin`` with its
slot arming generation, ``end`` with the observed second access kind,
``zombify`` for windows whose watchpoint timed out) and every remote
trigger with its access kinds; re-running the four non-serializable
interleaving patterns over those windows must reproduce the online
verdicts exactly.

A disagreement means one of the two evaluators is wrong — either the
online detector mis-attributed a trigger, or the journal failed to
capture what the kernel acted on.  Both are bugs worth an assertion, so
the chaos suite and the soundness test count disagreements and demand
zero.
"""

from repro.analysis.watchtype import is_unserializable
from repro.journal.replay import events_from, verdict_multiset
from repro.minic.ast import AccessKind


def _kind(text):
    return AccessKind(text) if isinstance(text, str) else text


class _Window:
    __slots__ = ("tid", "ar", "slot", "gen", "first", "begin_time")

    def __init__(self, tid, ar, slot, gen, first, begin_time):
        self.tid = tid
        self.ar = ar
        self.slot = slot
        self.gen = gen
        self.first = first
        self.begin_time = begin_time


class PostmortemResult:
    """Offline verdicts vs the online detector's journaled verdicts."""

    __slots__ = ("offline", "online", "windows_checked", "anomalies")

    def __init__(self, offline, online, windows_checked, anomalies):
        self.offline = offline
        self.online = online
        self.windows_checked = windows_checked
        self.anomalies = list(anomalies)

    @property
    def disagreements(self):
        """Verdicts present in exactly one of the two evaluations."""
        online = list(self.online)
        missing = []  # offline-only
        for verdict in self.offline:
            if verdict in online:
                online.remove(verdict)
            else:
                missing.append(verdict)
        return missing + online

    @property
    def agrees(self):
        return not self.disagreements and not self.anomalies

    def describe(self):
        lines = ["postmortem: %d windows re-verified, %d offline verdicts, "
                 "%d online verdicts, %d disagreements"
                 % (self.windows_checked, len(self.offline),
                    len(self.online), len(self.disagreements))]
        for verdict in self.disagreements:
            side = "offline-only" if verdict in self.offline else "online-only"
            lines.append("  %s: ar=%s local=%s remote=%s (%s,%s,%s) "
                         "prevented=%s [%s]"
                         % ((verdict[0], verdict[1], verdict[2]) + verdict[3:6]
                            + (verdict[6], side)))
        lines.extend("  anomaly: %s" % text for text in self.anomalies)
        return "\n".join(lines)


def _evaluate_window(window, triggers, second, force_unprevented, verdicts):
    """Mirror of KivatiKernel._evaluate over journaled triggers."""
    first = _kind(window.first)
    second = _kind(second)
    for tid, kinds, time_ns, undone in triggers:
        if tid == window.tid or time_ns < window.begin_time:
            continue
        for kind_text in kinds:
            kind = _kind(kind_text)
            if is_unserializable(first, kind, second):
                prevented = undone and not force_unprevented
                verdicts.append((window.ar, window.tid, tid, str(first),
                                 str(kind), str(second), prevented))
                break


def reverify(journal):
    """Re-derive all verdicts from a journal; returns PostmortemResult.

    ``journal`` is a path, JournalReadResult, JournalRecorder or event
    list (truncated journals are fine — unfinished windows are simply
    never evaluated, exactly as an unfinished end_atomic never was).
    """
    events, _torn = events_from(journal)
    triggers = {}   # (slot, gen) -> [(tid, kinds, time_ns, undone)]
    windows = {}    # (tid, ar) -> _Window
    zombies = {}    # (tid, ar) -> _Window
    verdicts = []
    anomalies = []
    checked = 0
    for event in events:
        kind, p, tid = event.kind, event.payload, event.tid
        if kind == "begin":
            windows[(tid, p["ar"])] = _Window(
                tid, p["ar"], p.get("slot"), p.get("gen"), p.get("first"),
                event.time_ns)
        elif kind == "trigger":
            triggers.setdefault((p.get("slot"), p.get("gen")), []).append(
                (tid, p.get("kinds", ()), event.time_ns, bool(p.get("undone"))))
        elif kind == "zombify":
            window = windows.pop((tid, p["ar"]), None)
            if window is None:
                anomalies.append("zombify of AR %d (tid %d) without begin"
                                 % (p["ar"], tid))
                continue
            zombies[(tid, p["ar"])] = window
        elif kind == "clear":
            windows.pop((tid, p["ar"]), None)
        elif kind == "end":
            if p.get("zombie"):
                window = zombies.pop((tid, p["ar"]), None)
                if window is None:
                    anomalies.append("zombie end of AR %d (tid %d) without "
                                     "zombify" % (p["ar"], tid))
                    continue
                checked += 1
                _evaluate_window(window, triggers.get(
                    (window.slot, window.gen), ()), p.get("second"),
                    True, verdicts)
            else:
                window = windows.pop((tid, p["ar"]), None)
                if window is None:
                    anomalies.append("end of AR %d (tid %d) without begin"
                                     % (p["ar"], tid))
                    continue
                checked += 1
                _evaluate_window(window, triggers.get(
                    (window.slot, window.gen), ()), p.get("second"),
                    False, verdicts)
    return PostmortemResult(sorted(verdicts), verdict_multiset(events),
                            checked, anomalies)


def reverify_report(journal, report):
    """Convenience: reverify and also cross-check the RunReport's records.

    Returns (PostmortemResult, report_matches) where ``report_matches``
    is True when the offline verdict multiset equals the multiset built
    from the report's ViolationRecords.
    """
    result = reverify(journal)
    from_report = sorted(
        (r.ar_id, r.local_tid, r.remote_tid, str(r.first_kind),
         str(r.remote_kind), str(r.second_kind), bool(r.prevented))
        for r in report.violations)
    return result, from_report == result.offline


__all__ = ["PostmortemResult", "reverify", "reverify_report"]
