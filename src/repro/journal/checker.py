"""Sound-and-complete streaming offline serializability checker.

The third, fastest leg of the postmortem stack.  ``replay`` re-executes
the whole program; ``reverify`` re-evaluates verdicts but materializes
the full event list and retains every trigger forever.  This checker
consumes a journal *frame by frame* — straight off a (possibly damaged)
disk file via :mod:`repro.journal.stream` — and re-derives every
serializability verdict in one pass with memory proportional to the
number of *live* regions, not to the length of the trace.

**The region model.**  Each atomic-region window is a region in the
RegionTrack sense (arXiv:2008.04479): it opens at its ``begin`` frame,
closes at its ``end`` frame, and conflicts with the remote accesses the
kernel journaled as ``trigger`` frames against the same watchpoint
(slot, arming-generation) epoch.  The journal is a sequentially
consistent total order (every frame carries a sequence number and a
virtual time), so the region graph's happens-before edges degenerate to
interval membership: a remote access falls inside a window exactly when
its virtual time is at or after the window's begin — the same predicate
the online kernel evaluates at ``end_atomic``.  A closed window's
verdicts follow Figure 2: the (first, remote, second) access-kind triple
must form one of the four non-serializable interleavings.  On an intact
journal this is *sound* (every reported verdict is witnessed by a
journaled remote access inside a journaled window) and *complete* (every
witnessed non-serializable triple is reported) — pinned against
brute-force enumeration over random traces by the property suite.

**Streaming garbage collection** (the Fast Atomicity Monitoring recipe,
arXiv:2604.11369): triggers are retained per (slot, gen) *epoch*; an
epoch's trigger list is dropped as soon as the epoch is retired (its
slot was disarmed or re-armed at a higher generation) and no live or
zombie region still references it.  Lazily-freed slots (O2) keep their
epoch armed — a later window may still join the same generation — but
the bound stays O(hardware slots + pending zombies), a constant for any
machine, so million-event journals check in near-linear time and
constant space (peaks are recorded in :class:`CheckerStats` and gated
by the checker benchmark).

**Corruption tolerance.**  Damage never raises: torn tails, mid-file
CRC failures and sequence gaps yield *partial* verdicts with an explicit
``coverage`` fraction — ``decoded / (decoded + known_missing)`` where
``known_missing`` counts interior gap slots, any pruned rotation head,
and one unknown tail frame when the journal never closed cleanly.  The
checker only *claims* agreement with the online detector when the
journal is complete; on damaged journals it reports what it could prove
and exactly how much of the record that covers.
"""

from repro.analysis.watchtype import is_unserializable
from repro.journal.replay import events_from
from repro.minic.ast import AccessKind


def _kind(text):
    return AccessKind(text) if isinstance(text, str) else text


class CheckerStats:
    """Work and memory accounting for one streaming pass."""

    FIELDS = ("events", "windows_opened", "windows_closed",
              "triggers_seen", "epochs_opened", "epochs_gcd",
              "live_regions_peak", "live_epochs_peak",
              "retained_triggers_peak")

    __slots__ = FIELDS

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}


class _Region:
    __slots__ = ("tid", "ar", "slot", "gen", "first", "begin_time",
                 "begin_seq")

    def __init__(self, tid, ar, slot, gen, first, begin_time, begin_seq):
        self.tid = tid
        self.ar = ar
        self.slot = slot
        self.gen = gen
        self.first = first
        self.begin_time = begin_time
        self.begin_seq = begin_seq


class _Epoch:
    """One (slot, arming-generation): the triggers recorded against it
    plus the number of live/zombie regions still attached."""

    __slots__ = ("triggers", "refs", "armed")

    def __init__(self):
        self.triggers = []      # (tid, kinds, time_ns, undone)
        self.refs = 0
        self.armed = True


class CheckResult:
    """Everything one streaming pass could prove, and how much of the
    journal that covers."""

    __slots__ = ("verdicts", "online", "coverage", "complete",
                 "clean_close", "events_checked", "missing_events",
                 "gaps", "corruptions", "windows_checked", "windows_open",
                 "windows_unverified", "anomalies", "stats")

    def __init__(self, verdicts, online, coverage, complete, clean_close,
                 events_checked, missing_events, gaps, corruptions,
                 windows_checked, windows_open, windows_unverified,
                 anomalies, stats):
        self.verdicts = verdicts        # sorted offline verdict multiset
        self.online = online            # sorted journaled verdict multiset
        self.coverage = coverage
        #: True only for an intact journal: run-end seen, no gaps, no
        #: corruption — the precondition for *claiming* agreement
        self.complete = complete
        self.clean_close = clean_close
        self.events_checked = events_checked
        self.missing_events = missing_events
        self.gaps = gaps                # [(first missing seq, last), ...]
        self.corruptions = corruptions  # Corruption.as_dict() list
        self.windows_checked = windows_checked
        #: regions still open when the stream ended (lost tail)
        self.windows_open = windows_open
        #: regions whose evidence was damaged (end without begin, etc.)
        self.windows_unverified = windows_unverified
        self.anomalies = anomalies
        self.stats = stats

    @property
    def disagreements(self):
        """Verdicts present in exactly one of checker/online (multiset)."""
        online = list(self.online)
        missing = []
        for verdict in self.verdicts:
            if verdict in online:
                online.remove(verdict)
            else:
                missing.append(verdict)
        return missing + online

    @property
    def agrees(self):
        """The strong claim: intact journal, identical verdict multisets,
        nothing anomalous."""
        return (self.complete and not self.disagreements
                and not self.anomalies)

    @property
    def status(self):
        if self.events_checked == 0:
            return "no-data"
        if not self.complete:
            return "partial"
        if self.disagreements or self.anomalies:
            return "disagree"
        return "pass"

    def as_payload(self):
        return {
            "status": self.status,
            "verdicts": [list(v) for v in self.verdicts],
            "online": [list(v) for v in self.online],
            "disagreements": len(self.disagreements),
            "coverage": round(self.coverage, 6),
            "complete": self.complete,
            "clean_close": self.clean_close,
            "events_checked": self.events_checked,
            "missing_events": self.missing_events,
            "gaps": [list(g) for g in self.gaps],
            "corruptions": self.corruptions,
            "windows_checked": self.windows_checked,
            "windows_open": self.windows_open,
            "windows_unverified": self.windows_unverified,
            "anomalies": list(self.anomalies),
            "stats": self.stats.as_dict(),
        }

    def describe(self):
        lines = ["checker: %s — %d events, %d windows checked, "
                 "%d verdicts (online %d), coverage %.4f"
                 % (self.status.upper(), self.events_checked,
                    self.windows_checked, len(self.verdicts),
                    len(self.online), self.coverage)]
        if self.missing_events:
            lines.append("  %d event(s) missing in %d gap(s); "
                         "%d corruption record(s)"
                         % (self.missing_events, len(self.gaps),
                            len(self.corruptions)))
        if self.windows_open or self.windows_unverified:
            lines.append("  windows: %d still open at stream end, "
                         "%d unverifiable"
                         % (self.windows_open, self.windows_unverified))
        for verdict in self.disagreements:
            side = ("checker-only" if verdict in self.verdicts
                    else "online-only")
            lines.append("  disagreement [%s]: ar=%s local=%s remote=%s "
                         "(%s,%s,%s) prevented=%s"
                         % ((side,) + tuple(verdict)))
        lines.extend("  anomaly: %s" % text for text in self.anomalies)
        lines.append("  memory: peak %d live region(s), %d epoch(s), "
                     "%d retained trigger(s)"
                     % (self.stats.live_regions_peak,
                        self.stats.live_epochs_peak,
                        self.stats.retained_triggers_peak))
        return "\n".join(lines)


class StreamingChecker:
    """Feed events in journal order; call :meth:`finish` once."""

    def __init__(self):
        self.stats = CheckerStats()
        self._regions = {}    # (tid, ar) -> _Region
        self._zombies = {}    # (tid, ar) -> _Region
        self._epochs = {}     # (slot, gen) -> _Epoch
        self._slot_gen = {}   # slot -> highest gen seen armed
        self._verdicts = []
        self._online = []
        self._anomalies = []
        self._gaps = []
        self._missing = 0
        self._first_seq = None
        self._last_seq = None
        self._last_kind = None
        self._events = 0
        self._unverified = 0
        self._retained_triggers = 0

    # -- bookkeeping ----------------------------------------------------

    def _note_peaks(self):
        live = len(self._regions) + len(self._zombies)
        if live > self.stats.live_regions_peak:
            self.stats.live_regions_peak = live
        if len(self._epochs) > self.stats.live_epochs_peak:
            self.stats.live_epochs_peak = len(self._epochs)
        if self._retained_triggers > self.stats.retained_triggers_peak:
            self.stats.retained_triggers_peak = self._retained_triggers

    def _epoch(self, slot, gen):
        epoch = self._epochs.get((slot, gen))
        if epoch is None:
            epoch = _Epoch()
            self._epochs[(slot, gen)] = epoch
            self.stats.epochs_opened += 1
            seen = self._slot_gen.get(slot)
            if seen is None or (gen is not None
                                and (seen is None or gen > seen)):
                self._slot_gen[slot] = gen
            elif gen is not None and seen is not None and gen < seen:
                # an epoch surfacing after its slot moved on (gap
                # reordering) is already retired
                epoch.armed = False
        return epoch

    def _maybe_gc(self, slot, gen):
        epoch = self._epochs.get((slot, gen))
        if epoch is not None and epoch.refs <= 0 and not epoch.armed:
            self._retained_triggers -= len(epoch.triggers)
            del self._epochs[(slot, gen)]
            self.stats.epochs_gcd += 1

    def _retire_epoch(self, slot, gen):
        epoch = self._epochs.get((slot, gen))
        if epoch is not None:
            epoch.armed = False
            self._maybe_gc(slot, gen)

    def _detach(self, region):
        epoch = self._epochs.get((region.slot, region.gen))
        if epoch is not None:
            epoch.refs -= 1
            self._maybe_gc(region.slot, region.gen)

    # -- evaluation -----------------------------------------------------

    def _evaluate(self, region, second, force_unprevented):
        """Mirror of the kernel's end_atomic serializability evaluation
        (and of :func:`repro.journal.postmortem.reverify`)."""
        epoch = self._epochs.get((region.slot, region.gen))
        triggers = epoch.triggers if epoch is not None else ()
        first = _kind(region.first)
        second = _kind(second)
        for tid, kinds, time_ns, undone in triggers:
            if tid == region.tid or time_ns < region.begin_time:
                continue
            for kind_text in kinds:
                if is_unserializable(first, _kind(kind_text), second):
                    self._verdicts.append(
                        (region.ar, region.tid, tid, str(first),
                         str(_kind(kind_text)), str(second),
                         bool(undone) and not force_unprevented))
                    break
        self.stats.windows_closed += 1

    # -- the stream -----------------------------------------------------

    def feed(self, event):
        seq = event.seq
        if self._first_seq is None:
            self._first_seq = seq
        if self._last_seq is not None and seq > self._last_seq + 1:
            self._gaps.append((self._last_seq + 1, seq - 1))
            self._missing += seq - self._last_seq - 1
        self._last_seq = seq
        self._last_kind = event.kind
        self._events += 1
        kind, p, tid = event.kind, event.payload, event.tid

        if kind == "begin":
            key = (tid, p["ar"])
            stale = self._regions.pop(key, None)
            if stale is not None:
                # its end fell in a gap, or the recorder restarted the
                # window; either way the stale window can never be
                # evaluated (postmortem overwrites it silently too)
                self._detach(stale)
                if self._missing or self._gaps:
                    self._unverified += 1
            region = _Region(tid, p["ar"], p.get("slot"), p.get("gen"),
                             p.get("first"), event.time_ns, seq)
            epoch = self._epoch(region.slot, region.gen)
            epoch.refs += 1
            self._regions[key] = region
            self.stats.windows_opened += 1
        elif kind == "trigger":
            epoch = self._epoch(p.get("slot"), p.get("gen"))
            epoch.triggers.append((tid, tuple(p.get("kinds", ())),
                                   event.time_ns, bool(p.get("undone"))))
            self._retained_triggers += 1
            self.stats.triggers_seen += 1
        elif kind == "arm":
            slot, gen = p.get("slot"), p.get("gen")
            prev = self._slot_gen.get(slot)
            if prev is not None and gen is not None and gen > prev:
                self._retire_epoch(slot, prev)
            self._epoch(slot, gen)
        elif kind == "disarm":
            self._retire_epoch(p.get("slot"), p.get("gen"))
        elif kind == "zombify":
            key = (tid, p["ar"])
            region = self._regions.pop(key, None)
            if region is None:
                self._note_damage("zombify of AR %d (tid %d) without begin"
                                  % (p["ar"], tid))
            else:
                self._zombies[key] = region
        elif kind == "clear":
            region = self._regions.pop((tid, p["ar"]), None)
            if region is not None:
                self._detach(region)
                self.stats.windows_closed += 1
        elif kind == "end":
            key = (tid, p["ar"])
            source = self._zombies if p.get("zombie") else self._regions
            region = source.pop(key, None)
            if region is None:
                self._note_damage("%send of AR %d (tid %d) without %s"
                                  % ("zombie " if p.get("zombie") else "",
                                     p["ar"], tid,
                                     "zombify" if p.get("zombie")
                                     else "begin"))
            else:
                self._evaluate(region, p.get("second"),
                               bool(p.get("zombie")))
                self._detach(region)
        elif kind == "violation":
            self._online.append(
                (p.get("ar"), tid, p.get("remote_tid"), p.get("first"),
                 p.get("remote"), p.get("second"),
                 bool(p.get("prevented"))))
        self._note_peaks()

    def _note_damage(self, text):
        """A structural impossibility: an anomaly on an intact journal, an
        expected casualty (counted, not alarmed) on a damaged one."""
        if self._missing or self._gaps:
            self._unverified += 1
        else:
            self._anomalies.append(text)

    def finish(self, corruptions=(), damaged=False):
        """Close the pass; returns the :class:`CheckResult`.

        ``corruptions`` are :class:`repro.journal.stream.Corruption`
        records (or their dicts) from the disk reader; ``damaged`` marks
        journals whose reader reported damage even if no frame was lost
        between surviving sequence numbers.
        """
        corruption_dicts = [c.as_dict() if hasattr(c, "as_dict") else dict(c)
                            for c in corruptions]
        clean_close = self._last_kind == "run-end"
        head_missing = self._first_seq or 0
        known_missing = self._missing + head_missing
        if not clean_close:
            known_missing += 1  # the tail is at least one frame short
        decoded = self._events
        coverage = (decoded / float(decoded + known_missing)
                    if decoded else 0.0)
        complete = (clean_close and not self._missing and not head_missing
                    and not corruption_dicts and not damaged)
        # Leftover windows are counted, never alarmed: a damaged journal
        # loses ends with its tail, and even an intact one legitimately
        # strands a zombie when a prevented violation rolls the thread
        # back to the region start (the re-executed begin opens a fresh
        # window; the zombified one never sees its end_atomic).
        windows_open = len(self._regions) + len(self._zombies)
        return CheckResult(
            verdicts=sorted(self._verdicts),
            online=sorted(self._online),
            coverage=coverage,
            complete=complete,
            clean_close=clean_close,
            events_checked=decoded,
            missing_events=self._missing + head_missing,
            gaps=list(self._gaps),
            corruptions=corruption_dicts,
            windows_checked=self.stats.windows_closed,
            windows_open=windows_open,
            windows_unverified=self._unverified,
            anomalies=list(self._anomalies),
            stats=self.stats,
        )


def check_events(events, corruptions=(), damaged=False):
    """Check an in-memory event iterable (recorder, replayed list)."""
    checker = StreamingChecker()
    for event in events:
        checker.feed(event)
        checker.stats.events += 1
    return checker.finish(corruptions=corruptions, damaged=damaged)


def check_journal(journal):
    """Check a journal without re-execution.

    ``journal`` is a path (streamed frame-by-frame from disk through the
    resynchronizing reader — damage yields partial verdicts, never an
    exception), or a JournalRecorder / JournalReadResult / event list.
    """
    if isinstance(journal, str):
        from repro.journal.stream import EventStream

        stream = EventStream(journal)
        checker = StreamingChecker()
        for event in stream:
            checker.feed(event)
            checker.stats.events += 1
        return checker.finish(corruptions=stream.corruptions,
                              damaged=stream.damaged)
    events, torn = events_from(journal)
    return check_events(events, damaged=torn)


__all__ = ["CheckResult", "CheckerStats", "StreamingChecker",
           "check_events", "check_journal"]
