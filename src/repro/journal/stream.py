"""Streaming, corruption-tolerant journal reader.

:func:`repro.journal.format.read_journal` honors the torn-tail contract:
it stops at the *first* corrupt frame and keeps everything before it.
That is the right posture for recovery (a salvaged prefix must be a
verified prefix), but the offline checker wants the opposite trade: keep
producing verdicts from whatever survives, however the file was damaged.
This module provides that reader:

- **streaming** — segments are memory-mapped read-only and parsed frame
  by frame, so a million-event journal is checked without building the
  event list in memory and the OS keeps residency bounded to the pages
  being walked;
- **resynchronizing** — a mid-file corruption (flipped bytes, a torn
  rotation boundary, an overwritten region) is recorded and then
  *scanned past*: the reader hunts byte-by-byte for the next plausible
  frame header whose length is sane, whose CRC matches, whose payload
  decodes to a known event kind and whose sequence number advances the
  stream.  A 32-bit CRC plus those structural checks make a false
  resync astronomically unlikely;
- **accounting, not exceptions** — every skipped byte range becomes a
  :class:`Corruption` record and every lost frame range a sequence gap;
  the checker turns both into an explicit coverage fraction instead of
  a crash or a silent full-pass claim.

Rotated journals stitch ``path.N`` (oldest) .. ``path`` exactly like the
strict reader; a pruned-oldest rotation simply surfaces as a stream that
starts at a non-zero sequence number.
"""

import mmap
import os
import zlib

from repro.errors import JournalError
from repro.journal.events import EVENT_KINDS, decode_event
from repro.journal.format import (MAX_FRAME_BYTES, SEGMENT_MAGIC, _HEADER,
                                  segment_paths)


class Corruption:
    """One damaged byte range the reader skipped (or stopped at)."""

    __slots__ = ("segment", "offset", "reason", "skipped_bytes", "resynced")

    def __init__(self, segment, offset, reason, skipped_bytes, resynced):
        self.segment = segment
        #: Byte offset of the first bad byte within its segment.
        self.offset = offset
        #: "bad-magic" | "bad-frame" | "torn-tail"
        self.reason = reason
        self.skipped_bytes = skipped_bytes
        #: True when a later valid frame was found in the same segment.
        self.resynced = resynced

    def as_dict(self):
        return {"segment": os.path.basename(self.segment),
                "offset": self.offset, "reason": self.reason,
                "skipped_bytes": self.skipped_bytes,
                "resynced": self.resynced}

    def __repr__(self):
        return "Corruption(%s@%d, %s, skipped=%d%s)" % (
            os.path.basename(self.segment), self.offset, self.reason,
            self.skipped_bytes, ", resynced" if self.resynced else "")


class EventStream:
    """Iterate journal events across all segments, resynchronizing past
    damage.  Iterate first; the accounting attributes (``corruptions``,
    ``frames``, ``bytes_skipped``, ``segments_read``) are final once the
    iterator is exhausted."""

    def __init__(self, path):
        self.path = path
        self.corruptions = []
        self.frames = 0
        self.segments_read = 0
        self.bytes_skipped = 0
        self._last_seq = None

    @property
    def damaged(self):
        return bool(self.corruptions)

    def __iter__(self):
        paths = segment_paths(self.path)
        if not paths:
            raise JournalError("no journal at %s" % self.path)
        for seg in paths:
            with open(seg, "rb") as f:
                try:
                    view = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
                except (ValueError, OSError):
                    view = f.read()  # empty or unmappable: small anyway
            try:
                for event in self._iter_segment(view, seg):
                    yield event
            finally:
                if isinstance(view, mmap.mmap):
                    view.close()
            self.segments_read += 1

    # ------------------------------------------------------------------

    def _try_frame(self, data, offset):
        """Decode one frame at ``offset``; returns (event, frame_bytes)
        or (None, reason) with reason "short" (runs off the end — a torn
        tail) or "bad" (structurally or semantically invalid)."""
        if len(data) - offset < _HEADER.size:
            return None, "short"
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            return None, "bad"
        start = offset + _HEADER.size
        if len(data) - start < length:
            return None, "short"
        payload = bytes(data[start:start + length])
        if zlib.crc32(payload) != crc:
            return None, "bad"
        try:
            event = decode_event(payload)
        except JournalError:
            return None, "bad"
        if event.kind not in EVENT_KINDS:
            return None, "bad"
        if self._last_seq is not None and event.seq <= self._last_seq:
            # CRC-valid but non-advancing: a duplicated block or a false
            # resync candidate; never let it corrupt checker state
            return None, "bad"
        return event, _HEADER.size + length

    def _emit(self, event):
        self._last_seq = event.seq
        self.frames += 1
        return event

    def _iter_segment(self, data, seg):
        size = len(data)
        if size == 0:
            return  # writer died before the magic; nothing to salvage
        offset = 0
        if bytes(data[:len(SEGMENT_MAGIC)]) == SEGMENT_MAGIC:
            offset = len(SEGMENT_MAGIC)
        else:
            bad_at = 0
            event, advance = self._resync(data, 1)
            if event is None:
                self.corruptions.append(Corruption(
                    seg, bad_at, "bad-magic", size, resynced=False))
                self.bytes_skipped += size
                return
            self.corruptions.append(Corruption(
                seg, bad_at, "bad-magic", advance[0], resynced=True))
            self.bytes_skipped += advance[0]
            offset = advance[0] + advance[1]
            yield self._emit(event)
        while offset < size:
            event, frame_bytes = self._try_frame(data, offset)
            if event is not None:
                offset += frame_bytes
                yield self._emit(event)
                continue
            reason = frame_bytes
            if reason == "short":
                self.corruptions.append(Corruption(
                    seg, offset, "torn-tail", size - offset, resynced=False))
                self.bytes_skipped += size - offset
                return
            event, advance = self._resync(data, offset + 1)
            if event is None:
                self.corruptions.append(Corruption(
                    seg, offset, "bad-frame", size - offset, resynced=False))
                self.bytes_skipped += size - offset
                return
            self.corruptions.append(Corruption(
                seg, offset, "bad-frame", advance[0] - offset,
                resynced=True))
            self.bytes_skipped += advance[0] - offset
            offset = advance[0] + advance[1]
            yield self._emit(event)

    def _resync(self, data, start):
        """Scan forward from ``start`` for the next valid frame; returns
        (event, (frame_offset, frame_bytes)) or (None, None)."""
        for offset in range(start, len(data)):
            event, frame_bytes = self._try_frame(data, offset)
            if event is not None:
                return event, (offset, frame_bytes)
        return None, None


def stream_events(path):
    """Convenience: returns (iterator, EventStream) so callers can read
    the damage accounting after exhausting the iterator."""
    stream = EventStream(path)
    return iter(stream), stream


__all__ = ["Corruption", "EventStream", "stream_events"]
