"""On-disk journal format: CRC-framed, append-only, bounded rotation.

Layout of one segment file::

    8 bytes   segment magic  b"KIVATIJ1"
    frames    <u32 payload length> <u32 crc32(payload)> <payload bytes>

Payloads are canonical JSON event records (:mod:`repro.journal.events`).
The writer flushes after every frame so a crash loses at most the frame
being written; the reader is torn-tail tolerant — it stops at the first
corrupt frame (bad magic, truncated header or payload, CRC mismatch,
undecodable record) and keeps every frame before it.

Rotation keeps disk usage bounded: when the active segment exceeds
``max_bytes`` it is shifted to ``path.1`` (``path.1`` to ``path.2``, and
so on) and segments beyond ``max_segments`` are deleted, oldest first.
The reader stitches ``path.N`` (oldest) .. ``path.1``, ``path`` back into
one stream; sequence numbers recorded in the frames survive rotation, so
a journal whose oldest segments were pruned still aligns with a fresh
re-execution by seq.
"""

import os
import struct
import zlib

from repro.errors import JournalError
from repro.journal.events import EVENT_KINDS, decode_event, encode_event

SEGMENT_MAGIC = b"KIVATIJ1"
_HEADER = struct.Struct("<II")
#: Defensive cap: a garbage length field must not trigger a huge read.
MAX_FRAME_BYTES = 1 << 24


def frame_bytes(payload):
    """Full on-disk bytes of one frame for ``payload``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise JournalError("frame payload of %d bytes exceeds cap"
                           % len(payload))
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class JournalWriter:
    """Append-only writer with per-frame flush and bounded rotation."""

    def __init__(self, path, max_bytes=4 * 1024 * 1024, max_segments=8):
        if max_bytes < 4096:
            raise JournalError("max_bytes must be at least 4096")
        if max_segments < 1:
            raise JournalError("max_segments must be at least 1")
        self.path = path
        self.max_bytes = max_bytes
        self.max_segments = max_segments
        self.frames_written = 0
        self.rotations = 0
        self._file = None
        self._segment_bytes = 0
        self._open_segment()

    # ------------------------------------------------------------------

    def _open_segment(self):
        self._file = open(self.path, "wb")
        self._file.write(SEGMENT_MAGIC)
        self._file.flush()
        self._segment_bytes = len(SEGMENT_MAGIC)

    def _rotate(self):
        self._file.close()
        self._file = None
        # shift path.N -> path.N+1, oldest first, pruning past the cap
        suffixes = []
        n = 1
        while os.path.exists("%s.%d" % (self.path, n)):
            suffixes.append(n)
            n += 1
        for n in reversed(suffixes):
            src = "%s.%d" % (self.path, n)
            if n + 1 >= self.max_segments:
                os.unlink(src)
            else:
                os.replace(src, "%s.%d" % (self.path, n + 1))
        if self.max_segments > 1:
            os.replace(self.path, "%s.1" % self.path)
        else:
            os.unlink(self.path)
        self.rotations += 1
        self._open_segment()

    # ------------------------------------------------------------------

    def append(self, event):
        """Frame and append one event; flushes before returning."""
        if self._file is None:
            raise JournalError("journal writer is closed")
        data = frame_bytes(encode_event(event))
        self._file.write(data)
        self._file.flush()
        self._segment_bytes += len(data)
        self.frames_written += 1
        if self._segment_bytes >= self.max_bytes:
            self._rotate()

    def append_torn(self, event, torn_bytes=None):
        """Simulate a crash mid-append: write only a prefix of the frame.

        Used by the ``journal.crash`` injection point; the written tail
        must be dropped (not mis-parsed) by the reader.
        """
        if self._file is None:
            raise JournalError("journal writer is closed")
        data = frame_bytes(encode_event(event))
        if torn_bytes is None:
            torn_bytes = len(data) // 2
        torn_bytes = max(1, min(torn_bytes, len(data) - 1))
        self._file.write(data[:torn_bytes])
        self._file.flush()
        self._segment_bytes += torn_bytes

    def close(self):
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def closed(self):
        return self._file is None


class JournalReadResult:
    """Outcome of reading a journal from disk."""

    __slots__ = ("events", "torn", "segments_read", "valid_bytes",
                 "torn_segment")

    def __init__(self, events, torn, segments_read, valid_bytes,
                 torn_segment=None):
        self.events = events
        #: True if the stream ended at a corrupt/truncated frame.
        self.torn = torn
        self.segments_read = segments_read
        #: Bytes of the last segment read that framed cleanly.
        self.valid_bytes = valid_bytes
        #: Path of the segment holding the corruption, if any.
        self.torn_segment = torn_segment

    @property
    def first_seq(self):
        return self.events[0].seq if self.events else None

    @property
    def last_seq(self):
        return self.events[-1].seq if self.events else None

    def __len__(self):
        return len(self.events)


def _read_segment(path):
    """Read one segment; returns (events, clean, valid_bytes)."""
    with open(path, "rb") as f:
        data = f.read()
    if not data:
        return [], True, 0
    if not data.startswith(SEGMENT_MAGIC):
        return [], False, 0
    events = []
    offset = len(SEGMENT_MAGIC)
    while True:
        if offset == len(data):
            return events, True, offset
        if len(data) - offset < _HEADER.size:
            return events, False, offset
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            return events, False, offset
        start = offset + _HEADER.size
        if len(data) - start < length:
            return events, False, offset
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return events, False, offset
        try:
            event = decode_event(payload)
        except JournalError:
            return events, False, offset
        if event.kind not in EVENT_KINDS:
            return events, False, offset
        events.append(event)
        offset = start + length


def segment_paths(path):
    """Existing segment files, oldest first (``path.N`` .. ``path``)."""
    paths = []
    n = 1
    while os.path.exists("%s.%d" % (path, n)):
        paths.append("%s.%d" % (path, n))
        n += 1
    paths.reverse()
    if os.path.exists(path):
        paths.append(path)
    return paths

def read_journal(path):
    """Read a (possibly rotated, possibly torn) journal.

    Stops at the first corrupt frame anywhere in the stream and keeps
    everything before it, per the torn-tail contract.
    """
    paths = segment_paths(path)
    if not paths:
        raise JournalError("no journal at %s" % path)
    events = []
    segments_read = 0
    valid_bytes = 0
    for seg in paths:
        seg_events, clean, seg_bytes = _read_segment(seg)
        events.extend(seg_events)
        segments_read += 1
        valid_bytes = seg_bytes
        if not clean:
            return JournalReadResult(events, True, segments_read,
                                     valid_bytes, torn_segment=seg)
    return JournalReadResult(events, False, segments_read, valid_bytes)
