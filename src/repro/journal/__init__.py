"""Crash-safe incident journal with deterministic replay.

The in-memory :class:`repro.core.tracing.Trace` ring buffer dies with the
process; nothing a production deployment flags can be reproduced or
audited after a crash. This package adds the durable plane:

- :mod:`repro.journal.events` — the canonical event model shared by the
  recorder, the reader, the replay engine and the offline checker;
- :mod:`repro.journal.format` — a CRC-framed, append-only, bounded-
  rotation on-disk format whose reader tolerates a torn tail (it
  truncates at the first corrupt frame and keeps everything before it);
- :mod:`repro.journal.recorder` — the runtime sink: scheduler decisions,
  begin/end/clear_atomic, traps, suspensions, timeouts, watchdog breaks,
  undo operations and degradations stream through it, optionally to disk;
- :mod:`repro.journal.replay` — deterministic replay of a recorded run,
  pinned to the journaled schedule, with a first-divergence detector;
- :mod:`repro.journal.recovery` — crash recovery: reconstruct consistent
  AR-table and watchpoint state from the journal and resume (by verified
  re-execution) or abort cleanly;
- :mod:`repro.journal.postmortem` — an offline serializability
  re-verifier (RegionTrack-style) that cross-checks every online verdict;
- :mod:`repro.journal.stream` — a streaming, resynchronizing reader that
  scans past mid-file damage and accounts for every skipped byte;
- :mod:`repro.journal.checker` — the sound-and-complete streaming
  offline checker: verdicts without re-execution, bounded memory, and
  explicit partial coverage on damaged journals.
"""

from repro.journal.checker import (CheckResult, StreamingChecker,
                                   check_events, check_journal)
from repro.journal.events import JournalEvent, decode_event, encode_event
from repro.journal.format import (JournalReadResult, JournalWriter,
                                  read_journal)
from repro.journal.recorder import JournalRecorder
from repro.journal.stream import Corruption, EventStream, stream_events

__all__ = [
    "CheckResult",
    "Corruption",
    "EventStream",
    "JournalEvent",
    "JournalReadResult",
    "JournalRecorder",
    "JournalWriter",
    "StreamingChecker",
    "check_events",
    "check_journal",
    "decode_event",
    "encode_event",
    "read_journal",
    "stream_events",
]
