"""The journal recorder: runtime event sink, optionally backed by disk.

The recorder exposes the same ``emit(time_ns, tid, kind, **details)``
surface as :class:`repro.core.tracing.Trace`, so the machine, kernel and
runtime write to both through one call site. Unlike the trace ring
buffer, every event is framed and (when a writer is attached) flushed to
disk immediately — the journal is the durable record.

Crash injection: when a :class:`repro.faults.plan.FaultInjector` whose
plan schedules ``journal.crash`` is attached, each frame append is an
opportunity; when the point fires the writer emits a torn partial frame
(unless ``param torn=0``) and raises :class:`JournalCrash`, simulating
the monitoring process dying mid-write.
"""

from repro.errors import JournalCrash
from repro.journal.events import JournalEvent, jsonable


class JournalRecorder:
    """Collects journal events in order; optionally streams them to a
    :class:`repro.journal.format.JournalWriter`."""

    def __init__(self, writer=None, faults=None, max_events=None):
        self.writer = writer
        self.faults = faults
        #: Optional in-memory bound (the disk side is bounded by
        #: rotation); evictions are counted, never silent.
        self.max_events = max_events
        self.events = []
        self.dropped = 0
        self._seq = 0

    # ------------------------------------------------------------------

    def emit(self, time_ns, tid, kind, **details):
        """Record one event; returns it (mostly for tests)."""
        event = JournalEvent(self._seq, time_ns, tid, kind,
                             {k: jsonable(v) for k, v in details.items()})
        self._seq += 1
        if (self.faults is not None
                and self.faults.fires("journal.crash", time_ns,
                                      frame=event.seq, kind=kind)):
            if self.writer is not None:
                if self.faults.param("journal.crash", "torn", 1):
                    torn_bytes = self.faults.param("journal.crash",
                                                   "torn_bytes")
                    self.writer.append_torn(event, torn_bytes)
                self.writer.close()
            raise JournalCrash(len(self.events), time_ns)
        if self.writer is not None:
            self.writer.append(event)
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
        else:
            self.events.append(event)
        return event

    def close(self):
        if self.writer is not None:
            self.writer.close()

    # ------------------------------------------------------------------

    def filter(self, kinds=None, tid=None):
        if isinstance(kinds, str):
            kinds = (kinds,)
        return [e for e in self.events
                if (kinds is None or e.kind in kinds)
                and (tid is None or e.tid == tid)]

    def render(self, limit=200):
        lines = [e.describe() for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append("... %d more events" % (len(self.events) - limit))
        if self.dropped:
            lines.append("... %d events dropped (max_events=%d)"
                         % (self.dropped, self.max_events))
        return "\n".join(lines)

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "JournalRecorder(%d events%s)" % (
            len(self.events),
            ", disk" if self.writer is not None else "")
