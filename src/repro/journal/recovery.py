"""Crash recovery from a torn journal.

A monitoring session that dies mid-run (provoked on demand by the
``journal.crash`` injection point) leaves behind a journal that ends at
an arbitrary frame boundary, possibly with a torn partial frame after it.
Recovery proceeds in three steps:

1. **Salvage** — the torn-tolerant reader keeps every complete frame
   before the first corruption.
2. **Reconstruct** — fold the salvaged events into the kernel/runtime
   state they imply (armed watchpoint slots, open AR windows, suspended
   threads, zombie ARs) and validate its internal consistency: a journal
   whose events contradict each other indicates lost frames, not just a
   torn tail.
3. **Resume or abort** — a simulated machine cannot continue from the
   middle of a run, so "resume" means deterministic re-execution: rebuild
   the config from the run-start header (stripping ``journal.crash`` so
   the re-run outlives the recorded crash), replay pinned to the salvaged
   schedule, and verify the salvaged frames are a clean prefix of the
   fresh stream.  Any contradiction aborts cleanly with the first
   divergence in hand.
"""

from repro.errors import JournalCrash, JournalError
from repro.journal.format import read_journal
from repro.journal.recorder import JournalRecorder
from repro.journal.replay import replay_run


class OpenWindow:
    """An AR window the journal opened but never closed."""

    __slots__ = ("tid", "ar", "slot", "gen", "first", "begin_time", "zombie")

    def __init__(self, tid, ar, slot, gen, first, begin_time, zombie=False):
        self.tid = tid
        self.ar = ar
        self.slot = slot
        self.gen = gen
        self.first = first
        self.begin_time = begin_time
        self.zombie = zombie

    def __repr__(self):
        return "OpenWindow(tid=%d, ar=%d, slot=%s, gen=%s%s)" % (
            self.tid, self.ar, self.slot, self.gen,
            ", zombie" if self.zombie else "")


class ReconstructedState:
    """Kernel/runtime state implied by a (possibly truncated) journal."""

    def __init__(self):
        self.header = None          # run-start config snapshot
        self.completed = False      # saw run-end
        self.armed = {}             # slot -> (gen, addr)
        self.windows = {}           # (tid, ar) -> OpenWindow
        self.zombies = {}           # (tid, ar) -> OpenWindow
        self.suspended = set()      # tids currently suspended
        self.violations = []        # violation event payload-tuples
        self.counts = {}            # kind -> events seen
        self.problems = []          # consistency violations (strings)

    @property
    def consistent(self):
        return not self.problems

    def _problem(self, event, text):
        self.problems.append("event %d (%s at t=%dns): %s"
                             % (event.seq, event.kind, event.time_ns, text))

    def apply(self, event):
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        kind, p, tid = event.kind, event.payload, event.tid
        if kind == "run-start":
            self.header = p.get("config")
        elif kind == "run-end":
            self.completed = True
        elif kind == "arm":
            self.armed[p["slot"]] = (p["gen"], p["addr"])
        elif kind == "disarm":
            slot = p["slot"]
            if slot not in self.armed:
                self._problem(event, "disarm of slot %d never armed" % slot)
            elif self.armed[slot][0] != p["gen"]:
                self._problem(event, "disarm gen %s != armed gen %s"
                              % (p["gen"], self.armed[slot][0]))
            self.armed.pop(slot, None)
        elif kind == "begin":
            slot, gen = p.get("slot"), p.get("gen")
            if slot is not None and self.armed.get(slot, (None,))[0] != gen:
                self._problem(event, "begin on slot %s gen %s, armed %s"
                              % (slot, gen, self.armed.get(slot)))
            self.windows[(tid, p["ar"])] = OpenWindow(
                tid, p["ar"], slot, gen, p.get("first"), event.time_ns)
        elif kind == "trigger":
            slot, gen = p.get("slot"), p.get("gen")
            if self.armed.get(slot, (None,))[0] != gen:
                self._problem(event, "trigger on slot %s gen %s, armed %s"
                              % (slot, gen, self.armed.get(slot)))
        elif kind == "end":
            key = (tid, p["ar"])
            if p.get("zombie"):
                if key not in self.zombies:
                    self._problem(event, "zombie end without zombify")
                self.zombies.pop(key, None)
            elif self.windows.pop(key, None) is None:
                self._problem(event, "end of AR %d never begun" % p["ar"])
        elif kind == "clear":
            # clears are legal no-ops when the AR was whitelisted/missed
            self.windows.pop((tid, p["ar"]), None)
        elif kind == "zombify":
            window = self.windows.pop((tid, p["ar"]), None)
            if window is None:
                window = OpenWindow(tid, p["ar"], p.get("slot"), p.get("gen"),
                                    None, p.get("begin_time", event.time_ns))
            window.zombie = True
            self.zombies[(tid, p["ar"])] = window
        elif kind == "suspend":
            self.suspended.add(tid)
        elif kind == "wake":
            if tid not in self.suspended:
                self._problem(event, "wake of tid %d never suspended" % tid)
            self.suspended.discard(tid)
        elif kind in ("timeout", "watchdog"):
            self.suspended.discard(tid)
        elif kind == "violation":
            self.violations.append((p.get("ar"), tid, p.get("remote_tid"),
                                    p.get("first"), p.get("remote"),
                                    p.get("second"), bool(p.get("prevented"))))

    def describe(self):
        lines = ["reconstructed state: %d armed slots, %d open windows, "
                 "%d zombies, %d suspended, %d violations%s"
                 % (len(self.armed), len(self.windows), len(self.zombies),
                    len(self.suspended), len(self.violations),
                    ", complete" if self.completed else " (truncated run)")]
        lines.extend("  INCONSISTENT: %s" % text for text in self.problems)
        return "\n".join(lines)


def reconstruct_state(events):
    """Fold an event stream into a :class:`ReconstructedState`."""
    state = ReconstructedState()
    prev_seq = None
    for event in events:
        if prev_seq is not None and event.seq != prev_seq + 1:
            state._problem(event, "sequence gap after %d" % prev_seq)
        prev_seq = event.seq
        state.apply(event)
    return state


class RecoveryResult:
    """Outcome of one crash-recovery attempt."""

    __slots__ = ("action", "reason", "salvaged", "torn", "state", "replay")

    def __init__(self, action, reason, salvaged, torn, state, replay):
        self.action = action      # "resumed" or "aborted"
        self.reason = reason
        self.salvaged = salvaged  # events recovered from the journal
        self.torn = torn
        self.state = state        # ReconstructedState or None
        self.replay = replay      # ReplayResult or None

    @property
    def ok(self):
        return self.action == "resumed"

    @property
    def report(self):
        return self.replay.report if self.replay is not None else None

    def describe(self):
        lines = ["recovery: %s (%s); salvaged %d frames%s"
                 % (self.action.upper(), self.reason, len(self.salvaged),
                    ", torn tail" if self.torn else "")]
        if self.state is not None:
            lines.append(self.state.describe())
        if self.replay is not None and self.replay.divergence is not None:
            lines.append(self.replay.divergence.describe())
        return "\n".join(lines)


class SalvageResult:
    """Step 1+2 of recovery without re-execution: what a torn journal
    yields once read tolerantly and folded into implied state.

    The fleet supervisor uses this to triage a crashed worker's journal
    cheaply (frames salvaged, internal consistency, whether the header
    survived) before deciding to pay for a full deterministic re-run.
    """

    __slots__ = ("path", "events", "state", "torn", "reason")

    def __init__(self, path, events, state, torn, reason):
        self.path = path
        self.events = events
        self.state = state        # ReconstructedState or None
        self.torn = torn
        self.reason = reason

    @property
    def ok(self):
        """True when the salvaged frames describe a usable prefix: at
        least one frame, a surviving run-start header, and no internal
        contradictions (contradictions mean frames were *lost*, not just
        torn off the tail)."""
        return (bool(self.events) and self.state is not None
                and self.state.header is not None and self.state.consistent)

    @property
    def completed(self):
        return self.state is not None and self.state.completed

    def describe(self):
        return "salvage of %s: %d frames%s — %s" % (
            self.path, len(self.events),
            ", torn tail" if self.torn else "", self.reason)


def salvage(journal_path):
    """Read a (possibly torn) journal and reconstruct its implied state.

    Never raises: an unreadable journal is reported as an empty, not-ok
    salvage.  This is the cheap triage step shared by :func:`recover`
    and the fleet supervisor's crashed-worker handling.
    """
    try:
        result = read_journal(journal_path)
    except JournalError as exc:
        return SalvageResult(journal_path, [], None, False,
                             "unreadable journal: %s" % exc)
    events = list(result.events)
    if not events:
        return SalvageResult(journal_path, events, None, result.torn,
                             "no complete frame survived")
    state = reconstruct_state(events)
    if state.header is None:
        reason = "run-start header lost (rotated away or torn)"
    elif not state.consistent:
        reason = ("journal is internally inconsistent (%d problems — "
                  "frames lost, not just torn)" % len(state.problems))
    else:
        reason = "%d frames form a consistent prefix" % len(events)
    return SalvageResult(journal_path, events, state, result.torn, reason)


def recover(program, journal_path):
    """Recover a crashed session from its on-disk journal."""
    try:
        result = read_journal(journal_path)
    except JournalError as exc:
        return RecoveryResult("aborted", "unreadable journal: %s" % exc,
                              [], False, None, None)
    salvaged = list(result.events)
    if not salvaged:
        return RecoveryResult("aborted", "no complete frame survived",
                              salvaged, result.torn, None, None)
    state = reconstruct_state(salvaged)
    if state.header is None:
        return RecoveryResult(
            "aborted", "run-start header lost (rotated away or torn)",
            salvaged, result.torn, state, None)
    if not state.consistent:
        return RecoveryResult(
            "aborted", "journal is internally inconsistent "
            "(%d problems — frames lost, not just torn)"
            % len(state.problems), salvaged, result.torn, state, None)
    try:
        replay = replay_run(program, salvaged,
                            drop_fault_points=("journal.crash",))
    except JournalCrash as exc:  # pragma: no cover - defense in depth
        return RecoveryResult("aborted", "re-execution crashed again: %s"
                              % exc, salvaged, result.torn, state, None)
    if replay.divergence is not None:
        return RecoveryResult(
            "aborted", "salvaged frames are not a prefix of the "
            "re-executed run", salvaged, result.torn, state, replay)
    action = "resumed"
    reason = ("re-executed to completion; %d salvaged frames verified "
              "as a clean prefix" % len(salvaged))
    return RecoveryResult(action, reason, salvaged, result.torn, state,
                          replay)


def crash_at_frame(program, config, frame, writer, torn=1):
    """Run ``program`` arranging a journal.crash at frame ``frame``.

    Returns the :class:`JournalCrash` that fired, or None when the run
    finished first (``frame`` past the journal's end).  The recorder is
    attached to ``writer`` so the crash leaves a real on-disk journal.
    """
    from repro.faults.plan import FaultPlan, FaultSpec

    specs = [FaultSpec("journal.crash", probability=1.0, max_fires=1,
                       start_after=frame, param={"torn": torn})]
    plan = config.faults
    if plan is not None:
        specs.extend(s for s in plan.specs if s.point != "journal.crash")
    crash_config = config.copy(
        faults=FaultPlan("crash-at-%d" % frame, specs),
        journal=JournalRecorder(writer=writer))
    try:
        program.run(crash_config)
    except JournalCrash as crash:
        return crash
    return None


__all__ = ["OpenWindow", "ReconstructedState", "RecoveryResult",
           "SalvageResult", "crash_at_frame", "reconstruct_state",
           "recover", "salvage"]
