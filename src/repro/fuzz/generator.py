"""Deterministic, seed-driven mini-C program generator.

The generator builds :mod:`repro.minic.ast` nodes directly (never text
templates), renders them through the canonical pretty-printer, and
asserts the result typechecks — so every emitted program is valid *by
construction*: all names declared before use, every call at the right
arity, no ``break``/``continue`` outside loops, a ``main`` with no
parameters.

Termination is also by construction: the only loops are counted
(``while (i < N)`` over a local initialized to 0 and incremented as the
last statement of the body), critical sections use exactly one lock and
are never nested, and ``sleep`` durations are small literals.  Any
generated program therefore terminates under *every* schedule — a
deadlock or max-step abort during a campaign is a finding, not noise.

Determinism contract: ``generate_source(params, seed)`` is a pure
function of its arguments.  All randomness flows from one
``random.Random(seed)`` (hash-seed independent), iteration is over
lists only, and the AST is rendered with the canonical printer — so the
same (params, seed) pair yields byte-identical source in any process,
under any ``PYTHONHASHSEED``.
"""

from random import Random

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.pretty import pretty
from repro.minic.typecheck import check

#: lock disciplines the generator knows how to emit
DISCIPLINES = ("none", "clean", "mixed")


class FuzzParams:
    """Knobs for one generated program (pmsim's factories idiom).

    ``threads``         worker threads spawned by main
    ``shared_vars``     size of the hot global pool all workers draw from
    ``read_set``        shared variables each worker may read
    ``write_set``       shared variables each worker may update
    ``sharing_rate``    probability a read/write-set slot draws from the
                        hot pool instead of the worker's private word
    ``lock_discipline`` "none" (never lock), "clean" (every shared
                        access under that variable's lock) or "mixed"
                        (each update locked with probability 1/2 — the
                        inconsistent discipline real bugs exhibit)
    ``sync_fraction``   probability a shared update is an ``atomic_add``
                        (a syncvar access) rather than a read/modify/write
    ``ops_per_thread``  operations in each worker's loop body
    ``iters``           loop iterations per worker
    ``pad_rate``        probability of padding between a racy pair's read
                        and write (widens the atomic window)
    ``cond_rate``       probability an operation is guarded by a
                        data-dependent ``if``
    """

    __slots__ = ("threads", "shared_vars", "read_set", "write_set",
                 "sharing_rate", "lock_discipline", "sync_fraction",
                 "ops_per_thread", "iters", "pad_rate", "cond_rate")

    def __init__(self, threads=3, shared_vars=2, read_set=2, write_set=1,
                 sharing_rate=0.8, lock_discipline="none", sync_fraction=0.0,
                 ops_per_thread=3, iters=3, pad_rate=0.6, cond_rate=0.15):
        if lock_discipline not in DISCIPLINES:
            raise ValueError("unknown lock discipline %r" % (lock_discipline,))
        self.threads = int(threads)
        self.shared_vars = int(shared_vars)
        self.read_set = int(read_set)
        self.write_set = int(write_set)
        self.sharing_rate = float(sharing_rate)
        self.lock_discipline = lock_discipline
        self.sync_fraction = float(sync_fraction)
        self.ops_per_thread = int(ops_per_thread)
        self.iters = int(iters)
        self.pad_rate = float(pad_rate)
        self.cond_rate = float(cond_rate)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    @classmethod
    def sampled(cls, rng):
        """Draw one parameter point (used to vary shape across a
        campaign); ``rng`` is a ``random.Random``."""
        return cls(
            threads=rng.randint(2, 4),
            shared_vars=rng.randint(1, 3),
            read_set=rng.randint(1, 2),
            write_set=rng.randint(1, 2),
            sharing_rate=rng.choice((0.5, 0.8, 1.0)),
            lock_discipline=rng.choice(DISCIPLINES),
            sync_fraction=rng.choice((0.0, 0.0, 0.25, 0.5)),
            ops_per_thread=rng.randint(2, 4),
            iters=rng.randint(2, 4),
            pad_rate=rng.choice((0.3, 0.6, 0.9)),
            cond_rate=rng.choice((0.0, 0.15, 0.3)),
        )

    def __repr__(self):
        inner = ", ".join("%s=%r" % (k, getattr(self, k))
                          for k in self.__slots__)
        return "FuzzParams(%s)" % inner


def _call(name, *args):
    return ast.ExprStmt(ast.Call(name, list(args)))


def _lk(index):
    return "lk%d" % index


class ProgramGenerator:
    """Builds one program AST from (params, seed)."""

    def __init__(self, params, seed):
        self.params = params
        self.seed = int(seed)
        self.rng = Random(self.seed)
        # hot pool indices; workers draw (var, lock) pairs from here
        self.hot = list(range(params.shared_vars))

    # -- variable selection -------------------------------------------

    def _pick_set(self, size, private):
        """A worker's read or write set: hot-pool names plus, below the
        sharing rate, the worker's private word."""
        chosen = []
        for _ in range(max(1, size)):
            if self.rng.random() < self.params.sharing_rate:
                chosen.append("g%d" % self.rng.choice(self.hot))
            else:
                chosen.append(private)
        return chosen

    # -- statement builders -------------------------------------------

    def _pad_stmts(self):
        """Window-widening filler between a racy read and its write."""
        pads = []
        roll = self.rng.random()
        if roll < 0.4:
            pads.append(ast.Assign(ast.Var("u"),
                                   ast.Binary("*", ast.Var("t"),
                                              ast.IntLit(2))))
        elif roll < 0.7:
            pads.append(ast.Assign(
                ast.Var("u"),
                ast.Call("mix", [ast.Var("t"),
                                 ast.IntLit(self.rng.randint(1, 5))])))
        elif roll < 0.9:
            pads.append(_call("yield"))
        else:
            pads.append(_call("sleep", ast.IntLit(self.rng.randint(1, 3) * 10)))
        return pads

    def _locked(self, var, stmts, forced=None):
        """Wrap ``stmts`` per the lock discipline.  ``var`` names the
        shared word being touched; private words are never locked."""
        discipline = self.params.lock_discipline
        if not var.startswith("g") or discipline == "none":
            return stmts
        if forced is None:
            forced = discipline == "clean" or self.rng.random() < 0.5
        if not forced:
            return stmts
        index = int(var[1:])
        return ([_call("lock", ast.AddrOf(ast.Var(_lk(index))))]
                + stmts
                + [_call("unlock", ast.AddrOf(ast.Var(_lk(index))))])

    def _read_op(self, var):
        if self.rng.random() < 0.5:
            body = [ast.Assign(ast.Var("t"), ast.Var(var))]
        else:
            body = [ast.Assign(ast.Var("t"),
                               ast.Binary("+", ast.Var("t"), ast.Var(var)))]
        return self._locked(var, body)

    def _write_op(self, var):
        value = ast.Binary("+", ast.Var("t"),
                           ast.IntLit(self.rng.randint(1, 4)))
        return self._locked(var, [ast.Assign(ast.Var(var), value)])

    def _rmw_op(self, var):
        """The atomicity-violation seed: a read/modify/write pair whose
        window may be padded wide open."""
        stmts = [ast.Assign(ast.Var("t"), ast.Var(var))]
        if self.rng.random() < self.params.pad_rate:
            stmts.extend(self._pad_stmts())
        stmts.append(ast.Assign(
            ast.Var(var),
            ast.Binary("+", ast.Var("t"),
                       ast.IntLit(self.rng.randint(1, 3)))))
        return self._locked(var, stmts)

    def _sync_op(self, var):
        """Syncvar traffic: whitelisted by the fourth optimization."""
        add = ast.Call("atomic_add", [ast.AddrOf(ast.Var(var)),
                                      ast.IntLit(self.rng.randint(1, 2))])
        if self.rng.random() < 0.3:
            return [ast.Assign(ast.Var("t"), add)]
        return [ast.ExprStmt(add)]

    def _local_op(self):
        roll = self.rng.random()
        if roll < 0.5:
            return [ast.Assign(
                ast.Var("t"),
                ast.Binary("+", ast.Var("t"),
                           ast.IntLit(self.rng.randint(1, 9))))]
        return [ast.Assign(
            ast.Var("t"),
            ast.Call("mix", [ast.Var("t"),
                             ast.IntLit(self.rng.randint(1, 9))]))]

    def _one_op(self, reads, writes):
        roll = self.rng.random()
        if roll < 0.25:
            stmts = self._local_op()
        elif roll < 0.5:
            stmts = self._read_op(self.rng.choice(reads))
        else:
            var = self.rng.choice(writes)
            if (var.startswith("g")
                    and self.rng.random() < self.params.sync_fraction):
                stmts = self._sync_op(var)
            elif roll < 0.7:
                stmts = self._write_op(var)
            else:
                stmts = self._rmw_op(var)
        if self.rng.random() < self.params.cond_rate:
            modulus = self.rng.randint(2, 3)
            cond = ast.Binary("==",
                              ast.Binary("%", ast.Var("t"),
                                         ast.IntLit(modulus)),
                              ast.IntLit(self.rng.randint(0, modulus - 1)))
            return [ast.If(cond, ast.Block(stmts))]
        return stmts

    # -- functions -----------------------------------------------------

    def _worker(self, index):
        private = "h%d" % index
        reads = self._pick_set(self.params.read_set, private)
        writes = self._pick_set(self.params.write_set, private)
        ops = []
        for _ in range(max(1, self.params.ops_per_thread)):
            ops.extend(self._one_op(reads, writes))
        body = [
            ast.Decl("i", init=ast.IntLit(0)),
            ast.Decl("t", init=ast.IntLit(0)),
            ast.Decl("u", init=ast.IntLit(0)),
            ast.While(ast.Binary("<", ast.Var("i"),
                                 ast.IntLit(max(1, self.params.iters))),
                      ast.Block(ops + [ast.Assign(
                          ast.Var("i"),
                          ast.Binary("+", ast.Var("i"), ast.IntLit(1)))])),
        ]
        return ast.FuncDef("worker%d" % index, [], ast.Block(body))

    def _mix_helper(self):
        # pure arithmetic on parameters: never touches shared state, so
        # the fix synthesizer and the footprint analysis can ignore it
        body = ast.Block([
            ast.Return(ast.Binary("+",
                                  ast.Binary("*", ast.Var("a"),
                                             ast.IntLit(2)),
                                  ast.Binary("%", ast.Var("b"),
                                             ast.IntLit(7)))),
        ])
        return ast.FuncDef("mix", [("a", False), ("b", False)], body)

    def _main(self, n_workers):
        stmts = [ast.Spawn("worker%d" % k, []) for k in range(n_workers)]
        stmts.append(_call("join"))
        for index in self.hot:
            stmts.append(_call("output", ast.Var("g%d" % index)))
        return ast.FuncDef("main", [], ast.Block(stmts))

    # -- entry points --------------------------------------------------

    def build(self):
        params = self.params
        globals_ = [ast.GlobalVar("g%d" % i, init=0) for i in self.hot]
        if params.lock_discipline != "none":
            globals_.extend(ast.GlobalVar(_lk(i), init=0) for i in self.hot)
        globals_.extend(ast.GlobalVar("h%d" % k, init=0)
                        for k in range(params.threads))
        funcs = [self._mix_helper()]
        funcs.extend(self._worker(k) for k in range(params.threads))
        funcs.append(self._main(params.threads))
        return ast.Program(globals_, funcs)

    def source(self):
        text = pretty(self.build())
        # the by-construction claim, enforced: a generator bug must
        # surface here, not as noise inside a campaign
        check(parse(text))
        return text


def generate_source(params, seed):
    """Pure function (params, seed) -> canonical mini-C source text."""
    return ProgramGenerator(params, seed).source()


__all__ = ["DISCIPLINES", "FuzzParams", "ProgramGenerator",
           "generate_source"]
