"""Atomic corpus of minimized fuzz repros.

Each archived case is a directory holding everything needed to replay
the divergence on another machine:

- ``meta.json``      generator seed + params, run seed, divergence
                     kinds, verdict multisets, minimization stats
- ``original.c``     the generated program as the campaign ran it
- ``minimized.c``    the ddmin result (what a human should read first)
- ``run.journal``    the recorded journal — which *is* the schedule:
                     replaying it pins every scheduler decision

Writes are atomic the same way whitelist writes are (temp + rename):
the case is staged under ``.tmp.<name>.<pid>`` inside the corpus
directory and published with one ``os.replace``.  A crash mid-archive
leaves only a ``.tmp.*`` directory, never a half-written case;
:func:`salvage_corpus` sweeps those up and reports them, so a campaign
restarted over a torn corpus starts clean and says so.
"""

import json
import os
import shutil

from repro.journal.format import JournalWriter

#: staging prefix; anything under it is torn state, never a case
TMP_PREFIX = ".tmp."

#: files every complete case carries
CASE_FILES = ("meta.json", "original.c", "minimized.c", "run.journal")


class ArchivedCase:
    __slots__ = ("name", "path", "meta")

    def __init__(self, name, path, meta):
        self.name = name
        self.path = path
        self.meta = meta

    def __repr__(self):
        return "ArchivedCase(%r)" % self.name


def case_name(kind, program_id, run_seed):
    return "%s-%s-s%d" % (kind, program_id, run_seed)


def archive_case(corpus_dir, name, meta, original_source, minimized_source,
                 events):
    """Atomically publish one case; returns its final path.

    ``events`` is the recorded journal event list; it is re-framed
    through the ordinary JournalWriter so the archived file is a real
    journal (CRC frames and all), loadable by ``kivati replay``.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    final = os.path.join(corpus_dir, name)
    staging = os.path.join(corpus_dir, "%s%s.%d" % (TMP_PREFIX, name,
                                                    os.getpid()))
    if os.path.isdir(staging):
        shutil.rmtree(staging)
    os.makedirs(staging)
    try:
        with open(os.path.join(staging, "original.c"), "w") as f:
            f.write(original_source)
        with open(os.path.join(staging, "minimized.c"), "w") as f:
            f.write(minimized_source)
        writer = JournalWriter(os.path.join(staging, "run.journal"))
        for event in events:
            writer.append(event)
        writer.close()
        with open(os.path.join(staging, "meta.json"), "w") as f:
            json.dump(meta, f, indent=2, sort_keys=True)
            f.write("\n")
        if os.path.isdir(final):
            shutil.rmtree(final)
        os.replace(staging, final)
    finally:
        if os.path.isdir(staging):
            shutil.rmtree(staging)
    return final


def salvage_corpus(corpus_dir):
    """Remove torn staging directories; returns the names removed."""
    if not os.path.isdir(corpus_dir):
        return []
    torn = []
    for entry in sorted(os.listdir(corpus_dir)):
        if entry.startswith(TMP_PREFIX):
            shutil.rmtree(os.path.join(corpus_dir, entry),
                          ignore_errors=True)
            torn.append(entry)
    return torn


def load_corpus(corpus_dir):
    """Enumerate complete cases (sorted by name); skips torn state."""
    if not os.path.isdir(corpus_dir):
        return []
    cases = []
    for entry in sorted(os.listdir(corpus_dir)):
        if entry.startswith(TMP_PREFIX):
            continue
        path = os.path.join(corpus_dir, entry)
        meta_path = os.path.join(path, "meta.json")
        if not os.path.isfile(meta_path):
            continue
        with open(meta_path) as f:
            meta = json.load(f)
        cases.append(ArchivedCase(entry, path, meta))
    return cases


__all__ = ["ArchivedCase", "CASE_FILES", "TMP_PREFIX", "archive_case",
           "case_name", "load_corpus", "salvage_corpus"]
