"""Generative workload fuzzing for the Kivati reproduction.

Scenario diversity was five hand-built apps plus an 11-bug corpus;
every detector, journal and scheduler change was validated against the
same fixed inputs.  This package turns every prior subsystem into a
self-testing loop:

- :mod:`repro.fuzz.generator` — a deterministic, seed-driven mini-C
  program generator (thread count, shared-variable count, read/write-set
  sizes, sharing rate, lock discipline, syncvar fraction) whose output
  passes ``repro.minic`` typecheck by construction;
- :mod:`repro.fuzz.oracle` — the cross-check: the online detector vs
  the journal ``reverify`` pass vs ``conflict_sched=True`` transparency
  vs pinned replay, on one generated program;
- :mod:`repro.fuzz.campaign` — fans generated programs out as fleet
  ``fuzz`` jobs and collects divergences;
- :mod:`repro.fuzz.minimize` — ddmin over statements/threads, each
  candidate re-typechecked and the divergence re-confirmed;
- :mod:`repro.fuzz.archive` — atomic (temp+rename) corpus of minimized
  repros: source + seed + schedule + journal;
- :mod:`repro.fuzz.fix` — the auto-fix synthesizer: lock insertion /
  critical-section widening verified by replaying the violating
  schedule against the patched program.
"""

from repro.fuzz.generator import FuzzParams, ProgramGenerator, generate_source
from repro.fuzz.oracle import CrossCheck, cross_check

__all__ = ["CrossCheck", "FuzzParams", "ProgramGenerator", "cross_check",
           "generate_source"]
