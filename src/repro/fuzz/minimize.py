"""Delta-debugging minimizer for diverging fuzz programs.

Classic ddmin (Zeller & Hildebrandt) over the program's *statements* —
which subsumes thread reduction, since a ``spawn`` is just a statement
in ``main`` — followed by cleanup passes that drop now-unreferenced
functions and globals and shrink loop bounds.  Every candidate is
re-rendered through the canonical pretty-printer, re-typechecked, and
re-confirmed by the caller's predicate before it replaces the current
best, so the result is always a valid mini-C program that still
exhibits the original divergence.

The predicate receives canonical source text and decides "still
interesting?" — typically by re-running the oracle with the original
seed and checking the same divergence kind persists.  Reductions that
make the divergence vanish (including for scheduling reasons) are
simply rejected; the algorithm never assumes monotonicity.
"""

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.pretty import pretty
from repro.minic.typecheck import TypeError_, check


def canonical(source):
    """Round-trip through the pretty-printer (stable statement ids)."""
    return pretty(parse(source))


# -- statement addressing ---------------------------------------------------

def _child_blocks(stmt):
    blocks = []
    if isinstance(stmt, ast.Block):
        blocks.append(stmt)
    elif isinstance(stmt, ast.If):
        for child in (stmt.then, stmt.els):
            if child is not None:
                blocks.append(child if isinstance(child, ast.Block)
                              else ast.Block([child]))
    elif isinstance(stmt, ast.While):
        blocks.append(stmt.body if isinstance(stmt.body, ast.Block)
                      else ast.Block([stmt.body]))
    return blocks


def _prune_block(block, counter, drop):
    """Rewrite ``block`` keeping statements whose id is not in ``drop``.

    Ids are assigned in pre-order and *always* consumed — descent happens
    even into dropped statements — so the numbering is identical no
    matter which subset is dropped.
    """
    kept = []
    for stmt in block.stmts:
        index = counter[0]
        counter[0] += 1
        for child in _child_blocks(stmt):
            _prune_block(child, counter, drop)
        if isinstance(stmt, ast.If):
            # normalize branches to Blocks so child pruning sticks
            if stmt.then is not None and not isinstance(stmt.then, ast.Block):
                stmt.then = ast.Block([stmt.then])
            if stmt.els is not None and not isinstance(stmt.els, ast.Block):
                stmt.els = ast.Block([stmt.els])
        elif isinstance(stmt, ast.While):
            if not isinstance(stmt.body, ast.Block):
                stmt.body = ast.Block([stmt.body])
        if index not in drop:
            kept.append(stmt)
    block.stmts = kept


def _count_block(block):
    count = 0
    for stmt in block.stmts:
        count += 1
        for child in _child_blocks(stmt):
            count += _count_block(child)
    return count


def count_statements(source):
    program = parse(source)
    return sum(_count_block(f.body) for f in program.funcs)


def _render_without(source, drop):
    """Source with the dropped statement ids removed, or None when the
    result no longer parses/typechecks (a rejected candidate)."""
    program = parse(source)
    counter = [0]
    for func in program.funcs:
        _prune_block(func.body, counter, drop)
    text = pretty(program)
    try:
        check(parse(text))
    except TypeError_:
        return None
    return text


# -- cleanup passes ---------------------------------------------------------

def _referenced_names(program):
    names = set()
    for node in ast.walk(program):
        if isinstance(node, ast.Var):
            names.add(node.name)
        elif isinstance(node, ast.Call):
            names.add(node.name)
        elif isinstance(node, ast.Spawn):
            names.add(node.func)
    return names


def _drop_unreferenced(source, predicate, budget):
    """Remove functions (except main) and globals nothing references.

    Victims are dropped one at a time, each drop predicate-checked, so
    one load-bearing decl (e.g. the function holding the racy write a
    textual predicate pins) does not veto removing the genuinely dead
    ones alongside it.
    """
    current = source

    def try_without(kind, victim):
        program = parse(current)
        if kind == "func":
            program.funcs = [f for f in program.funcs if f.name != victim]
        else:
            program.globals = [g for g in program.globals
                               if g.name != victim]
        text = pretty(program)
        try:
            check(parse(text))
        except TypeError_:
            return None
        return text

    for kind in ("func", "global"):
        index = 0
        while budget[0] > 0:
            program = parse(current)
            used = _referenced_names(program)
            if kind == "func":
                victims = [f.name for f in program.funcs
                           if f.name != "main" and f.name not in used]
            else:
                victims = [g.name for g in program.globals
                           if g.name not in used]
            if index >= len(victims):
                break
            candidate = try_without(kind, victims[index])
            if candidate is None or candidate == current:
                index += 1
                continue
            budget[0] -= 1
            if predicate(candidate):
                current = candidate
                index = 0
            else:
                index += 1
    return current


def _hoist_one_loop(source, skip):
    """Replace the ``skip``-th While with its body (straight-lined), or
    None when there is no such loop or the result fails typecheck."""
    program = parse(source)
    seen = 0
    hoisted = False

    def rewrite(block):
        nonlocal seen, hoisted
        out = []
        for stmt in block.stmts:
            for child in _child_blocks(stmt):
                rewrite(child)
            if isinstance(stmt, ast.While):
                if seen == skip:
                    seen += 1
                    hoisted = True
                    body = (stmt.body.stmts
                            if isinstance(stmt.body, ast.Block)
                            else [stmt.body])
                    out.extend(body)
                    continue
                seen += 1
            out.append(stmt)
        block.stmts = out

    for func in program.funcs:
        rewrite(func.body)
    if not hoisted:
        # skip is past the last loop — tell the caller to stop instead
        # of handing back unchanged text (which would burn its budget)
        return None
    text = pretty(program)
    try:
        check(parse(text))
    except TypeError_:
        return None
    return text


def _hoist_loops(source, predicate, budget):
    """Try unwrapping each loop into straight-line code (one iteration
    is often enough to keep a divergence alive, and saves 3 lines)."""
    current = source
    index = 0
    while budget[0] > 0:
        candidate = _hoist_one_loop(current, index)
        if candidate is None:
            break
        if candidate != current:
            budget[0] -= 1
            if predicate(candidate):
                current = candidate
                # same index now points at the next loop (one removed)
                continue
        index += 1
    return current


def _drop_empty_spawns(source, predicate, budget):
    """Try removing ``spawn`` statements whose target function body is
    already empty.  ddmin cannot reach these: dropping the function
    body leaves the spawn pinning the (now trivial) function, and the
    spawn+function pair never lands in one complement.  The spawned
    thread still participates in scheduling, so each removal is
    predicate-checked like any other reduction."""
    current = source
    index = 0
    while budget[0] > 0:
        program = parse(current)
        empty = {f.name for f in program.funcs
                 if f.name != "main" and not f.body.stmts}
        spawns = [node for node in ast.walk(program)
                  if isinstance(node, ast.Spawn) and node.func in empty]
        if index >= len(spawns):
            break
        victim = spawns[index]

        def rewrite(block):
            block.stmts = [s for s in block.stmts if s is not victim]
            for stmt in block.stmts:
                for child in _child_blocks(stmt):
                    rewrite(child)

        for func in program.funcs:
            rewrite(func.body)
        text = pretty(program)
        try:
            check(parse(text))
        except TypeError_:
            index += 1
            continue
        budget[0] -= 1
        if predicate(text):
            current = text
            # same index now points at the next empty spawn
            continue
        index += 1
    return current


def _unwrap_ifs(source, predicate, budget):
    """Try replacing each ``if`` with its then-branch (straight-lined).
    The branch condition costs three rendered lines; when the
    divergence lives in the body, the conditional is scaffolding."""
    current = source
    index = 0
    while budget[0] > 0:
        program = parse(current)
        seen = 0
        unwrapped = False

        def rewrite(block):
            nonlocal seen, unwrapped
            out = []
            for stmt in block.stmts:
                for child in _child_blocks(stmt):
                    rewrite(child)
                if isinstance(stmt, ast.If):
                    if seen == index:
                        seen += 1
                        unwrapped = True
                        then = stmt.then
                        out.extend(then.stmts
                                   if isinstance(then, ast.Block)
                                   else [then] if then is not None else [])
                        continue
                    seen += 1
                out.append(stmt)
            block.stmts = out

        for func in program.funcs:
            rewrite(func.body)
        if not unwrapped:
            break
        text = pretty(program)
        try:
            check(parse(text))
        except TypeError_:
            index += 1
            continue
        if text == current:
            index += 1
            continue
        budget[0] -= 1
        if predicate(text):
            current = text
            continue
        index += 1
    return current


def _simplify_exprs(source, predicate, budget):
    """Try replacing each binary right-hand side with one of its
    operands (``g0 = t + 2`` -> ``g0 = 2``) — the standard HDD-style
    expression-level reduction.  Severing the last use of a local often
    unlocks whole statements for the next ddmin round."""
    current = source
    index = 0
    while budget[0] > 0:
        program = parse(current)
        assigns = [node for node in ast.walk(program)
                   if isinstance(node, ast.Assign)
                   and isinstance(node.value, ast.Binary)]
        if index >= len(assigns):
            break
        node = assigns[index]
        replaced = False
        for operand in (node.value.right, node.value.left):
            if budget[0] <= 0:
                break
            saved = node.value
            node.value = operand
            text = pretty(program)
            node.value = saved
            try:
                check(parse(text))
            except TypeError_:
                continue
            if text == current:
                continue
            budget[0] -= 1
            if predicate(text):
                current = text
                replaced = True
                break
        if not replaced:
            index += 1
    return current


def _shrink_loop_bounds(source, predicate, budget):
    """Try reducing each counted loop's literal bound toward 1."""
    current = source
    while budget[0] > 0:
        program = parse(current)
        shrunk = False
        for node in ast.walk(program):
            if (isinstance(node, ast.While)
                    and isinstance(node.cond, ast.Binary)
                    and node.cond.op == "<"
                    and isinstance(node.cond.right, ast.IntLit)
                    and node.cond.right.value > 1):
                old = node.cond.right.value
                node.cond.right.value = max(1, old // 2)
                text = pretty(program)
                budget[0] -= 1
                if predicate(text):
                    current = text
                    shrunk = True
                    break
                node.cond.right.value = old
        if not shrunk:
            break
    return current


# -- ddmin proper -----------------------------------------------------------

class MinimizeResult:
    __slots__ = ("source", "original_lines", "minimized_lines", "tests",
                 "statements_before", "statements_after")

    def __init__(self, source, original_lines, minimized_lines, tests,
                 statements_before, statements_after):
        self.source = source
        self.original_lines = original_lines
        self.minimized_lines = minimized_lines
        self.tests = tests
        self.statements_before = statements_before
        self.statements_after = statements_after

    def as_payload(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def describe(self):
        return ("minimized %d -> %d lines (%d -> %d statements, %d tests)"
                % (self.original_lines, self.minimized_lines,
                   self.statements_before, self.statements_after,
                   self.tests))


def _line_count(source):
    return len([ln for ln in source.splitlines() if ln.strip()])


def minimize(source, predicate, max_tests=600):
    """Shrink ``source`` while ``predicate`` keeps holding.

    ``predicate(text) -> bool`` decides interestingness on canonical,
    typechecked candidates.  Raises ValueError if the original program
    does not satisfy the predicate (a minimizer invoked on a
    non-diverging input is a caller bug worth surfacing).
    """
    current = canonical(source)
    if not predicate(current):
        raise ValueError("original program does not satisfy the predicate")
    budget = [max_tests]
    tests = [0]

    def test_without(drop):
        if budget[0] <= 0:
            return None
        candidate = _render_without(current, drop)
        if candidate is None or candidate == current:
            return None
        budget[0] -= 1
        tests[0] += 1
        return candidate if predicate(candidate) else None

    statements_before = count_statements(current)
    original_lines = _line_count(current)

    def counted(text):
        tests[0] += 1
        return predicate(text)

    # shrink loop bounds FIRST: every later predicate call re-executes
    # the candidate, and dropping iteration counts toward 1 makes each
    # of those executions (including the many rejected ones) cheap
    shrunk = _shrink_loop_bounds(current, counted, budget)
    if shrunk != current:
        current = shrunk

    changed = True
    while changed and budget[0] > 0:
        changed = False
        # ddmin over statement ids of the *current* best
        n = count_statements(current)
        ids = list(range(n))
        granularity = 2
        while len(ids) >= 2 and budget[0] > 0:
            chunk = max(1, len(ids) // granularity)
            reduced = False
            start = 0
            while start < len(ids) and budget[0] > 0:
                drop = set(ids[start:start + chunk])
                candidate = test_without(drop)
                if candidate is not None:
                    current = candidate
                    n = count_statements(current)
                    ids = list(range(n))
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    changed = True
                    break
                start += chunk
            if not reduced:
                if granularity >= len(ids):
                    break
                granularity = min(len(ids), granularity * 2)
        # structural cleanup: unreferenced functions and globals
        cleaned = _drop_unreferenced(current, counted, budget)
        if cleaned != current:
            current = cleaned
            changed = True

        shrunk = _shrink_loop_bounds(current, counted, budget)
        if shrunk != current:
            current = shrunk
            changed = True
        hoisted = _hoist_loops(current, counted, budget)
        if hoisted != current:
            current = hoisted
            changed = True
        unwrapped = _unwrap_ifs(current, counted, budget)
        if unwrapped != current:
            current = unwrapped
            changed = True
        despawned = _drop_empty_spawns(current, counted, budget)
        if despawned != current:
            current = despawned
            changed = True
        simplified = _simplify_exprs(current, counted, budget)
        if simplified != current:
            current = simplified
            changed = True

    return MinimizeResult(current, original_lines, _line_count(current),
                          tests[0], statements_before,
                          count_statements(current))


__all__ = ["MinimizeResult", "canonical", "count_statements", "minimize"]
