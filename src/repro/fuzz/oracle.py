"""The fuzz oracle: one generated program, every evaluator cross-checked.

A fuzz campaign is only as good as its notion of "wrong".  For each
generated program the oracle runs the online detector once with a
journal attached, then demands four independently-implemented views
agree:

- **reverify** — the RegionTrack-style offline pass re-derives every
  verdict from the journal alone (``repro.journal.postmortem``);
- **report** — the RunReport's ViolationRecords match the journaled
  verdict stream (the user-facing path tells the same story);
- **replay** — the recording replays pinned, frame-for-frame, with the
  same verdict multiset (``repro.journal.replay``);
- **checker** — the sound-and-complete streaming checker re-derives the
  verdicts a third way, without re-execution and with its own region GC
  (``repro.journal.checker``); it must match both the reverify pass and
  the online multiset exactly;
- **conflict** — with a core per thread the ``conflict_sched=True``
  policy is inert by construction, so a PREVENTION-mode run pair
  (base vs policy) must produce identical verdicts (the PR 7
  transparency claim, now checked on every generated program).

Any disagreement, anomaly, pin divergence or deadlock is a
*divergence*: the campaign minimizes and archives it.

The ``drop-trigger`` drill deliberately removes the first remote
``trigger`` frame from the journal before the offline pass — simulated
journal loss.  On a program with a real violation this manufactures an
honest online-vs-offline disagreement, which is how the minimizer,
archiver and CI gates are exercised without waiting for a genuine
detector bug.  Drill divergences are labeled as such everywhere.  The
streaming checker sees the drilled journal too (with its sequence gap)
and must flag the same loss as a *partial* disagreement — proving the
triage path works for the fast backend as well.
"""

from repro.core.config import Mode
from repro.journal.checker import check_events
from repro.journal.postmortem import reverify, reverify_report
from repro.journal.replay import record_run, replay_run, verdict_multiset

#: the one supported drill; campaign params carry it per job
DRILL_DROP_TRIGGER = "drop-trigger"


def report_verdicts(report):
    """Canonical verdict multiset from a RunReport's ViolationRecords
    (same tuple shape as the journal/postmortem multisets)."""
    return sorted(
        (r.ar_id, r.local_tid, r.remote_tid, str(r.first_kind),
         str(r.remote_kind), str(r.second_kind), bool(r.prevented))
        for r in report.violations)


def drilled_events(events, drill):
    """Apply a journal-loss drill to an event list (pure)."""
    if drill != DRILL_DROP_TRIGGER:
        raise ValueError("unknown drill %r" % (drill,))
    dropped = False
    out = []
    for event in events:
        if not dropped and event.kind == "trigger":
            dropped = True
            continue
        out.append(event)
    return out


class CrossCheck:
    """Outcome of one oracle pass over one generated program."""

    __slots__ = ("online", "offline", "anomalies", "report_match",
                 "replay_ok", "replay_verdicts_match", "pin_divergences",
                 "conflict_match", "checker_match", "checker_status",
                 "deadlocked", "drill", "drill_diverged",
                 "drill_checker_diverged", "violations", "violated_ars",
                 "stats")

    def __init__(self, online, offline, anomalies, report_match, replay_ok,
                 replay_verdicts_match, pin_divergences, conflict_match,
                 checker_match, checker_status, deadlocked, drill,
                 drill_diverged, drill_checker_diverged, violations,
                 violated_ars, stats):
        self.online = online
        self.offline = offline
        self.anomalies = list(anomalies)
        self.report_match = report_match
        self.replay_ok = replay_ok
        self.replay_verdicts_match = replay_verdicts_match
        self.pin_divergences = pin_divergences
        self.conflict_match = conflict_match
        self.checker_match = checker_match
        self.checker_status = checker_status
        self.deadlocked = deadlocked
        self.drill = drill
        self.drill_diverged = drill_diverged
        self.drill_checker_diverged = drill_checker_diverged
        self.violations = violations
        #: AR ids with multiplicity — the campaign's rebinning rounds
        #: fold these into the arbiter-shaped violation history
        self.violated_ars = list(violated_ars)
        self.stats = stats

    @property
    def divergences(self):
        """Divergence kind labels, worst first; empty when clean."""
        kinds = []
        if self.deadlocked:
            kinds.append("deadlock")
        if self.online != self.offline or self.anomalies:
            kinds.append("reverify")
        if not self.report_match:
            kinds.append("report")
        if not self.replay_ok or not self.replay_verdicts_match:
            kinds.append("replay")
        if not self.conflict_match:
            kinds.append("conflict")
        if not self.checker_match:
            kinds.append("checker")
        if self.drill_diverged:
            kinds.append("drill-reverify")
        if self.drill_checker_diverged:
            kinds.append("drill-checker")
        return kinds

    @property
    def ok(self):
        return not self.divergences

    def as_payload(self):
        """Plain-JSON summary (fleet job payloads, archive metadata)."""
        return {
            "violations": self.violations,
            "violated_ars": self.violated_ars,
            "online": [list(v) for v in self.online],
            "offline": [list(v) for v in self.offline],
            "anomalies": list(self.anomalies),
            "report_match": self.report_match,
            "replay_ok": self.replay_ok,
            "replay_verdicts_match": self.replay_verdicts_match,
            "pin_divergences": self.pin_divergences,
            "conflict_match": self.conflict_match,
            "checker_match": self.checker_match,
            "checker_status": self.checker_status,
            "deadlocked": self.deadlocked,
            "drill": self.drill,
            "drill_diverged": self.drill_diverged,
            "drill_checker_diverged": self.drill_checker_diverged,
            "divergences": self.divergences,
            "stats": self.stats,
        }

    def describe(self):
        if self.ok:
            return ("clean: %d violation(s), all evaluators agree"
                    % self.violations)
        return "DIVERGED (%s): %d violation(s)" % (
            ", ".join(self.divergences), self.violations)


def conflict_transparency(program, config, seed):
    """PREVENTION-mode verdicts with and without ``conflict_sched``.

    The oracle config has a core per thread, so the policy's
    oversubscription gate keeps it inert — any verdict difference is a
    transparency violation, not a legitimate reschedule.
    """
    prevention = config.copy(mode=Mode.PREVENTION, journal=None)
    base = program.run(prevention, seed=seed)
    conf = program.run(prevention.copy(conflict_sched=True), seed=seed)
    return report_verdicts(base) == report_verdicts(conf)


def cross_check(program, config, seed, drill=None, recorder=None,
                report=None):
    """Run the full oracle over ``program``; returns a CrossCheck.

    ``recorder``/``report`` may be passed in when the caller already
    recorded the run (the fleet worker does, so the journal lands on
    disk exactly once); otherwise the oracle records in memory.
    """
    if recorder is None or report is None:
        report, recorder = record_run(program, config, seed=seed)
    online = verdict_multiset(recorder.events)
    post, report_match = reverify_report(recorder.events, report)
    replay = replay_run(program, recorder)
    check = check_events(recorder.events)
    # the third leg: the streaming checker must reproduce the reverify
    # pass verdict-for-verdict, see the same online multiset, and reach
    # the same overall conclusion on an intact in-memory journal
    checker_match = (check.verdicts == post.offline
                     and check.online == online
                     and check.agrees == post.agrees)
    drill_diverged = False
    drill_checker_diverged = False
    if drill is not None:
        lossy = drilled_events(recorder.events, drill)
        drilled = reverify(lossy)
        drill_diverged = bool(drilled.disagreements)
        # the checker sees the same lossy journal: it must derive the
        # identical surviving-verdict multiset AND notice the sequence
        # gap (never claim completeness of a drilled journal) — a
        # mismatch on either is a real checker bug, not a drill outcome
        drilled_check = check_events(lossy)
        drill_checker_diverged = bool(drilled_check.disagreements)
        if (drilled_check.verdicts != drilled.offline
                or (len(lossy) < len(recorder.events)
                    and drilled_check.complete)
                or drill_checker_diverged != drill_diverged):
            checker_match = False
    stats = {
        "instr_count": report.result.instr_count,
        "traps": report.stats.traps,
        "monitored_ars": report.stats.monitored_ars,
        "windows_checked": post.windows_checked,
    }
    return CrossCheck(
        online=online,
        offline=post.offline,
        anomalies=post.anomalies,
        report_match=report_match,
        replay_ok=replay.ok,
        replay_verdicts_match=replay.verdicts_match,
        pin_divergences=len(replay.pin_divergences),
        conflict_match=conflict_transparency(program, config, seed),
        checker_match=checker_match,
        checker_status=check.status,
        deadlocked=bool(report.result.deadlocked),
        drill=drill,
        drill_diverged=drill_diverged,
        drill_checker_diverged=drill_checker_diverged,
        violations=len(report.violations),
        violated_ars=sorted(r.ar_id for r in report.violations),
        stats=stats,
    )


__all__ = ["CrossCheck", "DRILL_DROP_TRIGGER", "conflict_transparency",
           "cross_check", "drilled_events", "report_verdicts"]
