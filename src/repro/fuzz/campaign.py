"""Fuzz campaigns: generated programs fanned out as fleet jobs.

A campaign is deterministic end to end: the base seed drives parameter
sampling, program generation and run seeds, so the same
``CampaignSpec`` re-runs to the same divergences, the same archive
names and the same fix outcomes — on any worker count, because the
fleet plane guarantees worker-count-independent results.

Flow: salvage the corpus → generate N programs → one ``fuzz`` JobSpec
each (every ``drill_every``-th job also runs the journal-loss drill) →
``FleetSupervisor.run_jobs`` → collect divergences (job errors, lost
jobs, failed supervisor verification, any oracle disagreement) →
ddmin-minimize each diverging program (multi-seed predicate: a
reduction survives if *any* probe seed still shows the divergence) →
archive atomically → synthesize and verify fixes for every confirmed
violation.
"""

import os
from random import Random

from repro.bench.scale import corpus_config
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.fleet.jobs import JobSpec
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor
from repro.fuzz.archive import archive_case, case_name, salvage_corpus
from repro.fuzz.generator import FuzzParams, generate_source
from repro.fuzz.minimize import minimize
from repro.fuzz.oracle import drilled_events, report_verdicts
from repro.journal.checker import check_events
from repro.journal.postmortem import reverify
from repro.journal.replay import record_run, replay_run

#: instruction bound for fuzz runs — generated programs finish in a few
#: thousand instructions, and minimizer candidates that lose their loop
#: increment must hit a wall quickly instead of spinning for minutes
MAX_STEPS = 100_000

#: seed stride between programs (the corpus detection stride)
SEED_STRIDE = 7919

#: probe seeds per minimizer predicate call: a reduction survives when
#: any probe still shows the divergence (schedules shift as statements
#: vanish; demanding the original seed alone rejects almost everything).
#: Probes are stride-decorrelated — adjacent seeds produce correlated
#: schedules, a wide fan is what lets ddmin drop timing-padding
#: statements
PROBE_SEEDS = 10


def fuzz_config(threads, chaos_plan=None, **overrides):
    """Detection-posture config for one generated program.

    A core per worker thread (plus main) keeps the conflict-sched
    transparency leg of the oracle meaningful: the policy must be inert
    by construction, so any verdict drift it causes is a real bug.
    """
    overrides.setdefault("num_cores", threads + 1)
    overrides.setdefault("max_steps", MAX_STEPS)
    if chaos_plan is not None:
        overrides.setdefault("faults", chaos_plan)
    return corpus_config(mode=Mode.BUG_FINDING, **overrides)


def chaos_plan(name):
    """A builtin chaos schedule minus ``journal.crash`` (a mid-campaign
    recorder crash is the *crash drill's* job; here it would just kill
    workers on every retry)."""
    from repro.faults.chaos import builtin_schedules
    from repro.faults.plan import FaultPlan

    for schedule in builtin_schedules():
        if schedule.name == name:
            specs = [s for s in schedule.plan.specs
                     if s.point != "journal.crash"]
            return FaultPlan("fuzz-%s" % name, specs)
    raise ValueError("unknown chaos schedule %r" % name)


class CampaignSpec:
    """Everything that determines a campaign (all JSON-safe)."""

    __slots__ = ("n_programs", "base_seed", "workers", "drill_every",
                 "corpus_dir", "chaos", "minimize_tests", "fix", "params",
                 "rounds")

    def __init__(self, n_programs=50, base_seed=0, workers=0, drill_every=10,
                 corpus_dir=None, chaos=None, minimize_tests=250, fix=True,
                 params=None, rounds=1):
        self.n_programs = int(n_programs)
        self.base_seed = int(base_seed)
        self.workers = int(workers)
        #: every k-th generated program also runs the drop-trigger
        #: drill (0 disables); drill divergences exercise the minimize +
        #: archive path and are labeled as drills everywhere
        self.drill_every = int(drill_every)
        self.corpus_dir = corpus_dir
        self.chaos = chaos
        self.minimize_tests = int(minimize_tests)
        self.fix = bool(fix)
        #: fixed FuzzParams for every program (None = sample per program)
        self.params = params
        #: >1 splits the batch into that many fleet rounds, rebinning
        #: each round by conflict weight sharpened with the violation
        #: history the earlier rounds accumulated (arbiter-shaped
        #: ``{ar_id: count}``); pure scheduling — results are pinned
        #: identical to the single-round campaign
        self.rounds = int(rounds)


class GeneratedProgram:
    __slots__ = ("index", "program_id", "params", "gen_seed", "run_seed",
                 "source", "drill")

    def __init__(self, index, program_id, params, gen_seed, run_seed,
                 source, drill):
        self.index = index
        self.program_id = program_id
        self.params = params
        self.gen_seed = gen_seed
        self.run_seed = run_seed
        self.source = source
        self.drill = drill


def generate_programs(spec):
    """The campaign's deterministic program list."""
    rng = Random(spec.base_seed)
    programs = []
    for index in range(spec.n_programs):
        params = (spec.params if spec.params is not None
                  else FuzzParams.sampled(rng))
        gen_seed = spec.base_seed * 1_000_003 + index
        run_seed = spec.base_seed + index * SEED_STRIDE
        drill = (spec.drill_every > 0
                 and index % spec.drill_every == spec.drill_every - 1)
        programs.append(GeneratedProgram(
            index, "fz%04d" % index, params, gen_seed, run_seed,
            generate_source(params, gen_seed),
            "drop-trigger" if drill else None))
    return programs


def build_specs(spec, programs=None):
    plan = chaos_plan(spec.chaos) if spec.chaos else None
    if programs is None:
        programs = generate_programs(spec)
    specs = []
    for prog in programs:
        config = fuzz_config(prog.params.threads, chaos_plan=plan)
        params = {"program_id": prog.program_id,
                  "gen_seed": prog.gen_seed,
                  "params": prog.params.as_dict()}
        if prog.drill:
            params["drill"] = prog.drill
        specs.append(JobSpec.for_config(
            "fuzz-%s-s%d" % (prog.program_id, prog.run_seed), "fuzz",
            prog.source, config, seed=prog.run_seed, params=params))
    return specs


# -- divergence predicates (minimizer) --------------------------------------


def _probe_seeds(run_seed):
    return [run_seed + k * 101 for k in range(PROBE_SEEDS)]


def _adapted_config(config, program):
    """``config`` with ``num_cores`` re-fitted to the program's spawn
    count (one core per worker thread plus main, like
    :func:`fuzz_config`).

    A reduction that drops a ``spawn`` must be probed under the
    matching smaller machine: keeping the original core count leaves
    dead cores that shift every schedule, which makes many legitimate
    thread-dropping reductions look uninteresting — and the archived
    config must describe the archived source, not its ancestor."""
    from repro.minic import ast as _ast

    spawns = sum(1 for node in _ast.walk(program.annotation.ast)
                 if isinstance(node, _ast.Spawn))
    cores = max(spawns, 1) + 1
    if cores == config.num_cores:
        return config
    return config.copy(num_cores=cores)


def divergence_predicate(kinds, config, run_seed, drill=None):
    """Predicate for ddmin: does the candidate still show (any of) the
    original divergence kinds under any probe seed?

    Only the checks the kinds need are re-run, so a minimization is a
    few recordings per candidate, not the full oracle.  All failures
    (parse, deadlock-free timeout, machine errors) count as "not
    interesting" — ddmin simply keeps looking.  The probe seed that
    last exhibited the divergence is tried first: successful reductions
    almost always keep diverging under the same seed, so the common
    accept path costs one recording instead of PROBE_SEEDS.
    """
    kinds = set(kinds)
    last_hit = [run_seed]

    def predicate(source):
        try:
            program = ProtectedProgram(source)
        except Exception:
            return False
        cand_config = _adapted_config(config, program)
        seeds = _probe_seeds(run_seed)
        seeds.sort(key=lambda s: s != last_hit[0])
        for seed in seeds:
            try:
                if _diverges(program, cand_config, seed, kinds, drill):
                    last_hit[0] = seed
                    return True
            except Exception:
                continue
        return False

    return predicate


def _diverges(program, config, seed, kinds, drill):
    """One probe: does this (program, seed) show any of ``kinds``?"""
    report, recorder = record_run(program, config, seed=seed)
    if "deadlock" in kinds and report.result.deadlocked:
        return True
    if kinds & {"reverify", "report"}:
        post = reverify(recorder.events)
        if (post.disagreements or post.anomalies
                or post.offline != report_verdicts(report)):
            return True
    if "checker" in kinds:
        post = reverify(recorder.events)
        check = check_events(recorder.events)
        if (check.verdicts != post.offline or check.online != post.online
                or check.agrees != post.agrees):
            return True
    if kinds & {"drill-reverify", "drill-checker"} and drill:
        lossy = drilled_events(recorder.events, drill)
        if "drill-reverify" in kinds and reverify(lossy).disagreements:
            return True
        if "drill-checker" in kinds and check_events(lossy).disagreements:
            return True
    if "replay" in kinds:
        replay = replay_run(program, recorder)
        if not replay.ok or not replay.verdicts_match:
            return True
    if "conflict" in kinds:
        from repro.fuzz.oracle import conflict_transparency

        if not conflict_transparency(program, config, seed):
            return True
    return False


def _find_diverging_seed(program, config, run_seed, kinds, drill):
    """Seed whose recording exhibits the divergence (for the archived
    journal); falls back to the original run seed."""
    config = _adapted_config(config, program)
    for seed in _probe_seeds(run_seed):
        try:
            if _diverges(program, config, seed, kinds, drill):
                _, recorder = record_run(program, config, seed=seed)
                return seed, recorder
        except Exception:
            continue
    _, recorder = record_run(program, config, seed=run_seed)
    return run_seed, recorder


# -- campaign result --------------------------------------------------------


class CampaignResult:
    __slots__ = ("spec", "programs", "fleet", "lost", "divergences",
                 "archived", "unarchived", "confirmed", "fixes",
                 "salvaged", "drill_programs", "history")

    def __init__(self, spec, programs, fleet, lost, divergences, archived,
                 unarchived, confirmed, fixes, salvaged, drill_programs,
                 history=None):
        self.spec = spec
        self.programs = programs
        self.fleet = fleet
        self.lost = list(lost)
        self.divergences = list(divergences)   # dicts (program, kinds, …)
        self.archived = list(archived)         # case names
        self.unarchived = list(unarchived)     # divergences with no case
        self.confirmed = list(confirmed)       # program_ids with violations
        self.fixes = list(fixes)               # FixOutcome payload dicts
        self.salvaged = list(salvaged)
        self.drill_programs = drill_programs
        #: arbiter-shaped {ar_id: count} accumulated across rebinning
        #: rounds (empty for single-round campaigns)
        self.history = dict(history or {})

    @property
    def fix_rate(self):
        if not self.fixes:
            return None
        return (sum(1 for f in self.fixes if f["verified"])
                / float(len(self.fixes)))

    @property
    def ok(self):
        return (not self.lost and not self.unarchived
                and self.fleet.stats.verification_failures == 0)

    def as_payload(self):
        fleet_stats = self.fleet.stats.as_dict()
        return {
            "programs": len(self.programs),
            "drill_programs": self.drill_programs,
            "jobs_completed": fleet_stats["jobs_completed"],
            "jobs_failed": fleet_stats["jobs_failed"],
            "lost": len(self.lost),
            "divergences": self.divergences,
            "archived": self.archived,
            "unarchived": [d["program_id"] for d in self.unarchived],
            "confirmed": self.confirmed,
            "fixes": self.fixes,
            "fix_rate": self.fix_rate,
            "salvaged": self.salvaged,
            "rounds": max(1, self.spec.rounds),
            "violation_history": self.history,
            "fleet": fleet_stats,
            "ok": self.ok,
        }

    def describe(self):
        lines = ["fuzz campaign: %d programs, %d divergence(s), "
                 "%d archived, %d lost"
                 % (len(self.programs), len(self.divergences),
                    len(self.archived), len(self.lost))]
        for div in self.divergences:
            lines.append("  %s: %s%s" % (div["program_id"],
                                         ",".join(div["kinds"]),
                                         " [drill]" if div["drill"] else ""))
        if self.fixes:
            lines.append("fixes: %d/%d verified (%.0f%%)"
                         % (sum(1 for f in self.fixes if f["verified"]),
                            len(self.fixes), 100.0 * (self.fix_rate or 0)))
        if not self.ok:
            lines.append("PROBLEMS: lost=%d unarchived=%d verify_failures=%d"
                         % (len(self.lost), len(self.unarchived),
                            self.fleet.stats.verification_failures))
        return "\n".join(lines)


# -- the campaign -----------------------------------------------------------


def _minimize_and_archive(spec, prog, kinds, payload, log):
    """Shrink one diverging program and publish it to the corpus.

    Returns the archived case name, or None when archiving failed (the
    campaign reports such divergences as *unarchived* — a gate
    failure)."""
    plan = chaos_plan(spec.chaos) if spec.chaos else None
    # tighter step bound than the campaign run: ddmin candidates that
    # lose their loop increment spin to the wall, and the wall is the
    # dominant cost of a rejected candidate
    config = fuzz_config(prog.params.threads, chaos_plan=plan,
                         max_steps=20_000)
    predicate = divergence_predicate(kinds, config, prog.run_seed,
                                     drill=prog.drill)
    try:
        result = minimize(prog.source, predicate,
                          max_tests=spec.minimize_tests)
        minimized = result.source
        min_payload = result.as_payload()
    except ValueError:
        # the divergence is not reproducible inline (e.g. born from a
        # worker-side fault plan state): archive unminimized
        minimized = prog.source
        min_payload = None
    program = ProtectedProgram(minimized)
    seed, recorder = _find_diverging_seed(program, config, prog.run_seed,
                                          set(kinds), prog.drill)
    name = case_name("-".join(sorted(kinds)), prog.program_id,
                     prog.run_seed)
    meta = {
        "program_id": prog.program_id,
        "gen_seed": prog.gen_seed,
        "params": prog.params.as_dict(),
        "run_seed": prog.run_seed,
        "archived_seed": seed,
        "drill": prog.drill,
        "kinds": sorted(kinds),
        #: True when the streaming checker (not just the replay-based
        #: legs) disagreed — the triage queue for checker-vs-detector
        #: splits filters on this
        "checker_divergence": any(k in ("checker", "drill-checker")
                                  for k in kinds),
        "oracle": payload,
        "minimize": min_payload,
    }
    try:
        archive_case(spec.corpus_dir, name, meta, prog.source, minimized,
                     recorder.events)
    except OSError as exc:
        log("archive of %s failed: %s" % (name, exc))
        return None
    log("archived %s (%s)" % (name,
                              min_payload and "%d lines"
                              % min_payload["minimized_lines"]
                              or "unminimized"))
    return name


def _merge_fleet(parts):
    """Fold per-round FleetResults into one (results are keyed by job id
    and rounds are disjoint, so the union is lossless)."""
    if len(parts) == 1:
        return parts[0]
    from repro.fleet.supervisor import FleetResult, FleetStats

    results = {}
    recoveries = []
    rejections = []
    stats = FleetStats()
    elapsed = 0.0
    order = []
    for part in parts:
        results.update(part.results)
        recoveries.extend(part.recoveries)
        rejections.extend(part.rejections)
        for name in FleetStats.FIELDS:
            setattr(stats, name,
                    getattr(stats, name) + getattr(part.stats, name))
        elapsed += part.elapsed_s
        order.extend(part.completion_order)
    return FleetResult(results, recoveries, rejections, stats, elapsed,
                       parts[-1].workers, order)


def _run_fleet_rounds(supervisor, job_specs, rounds, log):
    """Dispatch the batch in ``rounds`` fleet rounds, rebinning each
    round's chunk by conflict weight sharpened with the violation
    history the earlier rounds accumulated — the live feedback loop from
    the arbiter's priority signal into campaign scheduling. Returns
    ``(merged FleetResult, final history)``."""
    if rounds <= 1 or len(job_specs) < 2:
        return supervisor.run_jobs(job_specs), {}
    from repro.fleet.binning import bin_jobs_by_conflict, violation_history

    chunk = (len(job_specs) + rounds - 1) // rounds
    history = {}
    parts = []
    for rnd in range(rounds):
        batch = job_specs[rnd * chunk:(rnd + 1) * chunk]
        if not batch:
            break
        ordered, _weights = bin_jobs_by_conflict(batch, history=history)
        log("round %d: %d job(s), rebinned with %d hot AR(s)"
            % (rnd + 1, len(ordered), len(history)))
        part = supervisor.run_jobs(ordered)
        parts.append(part)
        ids = []
        for result in part.results.values():
            if result.ok:
                ids.extend(result.payload.get("violated_ars", ()))
        history = violation_history(ids, history)
    return _merge_fleet(parts), history


def run_campaign(spec, log=None):
    """Run one campaign; returns a CampaignResult."""
    log = log or (lambda message: None)
    salvaged = []
    if spec.corpus_dir:
        salvaged = salvage_corpus(spec.corpus_dir)
        if salvaged:
            log("salvaged %d torn archive(s)" % len(salvaged))
        os.makedirs(spec.corpus_dir, exist_ok=True)
    programs = generate_programs(spec)
    by_id = {prog.program_id: prog for prog in programs}
    job_specs = build_specs(spec, programs)
    supervisor = FleetSupervisor(
        workers=spec.workers,
        policy=FleetPolicy(workers=spec.workers))
    fleet, history = _run_fleet_rounds(supervisor, job_specs,
                                       max(1, spec.rounds), log)
    log("fleet: %s" % fleet.describe())

    lost = [js.job_id for js in job_specs if js.job_id not in fleet.results]
    divergences = []
    confirmed = []
    for job in job_specs:
        result = fleet.results.get(job.job_id)
        if result is None:
            continue
        prog = by_id[job.params["program_id"]]
        if not result.ok:
            divergences.append({"program_id": prog.program_id,
                                "kinds": ["job-error"],
                                "drill": bool(prog.drill),
                                "payload": {"error": result.error}})
            continue
        payload = result.payload
        kinds = list(payload.get("divergences", ()))
        if result.verified is False:
            kinds.append("verify")
        if kinds:
            divergences.append({"program_id": prog.program_id,
                                "kinds": kinds,
                                "drill": bool(prog.drill),
                                "payload": payload})
        if payload.get("violations") and payload.get("report_match"):
            confirmed.append(prog.program_id)

    archived = []
    unarchived = []
    for div in divergences:
        if not spec.corpus_dir:
            unarchived.append(div)
            continue
        prog = by_id[div["program_id"]]
        name = _minimize_and_archive(spec, prog, div["kinds"],
                                     div["payload"], log)
        if name is None:
            unarchived.append(div)
        else:
            archived.append(name)

    fixes = []
    if spec.fix:
        from repro.fuzz.fix import synthesize_fix

        plan = chaos_plan(spec.chaos) if spec.chaos else None
        for program_id in confirmed:
            prog = by_id[program_id]
            config = fuzz_config(prog.params.threads, chaos_plan=plan)
            outcome = synthesize_fix(prog.source, config, prog.run_seed)
            entry = outcome.as_payload()
            entry["program_id"] = program_id
            fixes.append(entry)
        verified = sum(1 for f in fixes if f["verified"])
        log("fixes: %d/%d verified" % (verified, len(fixes)))

    return CampaignResult(
        spec, programs, fleet, lost, divergences, archived, unarchived,
        confirmed, fixes, salvaged,
        drill_programs=sum(1 for prog in programs if prog.drill),
        history=history)


__all__ = ["MAX_STEPS", "CampaignResult", "CampaignSpec", "build_specs",
           "chaos_plan", "divergence_predicate", "fuzz_config",
           "generate_programs", "run_campaign"]
