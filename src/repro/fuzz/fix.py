"""Auto-fix synthesizer for confirmed atomicity violations.

Per VeriFix and Joshi & Lal, a confirmed violation is answered with a
*source* fix, then the fix is proven against the exact interleaving
that exposed the bug:

Strategies (tried in order, first verified one wins):

1. ``guard-complete`` — the GUARDED_BY inference already knows a lock
   that guards *some* of the victim's access sites; complete the
   discipline by wrapping the unguarded spans with the same lock.
2. ``lock-span`` — introduce a fresh lock and wrap, in every function
   whose static footprint touches a victim variable, the minimal span
   of top-level statements covering all victim accesses (the local
   read/modify/write pair becomes one critical section; every remote
   site becomes another).
3. ``widen-body`` — same fresh lock, but the critical section is
   widened to the whole function body (the AR-boundary-widening
   analog: coarse, always well-nested, and acquired before any
   pre-existing lock so the lock order stays acyclic).

Placement comes from the static analyses, not from the trace: the
function set is chosen by footprint intersection
(``annotation.func_footprints``) and the guard lock by the GUARDED_BY
report — the dynamic journal only *votes* on whether the patch worked.

Verification is two-fold, and both legs must pass:

- **pinned replay**: the violating run's journal is replayed against
  the *patched* program (``check_source=False``; the schedule pin
  follows the recorded decisions wherever the patched code still
  offers them, and records divergences instead of hanging).  The
  violating interleaving must no longer produce any verdict on a
  victim variable, and must not deadlock.
- **seed sweep**: the patched program runs under a fan of fresh seeds;
  no victim verdict and no deadlock anywhere.
"""

from repro.core.session import ProtectedProgram
from repro.journal.replay import record_run, replay_run
from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.pretty import pretty
from repro.minic.typecheck import TypeError_, check

#: name of the lock the synthesizer introduces (fresh by construction:
#: the generator never emits identifiers with this prefix)
FIX_LOCK = "fixlk"

#: seeds swept during verification, relative to the violating seed
SWEEP_SEEDS = 6

#: the GUARDED_BY verdict string (kept local to avoid a lint import)
_GUARDED_BY = "guarded-by"


def _touches(stmt, victims):
    for node in ast.walk(stmt):
        if isinstance(node, ast.Var) and node.name in victims:
            return True
    return False


def _locks_in(stmt, lock_name):
    for node in ast.walk(stmt):
        if (isinstance(node, ast.Call) and node.name in ("lock", "unlock")
                and node.args and isinstance(node.args[0], ast.AddrOf)
                and isinstance(node.args[0].operand, ast.Var)
                and node.args[0].operand.name == lock_name):
            return True
    return False


def _lock_call(name, lock_name):
    return ast.ExprStmt(ast.Call(name, [ast.AddrOf(ast.Var(lock_name))]))


def _has_return(func):
    return any(isinstance(node, ast.Return) for node in ast.walk(func.body))


def _wrap_span(func, victims, lock_name, whole_body):
    """Wrap victim accesses in ``func`` with lock/unlock; returns True
    when a span was wrapped.  Spans cover top-level statements of the
    function body, so pre-existing locks stay strictly inside the new
    critical section (acyclic lock order by construction)."""
    stmts = func.body.stmts
    touched = [i for i, s in enumerate(stmts) if _touches(s, victims)]
    if not touched:
        return False
    if whole_body:
        first, last = 0, len(stmts) - 1
    else:
        first, last = touched[0], touched[-1]
    span = stmts[first:last + 1]
    if any(_locks_in(s, lock_name) for s in span):
        # wrapping would re-acquire a lock the span already takes —
        # a guaranteed self-deadlock; let verification pick another
        # strategy instead of emitting a known-broken patch
        return False
    func.body.stmts = (stmts[:first]
                       + [_lock_call("lock", lock_name)]
                       + span
                       + [_lock_call("unlock", lock_name)]
                       + stmts[last + 1:])
    return True


def _guard_locks(annotation, victims):
    """Common GUARDED_BY lock per victim, when the inference found one."""
    locks = set()
    guards = annotation.guards
    if guards is None:
        return locks
    for var in victims:
        vg = guards.globals_.get(var)
        if vg is not None and vg.verdict == _GUARDED_BY and vg.locks:
            locks.update(vg.locks)
    return locks


def _base(name):
    return name.split("[", 1)[0]


def _target_functions(annotation, victims):
    """Functions whose static footprint may touch a victim variable."""
    names = []
    for fname in sorted(annotation.func_footprints):
        fp = annotation.func_footprints[fname]
        if fp.wild or {_base(n) for n in fp.touched()} & victims:
            names.append(fname)
    return names


def _apply_strategy(source, annotation, victims, strategy):
    """Produce patched source for one strategy, or None when it does
    not apply (no guard lock known, nothing to wrap, bad typecheck)."""
    program = parse(source)
    if strategy == "guard-complete":
        locks = _guard_locks(annotation, victims)
        if len(locks) != 1:
            return None
        lock_name = sorted(locks)[0]
        declare = False
    else:
        lock_name = FIX_LOCK
        declare = True
    whole_body = strategy == "widen-body"
    targets = set(_target_functions(annotation, victims))
    wrapped = 0
    for func in program.funcs:
        if func.name not in targets:
            continue
        if whole_body and _has_return(func):
            continue  # unlock-before-return rewriting is not worth it
        if _wrap_span(func, victims, lock_name, whole_body):
            wrapped += 1
    if wrapped < 2:
        # a race needs two sides; wrapping fewer cannot have fixed it
        return None
    if declare:
        program.globals.append(ast.GlobalVar(lock_name, init=0))
    text = pretty(program)
    try:
        check(parse(text))
    except TypeError_:
        return None
    return text


def _victim_verdicts(report, victims):
    return [r for r in report.violations if r.var in victims]


class FixOutcome:
    """One program's trip through the synthesizer."""

    __slots__ = ("victims", "strategy", "fixed_source", "verified",
                 "attempts", "replay_ok", "sweep_ok", "detail")

    def __init__(self, victims, strategy=None, fixed_source=None,
                 verified=False, attempts=(), replay_ok=False,
                 sweep_ok=False, detail=""):
        self.victims = sorted(victims)
        self.strategy = strategy
        self.fixed_source = fixed_source
        self.verified = verified
        self.attempts = list(attempts)
        self.replay_ok = replay_ok
        self.sweep_ok = sweep_ok
        self.detail = detail

    def as_payload(self):
        return {
            "victims": self.victims,
            "strategy": self.strategy,
            "verified": self.verified,
            "attempts": self.attempts,
            "replay_ok": self.replay_ok,
            "sweep_ok": self.sweep_ok,
            "detail": self.detail,
        }

    def describe(self):
        if self.verified:
            return ("fix verified (%s) for %s"
                    % (self.strategy, ", ".join(self.victims)))
        return "no verified fix for %s (%s)" % (", ".join(self.victims),
                                                self.detail or "all "
                                                "strategies failed")


def _verify_fix(fixed_source, recorder, config, seed, victims):
    """Both verification legs; returns (replay_ok, sweep_ok)."""
    patched = ProtectedProgram(fixed_source)
    replay = replay_run(patched, recorder, check_source=False)
    replay_ok = (not _victim_verdicts(replay.report, victims)
                 and not replay.report.result.deadlocked)
    if not replay_ok:
        return False, False
    for k in range(SWEEP_SEEDS):
        report = patched.run(config, seed=seed + 1 + k * 7919)
        if (_victim_verdicts(report, victims)
                or report.result.deadlocked):
            return True, False
    return True, True


def synthesize_fix(source, config, seed, recorder=None, report=None,
                   victims=None):
    """Propose and verify a fix for the violation ``(source, seed)``
    exhibits under ``config``; returns a FixOutcome.

    ``recorder``/``report`` may carry an already-recorded violating run
    (the campaign has one); otherwise the run is re-recorded — which,
    by the determinism contract, reproduces the identical journal.
    """
    program = ProtectedProgram(source)
    if recorder is None or report is None:
        report, recorder = record_run(program, config, seed=seed)
    if victims is None:
        victims = {r.var for r in report.violations}
    victims = {_base(str(v)) for v in victims}
    if not victims:
        return FixOutcome(victims, detail="no violation to fix")
    attempts = []
    for strategy in ("guard-complete", "lock-span", "widen-body"):
        fixed = _apply_strategy(source, program.annotation, victims,
                                strategy)
        if fixed is None:
            attempts.append({"strategy": strategy, "applied": False})
            continue
        replay_ok, sweep_ok = _verify_fix(fixed, recorder, config, seed,
                                          victims)
        attempts.append({"strategy": strategy, "applied": True,
                         "replay_ok": replay_ok, "sweep_ok": sweep_ok})
        if replay_ok and sweep_ok:
            return FixOutcome(victims, strategy=strategy,
                              fixed_source=fixed, verified=True,
                              attempts=attempts, replay_ok=True,
                              sweep_ok=True)
    return FixOutcome(victims, attempts=attempts,
                      detail="no strategy verified")


__all__ = ["FIX_LOCK", "FixOutcome", "SWEEP_SEEDS", "synthesize_fix"]
