"""Experiment drivers: bug detection campaigns and request latency."""

from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram


class DetectionResult:
    """Outcome of a detect-the-bug campaign (one Table 6 cell)."""

    __slots__ = ("bug_id", "detected", "attempts", "time_ns", "prevented",
                 "records")

    def __init__(self, bug_id, detected, attempts, time_ns, prevented,
                 records):
        self.bug_id = bug_id
        self.detected = detected
        self.attempts = attempts
        self.time_ns = time_ns
        self.prevented = prevented
        self.records = records

    @property
    def time_ms(self):
        return self.time_ns / 1e6

    def cell(self):
        """Table-6-style cell text (mm:ss in scaled time, '-' if not
        found)."""
        if not self.detected:
            return "-"
        total_seconds = self.time_ns / 1e6  # scaled: 1 sim ms ~ 1 paper s
        return "%d:%02d" % (int(total_seconds) // 60,
                            int(total_seconds) % 60)

    def __repr__(self):
        return "DetectionResult(%s, %s, attempts=%d)" % (
            self.bug_id, "found" if self.detected else "not found",
            self.attempts)


def detect_bug(bug, config=None, max_attempts=40, seed_base=0,
               protected=None):
    """Repeatedly run a corpus bug under Kivati until its violation is
    detected (the Table 6 experiment: "we ran the application in Kivati
    and repeatedly applied the inputs that would trigger the bug").

    Returns a DetectionResult with the cumulative simulated time across
    attempts.
    """
    config = config or KivatiConfig()
    pp = protected if protected is not None else ProtectedProgram(bug.source)
    total = 0
    for attempt in range(max_attempts):
        report = pp.run(config, seed=seed_base + attempt * 7919)
        total += report.time_ns
        if bug.detected_in(report):
            records = bug.detection_records(report)
            return DetectionResult(
                bug.bug_id, True, attempt + 1, total,
                all(r.prevented for r in records), records,
            )
    return DetectionResult(bug.bug_id, False, max_attempts, total, False, [])


def manifestation_rate(bug, attempts=20, seed_base=0, num_cores=2,
                       protected=None):
    """Fraction of *unprotected* runs in which the bug corrupts the run."""
    pp = protected if protected is not None else ProtectedProgram(bug.source)
    hits = 0
    for attempt in range(attempts):
        result = pp.run_vanilla(num_cores=num_cores,
                                seed=seed_base + attempt * 7919)
        if bug.manifested(result):
            hits += 1
    return hits / attempts


class LatencyResult:
    """Average request latency for a server workload (Table 5)."""

    __slots__ = ("workload", "latency_ns", "requests", "time_ns")

    def __init__(self, workload, latency_ns, requests, time_ns):
        self.workload = workload
        self.latency_ns = latency_ns
        self.requests = requests
        self.time_ns = time_ns

    @property
    def latency_ms(self):
        return self.latency_ns / 1e6


def measure_latency(workload, config=None, seed=0, protected=None):
    """Average per-request latency: with a pool of T always-busy workers,
    a request's service latency is wall_time * T / total_requests."""
    if workload.requests is None:
        raise ValueError("workload %s has no request count" % workload.name)
    pp = protected if protected is not None else ProtectedProgram(
        workload.source)
    if config is None:
        result = pp.run_vanilla(seed=seed)
        time_ns = result.time_ns
    else:
        report = pp.run(config, seed=seed)
        time_ns = report.time_ns
    latency = time_ns * workload.threads / workload.requests
    return LatencyResult(workload.name, latency, workload.requests, time_ns)
