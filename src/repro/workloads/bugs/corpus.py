"""Mini-C kernels reproducing the access patterns of the paper's 11 bugs.

Each entry encodes the essential structure of the real bug report: the
shared variable, the local access pair whose atomicity is assumed, the
remote access that violates it, and an observable corruption (wrong
output or a crash) when the violation manifests.

Structure shared by all kernels, mirroring how the detection channels of
the real system work:

- The victim's access pair lives in a small subroutine, so its atomic
  region is armed only for the window's duration (``clear_ar`` at the
  subroutine exit breaks cross-iteration AR chains that would otherwise
  pin a watchpoint register permanently).
- Remote writes that are *not* the first access of any AR are left
  unannotated by the static pass (the paper: "Kivati could also annotate
  all remote accesses that do not start ARs, but this will result in
  unnecessary annotations"), so they are detected by the hardware
  watchpoint directly. Attackers here perform such single accesses.
- Symmetric check-then-update bugs (both threads run the same pair) are
  shielded by begin_atomic suspension and are only detected through
  watchpoint exhaustion — a racing begin_atomic that finds all four
  registers busy proceeds unmonitored and then trips the victim's
  watchpoint. A bursty noise thread supplies that register pressure,
  like the real applications do (Table 8).

Rarity tuning: window width (padding between the pair), attacker gating
and fixed-vs-randomized padding reproduce Table 6's spread, including the
three bugs ("-" rows) that prevention mode does not find.
"""

from repro.errors import WorkloadError


class BugSpec:
    """One corpus entry."""

    __slots__ = ("bug_id", "app", "description", "source", "victim_vars",
                 "pattern", "expected_output", "rare", "manifest_cmp")

    def __init__(self, bug_id, app, description, source, victim_vars,
                 pattern, expected_output, rare=False, manifest_cmp="ne"):
        self.bug_id = bug_id
        self.app = app
        self.description = description
        self.source = source
        self.victim_vars = frozenset(victim_vars)
        self.pattern = pattern
        self.expected_output = list(expected_output)
        self.rare = rare
        # "ne": any deviation from the race-free output is corruption;
        # "gt": only an output exceeding the expectation is (used when the
        # race-free value itself varies with benign timing)
        self.manifest_cmp = manifest_cmp

    def detected_in(self, report):
        """True if the run detected a violation on the bug's variable."""
        for record in report.violations:
            if record.var in self.victim_vars:
                return True
        return False

    def detection_records(self, report):
        return [r for r in report.violations if r.var in self.victim_vars]

    def manifested(self, result):
        """True if an *unprotected* run shows the corruption."""
        if result.fault is not None:
            return True
        if self.manifest_cmp == "pair":
            if len(result.output) != 2:
                return True
            return result.output[0] != result.output[1]
        if self.manifest_cmp == "gt":
            if len(result.output) != len(self.expected_output):
                return True
            return any(o > e for o, e in zip(result.output,
                                             self.expected_output))
        return result.output != self.expected_output

    def __repr__(self):
        return "BugSpec(%s/%s, %s)" % (self.app, self.bug_id, self.pattern)


_PAD = """
int pad_work(int rounds, int salt) {
    int i = 0;
    int acc = salt + 1;
    while (i < rounds) {
        acc = (acc * 33 + i) % 7919;
        i = i + 1;
    }
    return acc;
}
"""

_NOISE = """
int noise_a = 0;
int noise_b = 0;
int noise_c = 0;

void touch_noise(int x) {
    int a = noise_a;
    int b = noise_b;
    noise_a = a + x % 5;
    noise_b = b + 1;
    noise_c = noise_c + x % 3;
}

void noise_worker(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(6 + rand(5), i);
        if (i % 4 < 2) {
            touch_noise(x);
            touch_noise(x + 1);
            touch_noise(x + 2);
        }
        i = i + 1;
    }
}
"""

_COMMON = _PAD + _NOISE


# ---------------------------------------------------------------------------
# Apache
# ---------------------------------------------------------------------------

# 44402: buffered logging loses length updates when two threads append
# concurrently (check-then-update on buf_len). Symmetric: only the
# exhaustion channel detects it -> slowest detectable bug (paper: 66:59).
_APACHE_44402 = _COMMON + """
int log_len = 0;

void append_entry(int id) {
    int len = log_len;
    log_len = len + 1;
}

void logger(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(150 + rand(31), i + id);
        append_entry(id);
        i = i + 1;
    }
}

void main() {
    spawn noise_worker(120);
    spawn logger(1, 10);
    spawn logger(2, 10);
    join();
    output(log_len);
}
"""

# 21287: a pool cleanup pointer is nulled by another thread between the
# owner's publish and use -> dangling dereference (crash). The destroyer
# runs rarely; prevention mode essentially never observes the overlap.
_APACHE_21287 = _COMMON + """
int *cleanup_ptr;
int survived = 0;
int pool_done = 0;

void fast_use() {
    int v = *cleanup_ptr;
}

void publish_and_use(int x) {
    cleanup_ptr = alloc(2);
    int guard = pad_work(2, x);
    *cleanup_ptr = x + 1;
}

void null_ptr() {
    cleanup_ptr = 0;
}

void renew_ptr() {
    cleanup_ptr = alloc(2);
}

void use_pool(int id, int iters) {
    sleep(1000 + rand(4000));
    int i = 0;
    while (i < iters) {
        int x = pad_work(48 + rand(13), i + id);
        if (rand(15) == 3) {
            publish_and_use(x);
        } else {
            fast_use();
        }
        survived = survived + 1;
        i = i + 1;
    }
    pool_done = 1;
}

void destroy_pool() {
    sleep(1000 + rand(4000));
    int i = 0;
    while (pool_done == 0) {
        int x = pad_work(40 + rand(11), i);
        if (rand(29) == 5) {
            null_ptr();
            renew_ptr();
        }
        i = i + 1;
        sleep(400);
    }
}

void main() {
    cleanup_ptr = alloc(2);
    spawn noise_worker(200);
    spawn use_pool(1, 20);
    spawn destroy_pool();
    join();
    output(survived);
}
"""

# 25520: a log record is overwritten by another process between write and
# read-back -> corrupted entry. Overwriter gated hard (rare).
_APACHE_25520 = _COMMON + """
int log_word = 0;
int corrupt = 0;
int writer_done = 0;

void write_and_check(int v) {
    log_word = v;
    int mix = pad_work(2, v);
    int back = log_word;
    if (back != v) {
        corrupt = corrupt + 1;
    }
}

void fast_write(int v) {
    log_word = v;
}

void overwrite_log(int v) {
    log_word = v;
}

void writer(int iters) {
    sleep(1000 + rand(4000));
    int i = 0;
    while (i < iters) {
        int v = pad_work(46 + rand(11), i) + 1;
        if (rand(15) == 7) {
            write_and_check(v);
        } else {
            fast_write(v);
        }
        i = i + 1;
    }
    writer_done = 1;
}

void rotator() {
    sleep(1000 + rand(4000));
    int i = 0;
    while (writer_done == 0) {
        int v = pad_work(38 + rand(9), i);
        if (rand(29) == 4) {
            overwrite_log(v);
        }
        i = i + 1;
        sleep(400);
    }
}

void main() {
    spawn noise_worker(200);
    spawn writer(20);
    spawn rotator();
    join();
    output(corrupt);
}
"""

# ---------------------------------------------------------------------------
# Mozilla NSS
# ---------------------------------------------------------------------------

# 341323: the TLS version field changes between two consistency reads
# during a handshake.
_NSS_341323 = _COMMON + """
int ssl_version = 3;
int mismatches = 0;

void check_version(int salt) {
    int v1 = ssl_version;
    int x = pad_work(1, v1 + salt);
    int v2 = ssl_version;
    if (v1 != v2) {
        mismatches = mismatches + 1;
    }
}

void set_version(int v) {
    ssl_version = v;
}

void handshake(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(32 + rand(13), i + id);
        check_version(x);
        i = i + 1;
    }
}

void renegotiate(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(24 + rand(11), i);
        if (i % 4 == 1) {
            set_version(3 + (x % 2));
        }
        i = i + 1;
    }
}

void main() {
    spawn noise_worker(90);
    spawn handshake(1, 22);
    spawn renegotiate(22);
    join();
    output(mismatches);
}
"""

# 329072: check-then-init on the RNG -> double initialization. Symmetric
# check-then-act with a wide init window.
_NSS_329072 = _COMMON + """
int rng_initialized = 0;
int init_count = 0;

void ensure_rng(int id) {
    int flag = rng_initialized;
    if (flag == 0) {
        int seed_work = pad_work(6, id);
        init_count = init_count + 1;
        rng_initialized = 1;
    }
}

void reset_rng() {
    rng_initialized = 0;
}

void client(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(12 + rand(7), i + id);
        ensure_rng(id + i);
        i = i + 1;
    }
}

void recycler(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(30 + rand(7), i);
        if (i % 5 == 2) {
            reset_rng();
        }
        i = i + 1;
    }
}

void main() {
    spawn noise_worker(70);
    spawn client(1, 20);
    spawn client(2, 20);
    spawn recycler(12);
    join();
    output(init_count);
}
"""

# 225525: non-atomic refcount increment/decrement on a PKCS#11 token slot.
# Symmetric: exhaustion channel.
_NSS_225525 = _COMMON + """
int slot_refcount = 1;
int *ref_handle;

void token_ref(int salt) {
    int r = slot_refcount;
    slot_refcount = r + 1;
}

void ref_worker(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(28 + rand(9), i + id);
        if (i % 2 == 0) {
            token_ref(x);
        }
        i = i + 1;
    }
}

void unref_worker(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(30 + rand(9), i);
        if (i % 2 == 1) {
            atomic_add(ref_handle, -1);
        }
        i = i + 1;
    }
}

void main() {
    ref_handle = &slot_refcount;
    spawn noise_worker(110);
    spawn ref_worker(1, 24);
    spawn unref_worker(24);
    join();
    output(slot_refcount);
}
"""

# 270689: an arena pointer is replaced between probe and use; the stale
# window dereferences NULL (crash when it manifests).
_NSS_270689 = _COMMON + """
int *arena_ptr;
int allocs = 0;

void probe_and_use(int salt) {
    int probe = *arena_ptr;
    int x = pad_work(2, probe + salt);
    int v = *arena_ptr;
    allocs = allocs + 1;
}

void null_arena() {
    arena_ptr = 0;
}

void renew_arena() {
    arena_ptr = alloc(2);
}

void use_arena(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(24 + rand(11), i + id);
        probe_and_use(x);
        i = i + 1;
    }
}

void shrink_arena(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(22 + rand(13), i);
        null_arena();
        renew_arena();
        i = i + 1;
    }
}

void main() {
    arena_ptr = alloc(2);
    spawn noise_worker(90);
    spawn use_arena(1, 18);
    spawn shrink_arena(18);
    join();
    output(allocs);
}
"""

# 169296: certificate cache counter with an adjacent read/write pair,
# fixed padding and a symmetric partner — the paper's hardest bug (not
# found in prevention mode after 90 minutes).
_NSS_169296 = _COMMON + """
int cert_cache = 0;
int bump_count = 0;
int lookups_done = 0;

int cache_peek() {
    return cert_cache;
}

void cache_bump(int salt) {
    atomic_add(&bump_count, 1);
    int c = cert_cache;
    cert_cache = c + 1;
}

void lookup_cert(int id, int iters) {
    sleep(1000 + rand(4000));
    int i = 0;
    while (i < iters) {
        int x = pad_work(52 + rand(9), i + id);
        if (rand(15) == id) {
            cache_bump(x);
        } else {
            int seen = cache_peek();
        }
        i = i + 1;
    }
    atomic_add(&lookups_done, 1);
}

void noise_until_done() {
    int i = 0;
    while (lookups_done < 2) {
        int x = pad_work(5 + rand(5), i);
        touch_noise(x);
        i = i + 1;
        sleep(300);
    }
}

void main() {
    spawn noise_until_done();
    spawn lookup_cert(1, 24);
    spawn lookup_cert(2, 24);
    join();
    output(cert_cache);
    output(bump_count);
}
"""

# 201134: shutdown flag is checked, then the resource is used — the
# shutdown/restart thread frees it in between.
_NSS_201134 = _COMMON + """
int shutting_down = 0;
int resource = 1000;
int use_after_free = 0;

void guarded_use(int salt) {
    int down = shutting_down;
    int x = pad_work(3, salt);
    int down2 = shutting_down;
    if (down == 0 && down2 == 0) {
        int r = resource;
        if (r == 0) {
            use_after_free = use_after_free + 1;
        }
    }
}

void raise_flag() {
    shutting_down = 1;
}

void drop_flag() {
    shutting_down = 0;
}

void free_resource() {
    resource = 0;
}

void restore_resource() {
    resource = 1000;
}

void worker(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(16 + rand(9), i + id);
        guarded_use(x);
        i = i + 1;
    }
}

void shutdown_cycle(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(26 + rand(7), i);
        if (i % 6 == 3) {
            raise_flag();
            free_resource();
            int y = pad_work(4, x);
            restore_resource();
            drop_flag();
        }
        i = i + 1;
    }
}

void main() {
    spawn noise_worker(90);
    spawn worker(1, 24);
    spawn shutdown_cycle(30);
    join();
    output(use_after_free);
}
"""

# ---------------------------------------------------------------------------
# MySQL
# ---------------------------------------------------------------------------

# 19938: the binlog dump thread observes DROP TABLE state half-written.
_MYSQL_19938 = _COMMON + """
int table_state = 0;
int bad_dumps = 0;
int drops = 0;

void do_drop(int salt) {
    table_state = 1;
    int x = pad_work(1, salt);
    table_state = 2;
    drops = drops + 1;
    table_state = 0;
}

int read_state() {
    return table_state;
}

void drop_table(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(26 + rand(9), i);
        if (i % 2 == 0) {
            do_drop(x);
        }
        i = i + 1;
    }
}

void dump_thread(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(18 + rand(11), i);
        int s = read_state();
        if (s == 1) {
            bad_dumps = bad_dumps + 1;
        }
        i = i + 1;
    }
}

void main() {
    spawn noise_worker(80);
    spawn drop_table(20);
    spawn dump_thread(20);
    join();
    output(bad_dumps);
}
"""

# 25306: query-cache version and data are read non-atomically while an
# invalidation updates both -> stale result served.
_MYSQL_25306 = _COMMON + """
int qc_version = 0;
int qc_data = 0;
int stale_serves = 0;

void serve_query(int salt) {
    int v1 = qc_version;
    int d = qc_data;
    int v2 = qc_version;
    if (v1 != v2 || d != v1 * 10) {
        stale_serves = stale_serves + 1;
    }
}

void bump_version() {
    qc_version = qc_version + 1;
}

void publish_data(int v) {
    qc_data = v;
}

void query(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(15 + rand(9), i + id);
        serve_query(x);
        i = i + 1;
    }
}

void invalidate(int iters) {
    int i = 0;
    while (i < iters) {
        int x = pad_work(20 + rand(9), i);
        if (i % 2 == 1) {
            bump_version();
            publish_data(qc_version * 10);
        }
        i = i + 1;
    }
}

void main() {
    qc_data = 0;
    spawn noise_worker(80);
    spawn query(1, 22);
    spawn invalidate(22);
    join();
    output(stale_serves);
}
"""


BUGS = {
    "44402": BugSpec(
        "44402", "Apache",
        "buffered log: concurrent appends lose length updates",
        _APACHE_44402, ("log_len",), "(R,W,W)", [20]),
    "21287": BugSpec(
        "21287", "Apache",
        "pool cleanup pointer nulled between publish and use (dangling "
        "deref)",
        _APACHE_21287, ("cleanup_ptr", "*cleanup_ptr"), "(W,W,R)", [26],
        rare=True, manifest_cmp="gt"),
    "25520": BugSpec(
        "25520", "Apache",
        "log record overwritten between write and read-back",
        _APACHE_25520, ("log_word",), "(W,W,R)", [0], rare=True),
    "341323": BugSpec(
        "341323", "NSS",
        "TLS version field changes between consistency reads",
        _NSS_341323, ("ssl_version",), "(R,W,R)", [0]),
    "329072": BugSpec(
        "329072", "NSS",
        "RNG double initialization (check-then-init)",
        _NSS_329072, ("rng_initialized",), "(R,W,W)", [3],
        manifest_cmp="gt"),
    "225525": BugSpec(
        "225525", "NSS",
        "token refcount: non-atomic increment/decrement",
        _NSS_225525, ("slot_refcount",), "(R,W,W)", [1]),
    "270689": BugSpec(
        "270689", "NSS",
        "arena pointer freed between probe and use (null deref crash)",
        _NSS_270689, ("arena_ptr", "*arena_ptr"), "(R,W,R)", [18]),
    "169296": BugSpec(
        "169296", "NSS",
        "certificate cache counter: adjacent read/write, narrow window",
        _NSS_169296, ("cert_cache",), "(R,W,W)", [0, 0], rare=True,
        manifest_cmp="pair"),
    "201134": BugSpec(
        "201134", "NSS",
        "shutdown flag checked, resource freed before use",
        _NSS_201134, ("shutting_down", "resource"), "(R,W,R)", [0]),
    "19938": BugSpec(
        "19938", "MySQL",
        "DROP TABLE state observed half-written by binlog dump thread",
        _MYSQL_19938, ("table_state",), "(W,R,W)", [0]),
    "25306": BugSpec(
        "25306", "MySQL",
        "query cache version/data read non-atomically (stale serve)",
        _MYSQL_25306, ("qc_version", "qc_data"), "(R,W,R)", [0]),
}

BUG_IDS = tuple(BUGS)


def get_bug(bug_id):
    try:
        return BUGS[str(bug_id)]
    except KeyError:
        raise WorkloadError("unknown bug id %r" % (bug_id,)) from None
