"""The 11-bug corpus (Table 6)."""

from repro.workloads.bugs.corpus import BUG_IDS, BUGS, BugSpec, get_bug

__all__ = ["BUGS", "BUG_IDS", "BugSpec", "get_bug"]
