"""Application models and the bug corpus (Table 2 / Table 6).

The paper evaluates five applications: the Mozilla NSS module, the VLC
media player, the Apache web server (driven by Webstone), MySQL (driven
by TPC-W) and the SPEC OMP 2001 suite. Each model here is a mini-C
program reproducing the relevant sharing structure: lock-protected state,
benign racy counters, double-checked initialization, producer/consumer
flag handoffs, barriers — at a compute-to-sharing ratio that matches the
paper's observed trap rates (watchpoint traps are five orders of magnitude
rarer than begin_atomic calls).
"""

from repro.workloads.base import Workload
from repro.workloads.catalog import APP_BUILDERS, APP_NAMES, build_app, workload_suite
from repro.workloads.bugs import BUG_IDS, BugSpec, get_bug

__all__ = [
    "APP_BUILDERS",
    "APP_NAMES",
    "BUG_IDS",
    "BugSpec",
    "Workload",
    "build_app",
    "get_bug",
    "workload_suite",
]
