"""Registry of the five application models (Table 2)."""

from repro.errors import WorkloadError
from repro.workloads.apps import (
    build_nss,
    build_specomp,
    build_tpcw,
    build_vlc,
    build_webstone,
)

APP_BUILDERS = {
    "NSS": build_nss,
    "VLC": build_vlc,
    "Webstone": build_webstone,
    "TPC-W": build_tpcw,
    "SPEC OMP": build_specomp,
}

APP_NAMES = ("NSS", "VLC", "Webstone", "TPC-W", "SPEC OMP")

#: Table 2 of the paper.
PAPER_WORKLOADS = {
    "NSS": "Request 1000 SSL pages",
    "VLC": "Play a 25 minute video clip",
    "Webstone": "Run Webstone benchmark for 50 minutes",
    "TPC-W": "Run TPC-W benchmark for 30 minutes",
    "SPEC OMP": "Run all benchmarks once",
}


def build_app(name, **kwargs):
    """Build one application model by name."""
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            "unknown app %r (choose from %s)" % (name, ", ".join(APP_NAMES))
        ) from None
    return builder(**kwargs)


def workload_suite(scale=1.0):
    """Build all five applications. ``scale`` multiplies per-thread work
    (iterations/frames/requests/transactions/rounds)."""
    def s(n):
        return max(2, int(round(n * scale)))

    return [
        build_nss(iters=s(25)),
        build_vlc(frames=s(70)),
        build_webstone(requests=s(28)),
        build_tpcw(txns=s(40)),
        build_specomp(rounds=s(3)),
    ]
