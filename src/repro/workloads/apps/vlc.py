"""VLC model: media decode/render pipeline.

Paper workload: "Play a 25 minute video clip". Modelled as a decoder
(producer) feeding frames through a ring buffer to a renderer (consumer)
with flag-style handoff, plus a lock-protected volume control. The ring
handoff produces the paper's "required" atomicity violations (Figure 5
pattern) that Kivati must tolerate via its timeout/clear mechanisms.
"""

from repro.workloads.base import Workload

_TEMPLATE = """
int ring[16];
int head = 0;
int tail = 0;
int playing = 1;
int frames_rendered = 0;
int volume = 50;
int vol_lock = 0;

int codec_work(int rounds, int salt) {
    int i = 0;
    int acc = salt * 3 + 1;
    while (i < rounds) {
        acc = (acc * 29 + i * 7) %% 92821;
        i = i + 1;
    }
    return acc;
}

void ring_push(int v) {
    while (head - tail >= %(ring)d) {
        sleep(400);
    }
    ring[head %% %(ring)d] = v;
    head = head + 1;
}

int ring_pop() {
    while (1) {
        if (head - tail > 0) {
            int v = ring[tail %% %(ring)d];
            tail = tail + 1;
            return v;
        }
        if (playing == 0) {
            return -1;
        }
        sleep(400);
    }
}

void decoder(int frames) {
    int f = 0;
    while (f < frames) {
        int v = codec_work(%(decode)d, f);
        ring_push(v %% 1000 + 1);
        f = f + 1;
    }
    playing = 0;
}

void count_frame() {
    frames_rendered = frames_rendered + 1;
}

void bump_volume() {
    lock(&vol_lock);
    volume = volume + 1;
    unlock(&vol_lock);
}

void renderer() {
    while (1) {
        int v = ring_pop();
        if (v < 0) {
            break;
        }
        int r = codec_work(%(render)d, v);
        count_frame();
        if (r %% 97 == 0) {
            bump_volume();
        }
    }
}

void ui_thread() {
    while (playing == 1) {
        sleep(2500);
        int vol = volume;
        int shown = frames_rendered;
        if (vol > 200) {
            bump_volume();
        }
    }
}

void main() {
    spawn decoder(%(frames)d);
    spawn renderer();
    spawn ui_thread();
    join();
    output(frames_rendered);
}
"""


def build_vlc(frames=70, decode=130, render=100, ring=6):
    source = _TEMPLATE % {"frames": frames, "decode": decode,
                          "render": render, "ring": ring}
    return Workload(
        name="VLC",
        source=source,
        description="VLC: decode/render pipeline (paper: play a 25 minute "
                    "video clip)",
        threads=2,
        validate=lambda out, e=frames: out == [e],
    )
