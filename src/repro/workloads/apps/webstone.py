"""Webstone model: the Apache web server under the Webstone benchmark.

Paper workload: "Run Webstone benchmark for 50 minutes". Modelled as a
pool of HTTP workers each serving requests: a read-mostly config, a
lock-protected page cache, lock-protected hit statistics and a racy log
append (the pattern behind the Apache log bugs in the paper's corpus).
"""

from repro.workloads.base import Workload

_TEMPLATE = """
int cache_tag[32];
int cache_data[32];
int cache_lock = 0;
int hits = 0;
int bytes_total = 0;
int hit_lock = 0;
int log_pos = 0;
int log_buf[128];
int config_keepalive = 1;
int served[8];

int handle_work(int rounds, int salt) {
    int i = 0;
    int acc = salt + 3;
    while (i < rounds) {
        acc = (acc * 37 + i * 5) %% 75079;
        i = i + 1;
    }
    return acc;
}

int cache_get(int url) {
    lock(&cache_lock);
    int tag = cache_tag[url];
    int body = cache_data[url];
    unlock(&cache_lock);
    if (tag != url + 1) {
        body = handle_work(%(miss)d, url) + 1;
        lock(&cache_lock);
        cache_tag[url] = url + 1;
        cache_data[url] = body;
        unlock(&cache_lock);
    }
    return body;
}

void log_append(int code) {
    int p = log_pos;
    log_buf[p %% 128] = code;
    log_pos = p + 1;
}

int get_config() {
    return config_keepalive;
}

void count_hit(int n) {
    lock(&hit_lock);
    hits = hits + 1;
    bytes_total = bytes_total + n;
    unlock(&hit_lock);
}

void mark_served(int id) {
    served[id] = served[id] + 1;
}

void http_worker(int id, int requests) {
    int r = 0;
    while (r < requests) {
        int url = rand(32);
        int keep = get_config();
        int body = cache_get(url);
        int resp = handle_work(%(serve)d, body + keep);
        log_append(resp %% 100);
        count_hit(resp %% 1000);
        if (r %% 4 == 0) {
            mark_served(id);
        }
        r = r + 1;
    }
}

void main() {
%(spawns)s
    join();
    output(hits);
}
"""


def build_webstone(threads=4, requests=28, miss=120, serve=90):
    spawns = "\n".join(
        "    spawn http_worker(%d, %d);" % (t, requests)
        for t in range(threads)
    )
    source = _TEMPLATE % {"miss": miss, "serve": serve, "spawns": spawns}
    total = threads * requests
    return Workload(
        name="Webstone",
        source=source,
        description="Apache/Webstone: worker pool serving requests (paper: "
                    "50 minute Webstone run)",
        threads=threads,
        requests=total,
        validate=lambda out, e=total: out == [e],
    )
