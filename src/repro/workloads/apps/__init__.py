"""The five application models (Table 2)."""

from repro.workloads.apps.nss import build_nss
from repro.workloads.apps.vlc import build_vlc
from repro.workloads.apps.webstone import build_webstone
from repro.workloads.apps.tpcw import build_tpcw
from repro.workloads.apps.specomp import build_specomp

__all__ = ["build_nss", "build_specomp", "build_tpcw", "build_vlc",
           "build_webstone"]
