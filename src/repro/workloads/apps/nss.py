"""NSS model: Mozilla's crypto/TLS library under a handshake workload.

Paper workload: "Request 1000 SSL pages" against Firefox's NSS module.
Sharing structure modelled: a lock-protected session table, racy-but-
benign statistics counters, and a double-checked-init certificate cache
(the classic source of benign atomicity violations in NSS).
"""

from repro.workloads.base import Workload

_TEMPLATE = """
int session_state[32];
int session_lock = 0;
int cache_ready = 0;
int cache_value = 0;
int stats_ops = 0;
int stats_bytes = 0;
int total_handshakes = 0;
int hs_lock = 0;

int crypto_work(int rounds, int salt) {
    int i = 0;
    int acc = salt + 7;
    while (i < rounds) {
        acc = (acc * 31 + i) %% 65537;
        i = i + 1;
    }
    return acc;
}

int cert_cache_lookup(int key) {
    if (cache_ready == 0) {
        cache_value = key * 13 + 11;
        cache_ready = 1;
    }
    return cache_value;
}

void record_stats(int n) {
    stats_ops = stats_ops + 1;
    stats_bytes = stats_bytes + n;
}

void session_touch(int slot) {
    lock(&session_lock);
    int s = session_state[slot];
    session_state[slot] = s + 1;
    unlock(&session_lock);
}

void count_handshake() {
    lock(&hs_lock);
    total_handshakes = total_handshakes + 1;
    unlock(&hs_lock);
}

void handshake_worker(int id, int iters) {
    int i = 0;
    while (i < iters) {
        int slot = rand(32);
        int secret = crypto_work(%(crypto)d, id + i);
        int cert = cert_cache_lookup(slot);
        session_touch(slot);
        int mac = crypto_work(%(mac)d, secret + cert);
        record_stats(mac %% 256);
        count_handshake();
        i = i + 1;
    }
}

void main() {
%(spawns)s
    join();
    output(total_handshakes);
}
"""


def build_nss(threads=4, iters=25, crypto=110, mac=80):
    spawns = "\n".join(
        "    spawn handshake_worker(%d, %d);" % (t + 1, iters)
        for t in range(threads)
    )
    source = _TEMPLATE % {"crypto": crypto, "mac": mac, "spawns": spawns}
    expected = threads * iters

    return Workload(
        name="NSS",
        source=source,
        description="Mozilla NSS: SSL handshakes (paper: request 1000 SSL "
                    "pages)",
        threads=threads,
        validate=lambda out, e=expected: out == [e],
    )
