"""TPC-W model: MySQL under the TPC-W transaction mix.

Paper workload: "Run TPC-W benchmark for 30 minutes". Modelled as
transaction workers against row-locked stock/price tables, a global order
counter, a racy query-cache invalidation counter, and an audit log. This
is the paper's most sharing-intensive workload (highest kernel-crossing
rate in Table 4, most false positives in Table 7, most watchpoint
exhaustion in Tables 8/9) — reproduced here by the highest density of
shared accesses per unit of compute, including array row locks that the
static annotator cannot whitelist as sync variables.
"""

from repro.workloads.base import Workload

_TEMPLATE = """
int stock[24];
int price[24];
int row_lock[6];
int orders = 0;
int order_lock = 0;
int cache_version = 0;
int audit_total = 0;
int audit_lock = 0;
int committed[8];

int think_work(int rounds, int salt) {
    int i = 0;
    int acc = salt + 5;
    while (i < rounds) {
        acc = (acc * 41 + i * 3) %% 99991;
        i = i + 1;
    }
    return acc;
}

void purchase(int item) {
    int l = item %% 6;
    lock(&row_lock[l]);
    int s = stock[item];
    if (s > 0) {
        stock[item] = s - 1;
    }
    price[item] = price[item] + 1;
    unlock(&row_lock[l]);
}

void invalidate_cache() {
    cache_version = cache_version + 1;
}

void count_order() {
    lock(&order_lock);
    orders = orders + 1;
    unlock(&order_lock);
}

void audit_append(int n) {
    lock(&audit_lock);
    audit_total = audit_total + n;
    unlock(&audit_lock);
}

void mark_committed(int id) {
    committed[id] = committed[id] + 1;
}

void txn_worker(int id, int txns) {
    int t = 0;
    while (t < txns) {
        int item = rand(24);
        int think = think_work(%(think)d, item + id);
        purchase(item);
        invalidate_cache();
        count_order();
        audit_append(think %% 50);
        mark_committed(id);
        t = t + 1;
    }
}

void main() {
    int i = 0;
    while (i < 24) {
        stock[i] = 100 + i;
        i = i + 1;
    }
%(spawns)s
    join();
    output(orders);
}
"""


def build_tpcw(threads=4, txns=40, think=110):
    spawns = "\n".join(
        "    spawn txn_worker(%d, %d);" % (t, txns) for t in range(threads)
    )
    source = _TEMPLATE % {"think": think, "spawns": spawns}
    total = threads * txns
    return Workload(
        name="TPC-W",
        source=source,
        description="MySQL/TPC-W: row-locked transactions (paper: 30 minute "
                    "TPC-W run)",
        threads=threads,
        requests=total,
        validate=lambda out, e=total: out == [e],
    )
