"""SPEC OMP model: OpenMP-style data-parallel kernel.

Paper workload: "Run all benchmarks [of SPEC 2001 OMP] once". Modelled as
workers computing over interleaved chunks of a shared array, a
lock-protected reduction, and a counter/generation barrier per round (the
spin-on-flag communication that generates the paper's required
violations, kept in a small subroutine as real barrier implementations
are).
"""

from repro.workloads.base import Workload

_TEMPLATE = """
int data[128];
int gsum = 0;
int sum_lock = 0;
int barrier_count = 0;
int barrier_gen = 0;
int rounds_done = 0;

void barrier_wait(int nthreads) {
    int gen = barrier_gen;
    int arrived = atomic_add(&barrier_count, 1);
    if (arrived == nthreads - 1) {
        barrier_count = 0;
        barrier_gen = gen + 1;
    } else {
        while (barrier_gen == gen) {
            sleep(300);
        }
    }
}

void add_partial(int v) {
    lock(&sum_lock);
    gsum = gsum + v;
    unlock(&sum_lock);
}

int elem_kernel(int i, int salt) {
    int j = 0;
    int a = salt + 3;
    while (j < %(kernel)d) {
        a = (a * 13 + j + i) %% 1021;
        j = j + 1;
    }
    return a;
}

void omp_worker(int id, int nthreads, int rounds) {
    int r = 0;
    while (r < rounds) {
        int i = id;
        int acc = 0;
        while (i < 128) {
            int k = elem_kernel(i, id);
            acc = acc + (data[i] * k) %% 257;
            i = i + nthreads;
        }
        add_partial(acc %% 1000);
        barrier_wait(nthreads);
        r = r + 1;
    }
    atomic_add(&rounds_done, 1);
}

void main() {
    int i = 0;
    while (i < 128) {
        data[i] = i * 3 + 1;
        i = i + 1;
    }
%(spawns)s
    join();
    output(rounds_done);
}
"""


def build_specomp(threads=4, rounds=3, kernel=90):
    spawns = "\n".join(
        "    spawn omp_worker(%d, %d, %d);" % (t, threads, rounds)
        for t in range(threads)
    )
    source = _TEMPLATE % {"spawns": spawns, "kernel": kernel}
    return Workload(
        name="SPEC OMP",
        source=source,
        description="SPEC 2001 OMP: parallel loops with reduction + barrier",
        threads=threads,
        validate=lambda out, e=threads: out == [e],
    )
