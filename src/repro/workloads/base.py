"""Workload descriptor."""


class Workload:
    """A runnable workload: named mini-C source plus metadata.

    ``requests`` is the total number of client requests the run serves
    (server workloads only; used for Table 5 latency).
    ``expected_output`` optionally names a validator for the program's
    output channel, used to assert that Kivati never breaks correctness.
    """

    __slots__ = ("name", "source", "description", "threads", "requests",
                 "validate")

    def __init__(self, name, source, description, threads, requests=None,
                 validate=None):
        self.name = name
        self.source = source
        self.description = description
        self.threads = threads
        self.requests = requests
        self.validate = validate

    def check_output(self, output):
        """Return True if the run's output is acceptable."""
        if self.validate is None:
            return True
        return self.validate(output)

    def __repr__(self):
        return "Workload(%s, threads=%d)" % (self.name, self.threads)
