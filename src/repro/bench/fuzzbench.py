"""Fuzz-campaign benchmark (``BENCH_fuzz.json``).

Runs a seeded generative campaign (:mod:`repro.fuzz.campaign`) through
the fleet plane and gates on the robustness claims:

- **no lost work**: every generated program comes back from the fleet
  (job results are worker-count independent, so this is a scheduling
  claim, not a luck claim);
- **no unarchived divergences**: every evaluator disagreement — online
  vs reverify, report mismatch, replay divergence, conflict-sched
  opacity, deadlock, job error — is ddmin-minimized and archived with
  its seed, schedule and journal; nothing is silently dropped;
- **small repros**: every archived case minimizes to at most
  ``MAX_REPRO_LINES`` non-blank lines of mini-C;
- **fix validity**: at least ``MIN_FIX_RATE`` of confirmed violations
  get a synthesized fix that verifies under pinned replay of the
  violating schedule *and* a fresh-seed sweep.

The artifact (schema ``kivati-fuzzbench/v1``) is committed as
``BENCH_fuzz.json``; ``validate`` is the CI gate.  A ``smoke`` artifact
(CI-sized campaign) proves the machinery; the committed full artifact
proves the rates.
"""

import json
import os

from repro.bench.schema import check_schema
from repro.bench.render import Table
from repro.fuzz.archive import load_corpus
from repro.fuzz.campaign import CampaignSpec, run_campaign

SCHEMA = "kivati-fuzzbench/v1"
#: minimized repros must fit in this many non-blank source lines
MAX_REPRO_LINES = 20
#: fraction of confirmed violations that must get a verified fix
MIN_FIX_RATE = 0.8
#: full artifacts must cover at least this many generated programs
MIN_PROGRAMS = 200

#: the committed full-campaign shape
FULL = dict(n_programs=200, base_seed=1, workers=4, drill_every=10,
            minimize_tests=400)
#: the CI smoke shape — small, deterministic, still end-to-end
SMOKE = dict(n_programs=10, base_seed=1, workers=0, drill_every=5,
             minimize_tests=60)


def _archived_rows(corpus_dir, names):
    """Line counts and kinds for the campaign's archived cases."""
    rows = []
    by_name = {case.name: case for case in load_corpus(corpus_dir)}
    for name in names:
        case = by_name.get(name)
        if case is None:
            rows.append({"case": name, "missing": True})
            continue
        meta = case.meta
        minimized = meta.get("minimize") or {}
        rows.append({
            "case": name,
            "kinds": meta.get("kinds"),
            "drill": meta.get("drill"),
            "lines": minimized.get("minimized_lines"),
            "original_lines": minimized.get("original_lines"),
            "tests": minimized.get("tests"),
            "archived_seed": meta.get("archived_seed"),
        })
    return rows


def generate(smoke=False, corpus_dir=None, log=None, **overrides):
    """Run the campaign and return the artifact dict."""
    shape = dict(SMOKE if smoke else FULL)
    shape.update(overrides)
    spec = CampaignSpec(corpus_dir=corpus_dir, **shape)
    result = run_campaign(spec, log=log)
    payload = result.as_payload()
    fixes = payload.pop("fixes")
    verified = sum(1 for f in fixes if f["verified"])
    strategies = {}
    for f in fixes:
        if f["verified"]:
            strategies[f["strategy"]] = strategies.get(f["strategy"], 0) + 1
    return {
        "schema": SCHEMA,
        "smoke": bool(smoke),
        "spec": {"corpus_dir": corpus_dir, **shape},
        "campaign": payload,
        "cases": (_archived_rows(corpus_dir, result.archived)
                  if corpus_dir else []),
        "fixes": {
            "attempted": len(fixes),
            "verified": verified,
            "rate": payload["fix_rate"],
            "strategies": strategies,
            "outcomes": fixes,
        },
        "max_repro_lines": MAX_REPRO_LINES,
        "min_fix_rate": 0.0 if smoke else MIN_FIX_RATE,
    }


def validate(payload):
    """Schema/invariant problems with a fuzzbench artifact (empty list
    = valid)."""
    problems = check_schema(payload, SCHEMA)
    if not isinstance(payload, dict):
        return problems
    campaign = payload.get("campaign")
    if not isinstance(campaign, dict):
        return problems + ["campaign missing"]
    smoke = bool(payload.get("smoke"))
    if not smoke and campaign.get("programs", 0) < MIN_PROGRAMS:
        problems.append("full artifact covers %s programs, need >=%d"
                        % (campaign.get("programs"), MIN_PROGRAMS))
    if campaign.get("lost", 1) != 0:
        problems.append("campaign lost %s job(s)" % campaign.get("lost"))
    if campaign.get("unarchived"):
        problems.append("unarchived divergences: %s"
                        % campaign["unarchived"])
    fleet = campaign.get("fleet") or {}
    if fleet.get("verification_failures"):
        problems.append("%d fleet verification failure(s)"
                        % fleet["verification_failures"])
    limit = payload.get("max_repro_lines", MAX_REPRO_LINES)
    for row in payload.get("cases") or []:
        if row.get("missing"):
            problems.append("archived case %s missing from corpus"
                            % row["case"])
        elif row.get("lines") is not None and row["lines"] > limit:
            problems.append("case %s minimized to %d lines, limit %d"
                            % (row["case"], row["lines"], limit))
    fixes = payload.get("fixes") or {}
    want_rate = payload.get("min_fix_rate", MIN_FIX_RATE)
    rate = fixes.get("rate")
    if fixes.get("attempted"):
        if rate is None or rate < want_rate:
            problems.append("fix rate %s below %s (%d/%d verified)"
                            % (rate, want_rate, fixes.get("verified", 0),
                               fixes.get("attempted", 0)))
    elif not smoke:
        problems.append("full artifact attempted no fixes "
                        "(no confirmed violations?)")
    if smoke and not fixes.get("verified"):
        problems.append("smoke campaign verified no fix "
                        "(need at least one replay-verified fix)")
    return problems


def render(payload):
    campaign = payload["campaign"]
    fixes = payload["fixes"]
    table = Table(
        "Fuzz campaign: %d generated programs (%d drilled), "
        "%d divergence(s) archived, fixes %d/%d verified"
        % (campaign["programs"], campaign["drill_programs"],
           len(campaign["archived"]), fixes["verified"],
           fixes["attempted"]),
        ["case", "kinds", "drill", "lines", "tests"],
        note="every divergence is ddmin-minimized (<=%d lines) and "
             "archived with seed+schedule+journal; fix rate %s "
             "(gate >=%s); %d job(s) lost, %d unarchived"
             % (payload["max_repro_lines"],
                "%.2f" % fixes["rate"] if fixes["rate"] is not None
                else "n/a",
                payload["min_fix_rate"], campaign["lost"],
                len(campaign["unarchived"])),
    )
    for row in payload["cases"]:
        table.add_row(row["case"], ",".join(row.get("kinds") or ()),
                      "yes" if row.get("drill") else "no",
                      row.get("lines"), row.get("tests"))
    return table.render()


def write_payload(payload, path):
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


__all__ = ["FULL", "MAX_REPRO_LINES", "MIN_FIX_RATE", "MIN_PROGRAMS",
           "SCHEMA", "SMOKE", "generate", "render", "validate",
           "write_payload"]
