"""Ablation studies for the design choices called out in DESIGN.md.

Not a paper table — these quantify the design trade-offs the paper
justifies in prose:

- trap-after (x86) vs trap-before (SPARC) hardware (Section 2.2/Table 1),
- lazy opportunistic cross-core propagation vs an eager IPI (Section 3.2),
- the length of the suspension timeout (Section 3.3),
- the bug-finding pause length (Section 4.2).
"""

from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel, OptimizationConfig
from repro.core.session import ProtectedProgram
from repro.workloads.catalog import build_tpcw


class AblationResult:
    def __init__(self, table, data):
        self.table = table
        self.rows = table.rows
        self.data = data

    def render(self):
        return self.table.render()

    def check_shape(self):
        problems = []
        d = self.data
        if not d["trap_before"]["undos"] == 0 < d["trap_after"]["undos"]:
            problems.append("trap-before hardware should not need undo")
        base = d["opt_base"]
        for name in ("opt_o1", "opt_o3", "opt_o4"):
            if d[name]["crossings"] >= base["crossings"]:
                problems.append("%s: no crossing reduction vs base" % name)
            if d[name]["time_ns"] > base["time_ns"] * 1.05:
                problems.append("%s: slower than base" % name)
        if d["eager"]["time_ns"] < d["lazy"]["time_ns"] * 0.8:
            problems.append("eager IPIs dramatically beat lazy propagation "
                            "(the paper expects lazy to be competitive)")
        if d["interprocedural"]["ars"] <= d["trap_after"]["ars"]:
            problems.append("inter-procedural analysis found no extra ARs")
        return problems


def generate(scale=0.4, seed=3):
    workload = build_tpcw(txns=max(2, int(40 * scale)))
    pp = ProtectedProgram(workload.source)
    vanilla = pp.run_vanilla(seed=seed)

    table = Table(
        "Ablations (TPC-W model, optimized config)",
        ["Variant", "Overhead", "Crossings", "Undos", "Timeouts",
         "Violations"],
    )
    data = {}

    def record(name, label, opt=OptLevel.OPTIMIZED, **overrides):
        config = bench_config(Mode.PREVENTION, opt, **overrides)
        report = pp.run(config, seed=seed)
        entry = {
            "time_ns": report.time_ns,
            "overhead": report.time_ns / vanilla.time_ns - 1,
            "crossings": report.stats.crossings(),
            "undos": report.stats.undos,
            "timeouts": report.stats.suspend_timeouts,
            "violations": len(report.violations),
        }
        data[name] = entry
        table.add_row(label, "%.1f%%" % (entry["overhead"] * 100),
                      entry["crossings"], entry["undos"], entry["timeouts"],
                      entry["violations"])
        return entry

    # each Section 3.4 optimization in isolation, against base
    record("opt_base", "no optimizations (base)", opt=OptLevel.BASE)
    record("opt_o1", "O1 user-space replica only",
           opt=OptimizationConfig(o1_userspace=True))
    record("opt_o2", "O2 lazy watchpoint free (with O1)",
           opt=OptimizationConfig(o1_userspace=True, o2_lazy_free=True))
    record("opt_o3", "O3 local-delivery suppression only",
           opt=OptimizationConfig(o3_local_disable=True))
    record("opt_o4", "O4 syncvar whitelist only",
           opt=OptimizationConfig(o4_syncvars=True))

    record("trap_after", "trap-after hardware (x86)")
    record("trap_before", "trap-before hardware (SPARC)", trap_before=True)
    record("lazy", "lazy cross-core propagation")
    record("eager", "eager cross-core IPIs", eager_crosscore=True)
    for timeout_us in (2, 10, 50):
        record("timeout_%d" % timeout_us,
               "suspension timeout %d ms-equivalent" % (timeout_us),
               suspend_timeout_ns=timeout_us * 1000)

    # Section 3.5 extension: inter-procedural ARs (more coverage, more
    # overhead)
    inter_pp = ProtectedProgram(workload.source, interprocedural=True)
    config = bench_config(Mode.PREVENTION, OptLevel.OPTIMIZED)
    report = inter_pp.run(config, seed=seed)
    entry = {
        "time_ns": report.time_ns,
        "overhead": report.time_ns / vanilla.time_ns - 1,
        "crossings": report.stats.crossings(),
        "undos": report.stats.undos,
        "timeouts": report.stats.suspend_timeouts,
        "violations": len(report.violations),
        "ars": inter_pp.num_ars,
    }
    data["interprocedural"] = entry
    data["trap_after"]["ars"] = pp.num_ars
    table.add_row(
        "interprocedural annotator (%d ARs vs %d)"
        % (inter_pp.num_ars, pp.num_ars),
        "%.1f%%" % (entry["overhead"] * 100),
        entry["crossings"], entry["undos"], entry["timeouts"],
        entry["violations"],
    )
    return AblationResult(table, data)
