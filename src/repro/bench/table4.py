"""Table 4: kernel domain crossings per second.

Paper anchor: the optimizations reduce the number of kernel entries by an
average of 41%; system calls account for over 99.9% of entries; TPC-W has
the highest crossing rate.
"""

from repro.bench.render import Table
from repro.bench.suite import run_suite
from repro.core.config import Mode, OptLevel
from repro.workloads.catalog import APP_NAMES

#: paper values, thousands of crossings per second: base / syncvars
#: (reduction) / optimized (reduction)
PAPER = {
    "NSS": (1403, 1183, 821),
    "VLC": (730, 629, 492),
    "Webstone": (1114, 925, 608),
    "TPC-W": (2359, 1890, 1220),
    "SPEC OMP": (1315, 1143, 788),
}


class Table4Result:
    def __init__(self, suite, table, rates):
        self.suite = suite
        self.table = table
        self.rows = table.rows
        self.rates = rates  # app -> {opt: crossings/s}

    def render(self):
        return self.table.render()

    def reduction(self, app, opt):
        base = self.rates[app][OptLevel.BASE]
        return 1.0 - self.rates[app][opt] / base if base else 0.0

    def average_optimized_reduction(self):
        vals = [self.reduction(a, OptLevel.OPTIMIZED) for a in self.rates]
        return sum(vals) / len(vals)

    def check_shape(self):
        problems = []
        for app, rates in self.rates.items():
            if not (rates[OptLevel.OPTIMIZED] < rates[OptLevel.SYNCVARS]
                    <= rates[OptLevel.BASE] * 1.01):
                problems.append("%s: crossing rates not decreasing" % app)
        top = max(self.rates, key=lambda a: self.rates[a][OptLevel.BASE])
        if top != "TPC-W":
            problems.append("highest crossing rate is %s, not TPC-W" % top)
        return problems


def generate(scale=0.6, seed=3):
    suite = run_suite(scale=scale, seed=seed)
    table = Table(
        "Table 4: kernel domain crossings (thousands per simulated second)",
        ["Application", "Base", "SyncVars", "Optimized",
         "Paper (base/sync/opt, k/s)"],
        note="syscall share of entries and reduction percentages shown "
             "inline; paper average reduction is 41%",
    )
    rates = {}
    for name in APP_NAMES:
        app = suite[name]
        per = {}
        for opt in (OptLevel.BASE, OptLevel.SYNCVARS, OptLevel.OPTIMIZED):
            report = app.report(opt, Mode.PREVENTION)
            per[opt] = report.crossings_per_second()
        rates[name] = per
        base = per[OptLevel.BASE]
        table.add_row(
            name,
            "%.0fk" % (base / 1e3),
            "%.0fk (%d%%)" % (per[OptLevel.SYNCVARS] / 1e3,
                              round(100 * (1 - per[OptLevel.SYNCVARS] / base))),
            "%.0fk (%d%%)" % (per[OptLevel.OPTIMIZED] / 1e3,
                              round(100 * (1 - per[OptLevel.OPTIMIZED] / base))),
            "%d / %d / %d" % PAPER[name],
        )
    result = Table4Result(suite, table, rates)
    table.add_row("avg reduction", "", "",
                  "%.0f%%" % (result.average_optimized_reduction() * 100),
                  "41%")
    return result
