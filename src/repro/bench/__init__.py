"""Benchmark harness: regenerates every table and figure of the paper.

Each ``tableN``/``figure7`` module exposes a ``generate(...)`` function
returning a result object with ``rows`` and ``render()``; the
``benchmarks/`` pytest suite drives them and checks the qualitative shape
against the paper (who wins, by roughly what factor, where crossovers
fall). Absolute numbers differ — see EXPERIMENTS.md for the scale
mapping and calibration notes.
"""

from repro.bench.scale import SCALE, bench_config, scaled_times
from repro.bench.render import Table

__all__ = ["SCALE", "Table", "bench_config", "scaled_times"]
