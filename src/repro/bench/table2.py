"""Table 2: applications and workloads."""

from repro.bench.render import Table
from repro.workloads.catalog import APP_NAMES, PAPER_WORKLOADS, workload_suite


def generate(scale=0.6):
    table = Table(
        "Table 2: applications and workloads",
        ["Application", "Paper workload", "Model", "Threads"],
    )
    suite = {w.name: w for w in workload_suite(scale=scale)}
    for name in APP_NAMES:
        w = suite[name]
        table.add_row(name, PAPER_WORKLOADS[name], w.description, w.threads)
    return table
