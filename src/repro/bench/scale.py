"""Time scaling between the paper's testbed and the simulation.

The paper's runs last 500-5000 wall-clock seconds; simulating that
instruction count in Python is infeasible, so benchmark runs last
500-5000 *microseconds* of simulated time — a uniform factor of ~10^6 on
run length, i.e. SCALE=1000 on every OS-level time constant relative to
the millisecond-scale constants the paper uses (10 ms suspension timeout
-> 10 µs, 20/50 ms bug-finding pause -> 20/50 µs, whitelist re-read
interval likewise). Because every time constant shrinks together,
ratios — overhead percentages, crossover orderings, relative detection
times — are preserved.
"""

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.machine.costs import CostModel

#: divisor applied to the paper's millisecond-scale OS time constants
SCALE = 1000

MS = 1_000_000


def bench_config(mode=Mode.PREVENTION, opt=OptLevel.OPTIMIZED,
                 pause_ms=20, **overrides):
    """A KivatiConfig with all time constants scaled for benchmarking."""
    kwargs = dict(
        mode=mode,
        opt=opt,
        pause_ns=pause_ms * MS // SCALE,
        suspend_timeout_ns=10 * MS // SCALE,
        whitelist_reread_ns=500 * MS // SCALE,
        pause_probability=0.02,
    )
    kwargs.update(overrides)
    return KivatiConfig(**kwargs)


def corpus_costs():
    """Cost model for the Table 6 bug-detection campaigns: frequent timer
    interrupts keep the cross-core sync wait (which stretches every armed
    window) near the instruction scale, so the engineered race-window
    widths of the corpus kernels dominate detection probability."""
    return CostModel(timer_tick=100, timer_tick_cost=3, quantum=4_000)


def corpus_config(mode=Mode.PREVENTION, pause_ms=20, **overrides):
    """Configuration for bug-detection campaigns: one core per thread so
    wakeups are immediate and armed windows stay near their code width."""
    overrides.setdefault("costs", corpus_costs())
    overrides.setdefault("num_cores", 4)
    overrides.setdefault("pause_probability", 0.25)
    return bench_config(mode=mode, pause_ms=pause_ms, **overrides)


def scaled_times(ns):
    """Render a simulated duration in 'paper-equivalent' units: 1 µs of
    simulation corresponds to ~1 s on the paper's testbed."""
    seconds = ns / 1e3  # ns -> paper-equivalent seconds
    return "%d:%02d" % (int(seconds) // 60, int(seconds) % 60)
