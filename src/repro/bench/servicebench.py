"""Sustained-traffic benchmark for the detection service.

Writes ``BENCH_service.json`` (schema ``kivati-servicebench/v1``) — the
"millions of users" story made measurable, honestly, on whatever host
runs it:

- **open-loop Poisson swarm** — request arrival times are drawn from a
  seeded exponential distribution at several target rates and submitted
  on schedule *regardless of completions* (open loop: a slow service
  cannot slow its own offered load). Reported latency is completion
  minus *intended* arrival, so queueing delay counts.
- **warm vs cold** — p50 per-request latency through the warm pool
  versus a cold spawn (fresh interpreter + imports + compile per
  request, always measured with the ``spawn`` start method — that is
  what "no serving story" costs). The warm pool must win by >= 5x.
- **determinism gate (unconditional)** — the 5-app suite submitted
  through the service must be digest-equal to the serial inline
  reference; concurrency and recovery change wall-clock only, never
  answers.
- **chaos drill** — seeded crash drills kill workers mid-request and a
  poison job kills every worker that touches it: zero lost requests
  (every submission answered), every kill and retry in the service log,
  the poison job rejected with a structured error after bounded
  retries, and the drilled requests' results digest-equal to the
  undrilled reference.
- **drain** — the run ends by draining the daemon; a hung drain fails
  the artifact.
"""

import json
import os
import random
import threading
import time

from repro.bench.schema import check_schema
from repro.bench.fleetbench import host_info
from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.core.config import Mode
from repro.fleet.jobs import JobSpec, app_run_jobs, digest_of
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor
from repro.pressure.policy import PressurePolicy
from repro.service.client import ServiceClient
from repro.service.daemon import KivatiDaemon, ServicePolicy

SCHEMA = "kivati-servicebench/v1"
DEFAULT_RATES = (4.0, 8.0, 16.0)

#: Micro request used for the latency swarm: two lock-guarded atomic
#: regions, enough journal frames for mid-request crash drills, runs in
#: ~10ms — so the swarm measures the *service*, not one big simulation.
MICRO_SOURCE = """\
int counter = 0;
int peak = 0;
int m = 0;

void bump() {
    lock(&m);
    counter = counter + 1;
    if (counter > peak) {
        peak = counter;
    }
    unlock(&m);
}

void worker(int iters) {
    int i = 0;
    while (i < iters) {
        bump();
        i = i + 1;
    }
}

void main() {
    spawn worker(12);
    spawn worker(12);
    join();
    output(counter);
}
"""


def micro_spec(config, job_id, seed):
    return JobSpec.for_config(job_id, "run", MICRO_SOURCE, config,
                              seed=seed, params={"workload": "micro"})


def response_digest(response):
    """Scheduling-independent digest of one service response, matching
    :meth:`repro.fleet.jobs.JobResult.digest` field-for-field."""
    result = response["result"]
    return digest_of({"job_id": result["job_id"], "kind": result["kind"],
                      "ok": result["ok"], "payload": result["payload"]})


def percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


# ----------------------------------------------------------------------
# cold baseline
# ----------------------------------------------------------------------

def _cold_entry(spec_dict, result_queue):
    """Spawn-safe cold executor: everything — imports included — is paid
    inside this fresh process."""
    from repro.fleet.worker import execute_job

    result_queue.put(execute_job(spec_dict))


def measure_cold(spec_dicts):
    """Per-request latency of one fresh ``spawn`` process per request —
    the no-daemon baseline the warm pool is judged against."""
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    latencies = []
    for spec_dict in spec_dicts:
        result_queue = ctx.Queue()
        started = time.perf_counter()
        process = ctx.Process(target=_cold_entry,
                              args=(spec_dict, result_queue))
        process.start()
        result = result_queue.get()
        latencies.append(time.perf_counter() - started)
        process.join(timeout=10.0)
        assert result["ok"], "cold run failed: %s" % result["error"]
    return latencies


# ----------------------------------------------------------------------
# open-loop swarm
# ----------------------------------------------------------------------

def run_swarm(socket_path, specs, rate_rps, seed, deadline_s=60.0):
    """Submit ``specs`` open-loop at ``rate_rps`` (Poisson arrivals);
    returns per-request records (every submission produces exactly one)."""
    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    for _ in specs:
        t += rng.expovariate(rate_rps)
        arrivals.append(t)
    start = time.perf_counter() + 0.05
    records = [None] * len(specs)

    def submit_one(i):
        target = start + arrivals[i]
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            with ServiceClient(socket_path, timeout=deadline_s + 15.0) \
                    as client:
                response = client.submit(specs[i], deadline_s=deadline_s,
                                         request_id="swarm-%d" % i)
        except Exception as exc:  # a lost request would land here
            response = {"ok": False,
                        "error": {"kind": "lost", "message": str(exc)}}
        records[i] = {"response": response,
                      "latency_s": time.perf_counter() - target}

    threads = [threading.Thread(target=submit_one, args=(i,), daemon=True)
               for i in range(len(specs))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return records, start


# ----------------------------------------------------------------------
# the benchmark
# ----------------------------------------------------------------------

def _inline_digests(specs):
    # journaling stays ON: the payload's journal_frames stat is part of
    # the digest, and service workers journal every run
    supervisor = FleetSupervisor(
        workers=0, policy=FleetPolicy(workers=1, verify=False))
    result = supervisor.run_jobs([s.without_crash_drill() for s in specs])
    assert result.ok, "inline reference failed"
    return sorted(r.digest() for r in result.results.values())


def generate(workers=2, rates=DEFAULT_RATES, requests_per_rate=30,
             warm_samples=15, cold_samples=3, scale=0.05, seed=7,
             start_method="spawn", verify=True, smoke=False):
    """Run the full benchmark; returns the artifact dict."""
    if smoke:
        requests_per_rate = min(requests_per_rate, 8)
        warm_samples = min(warm_samples, 6)
    # never fewer than 3 cold spawns: the cold baseline is a median, and
    # a median needs 3 samples before a single slow (or fast) fork stops
    # deciding the warm-pool speedup gate outright
    cold_samples = max(min(cold_samples, 3) if smoke else cold_samples, 3)
    if len(rates) < 3:
        raise ValueError("need >= 3 arrival rates for the artifact")
    config = bench_config(mode=Mode.PREVENTION)
    suite_specs = app_run_jobs(config, seeds=(3,), scale=scale,
                               prefix="svc")
    warm_sources = [MICRO_SOURCE] + [s.source for s in suite_specs]

    import tempfile

    socket_path = os.path.join(tempfile.mkdtemp(prefix="kivati-svcbench-"),
                               "kivati.sock")
    policy = ServicePolicy(
        workers=workers, start_method=start_method, verify=verify,
        warm_sources=warm_sources, retry_backoff_s=0.02,
        default_deadline_s=120.0, poll_s=0.005,
        pressure=PressurePolicy(suspended_watermark=2))
    daemon = KivatiDaemon(socket_path, policy)
    daemon.start()
    try:
        payload = _generate_against(daemon, socket_path, config, rates,
                                    requests_per_rate, warm_samples,
                                    cold_samples, suite_specs, seed)
    finally:
        daemon.initiate_drain("servicebench done")
        drained = daemon.wait_drained(timeout=60.0)
    payload["drain"] = {"ok": bool(drained),
                        "socket_removed": not os.path.exists(socket_path)}
    payload["workers"] = workers
    payload["start_method"] = start_method
    payload["verify"] = verify
    payload["scale"] = scale
    payload["seed"] = seed
    payload["host"] = host_info()
    payload["schema"] = SCHEMA
    payload["stats"] = daemon.stats.as_dict()
    return payload


def _generate_against(daemon, socket_path, config, rates,
                      requests_per_rate, warm_samples, cold_samples,
                      suite_specs, seed):
    # --- warm vs cold ------------------------------------------------
    warm_latencies = []
    with ServiceClient(socket_path) as client:
        # one un-timed request absorbs any residual first-touch cost
        client.submit(micro_spec(config, "wc-prime", 1))
        for i in range(warm_samples):
            spec = micro_spec(config, "wc-warm-%d" % i, 100 + i)
            started = time.perf_counter()
            response = client.submit(spec)
            assert response["ok"], response
            warm_latencies.append(time.perf_counter() - started)
            # pacing gap: let the verifier retire this sample's
            # monitoring debt so the next sample measures unloaded
            # request latency, not contention with our own monitoring
            # (loaded behavior is the rate sweep's job)
            time.sleep(0.08)
    cold_latencies = measure_cold(
        [micro_spec(config, "wc-cold-%d" % i, 100 + i).as_dict()
         for i in range(cold_samples)])
    warm_p50 = percentile(warm_latencies, 0.5)
    cold_p50 = percentile(cold_latencies, 0.5)
    warm_cold = {
        "warm_samples": len(warm_latencies),
        "cold_samples": len(cold_latencies),
        "warm_p50_ms": round(warm_p50 * 1000, 3),
        "cold_p50_ms": round(cold_p50 * 1000, 3),
        "speedup_p50": round(cold_p50 / warm_p50, 2) if warm_p50 else None,
    }

    # --- open-loop rate sweep ----------------------------------------
    rate_entries = []
    for rate in rates:
        specs = [micro_spec(config, "r%g-%d" % (rate, i), 1000 + i)
                 for i in range(requests_per_rate)]
        before = daemon.stats.as_dict()
        records, started = run_swarm(socket_path, specs, rate,
                                     seed=int(seed * 1000 + rate))
        after = daemon.stats.as_dict()
        answered = [r for r in records if r["response"].get("ok")]
        latencies = [r["latency_s"] for r in records]
        span = max(r["latency_s"] for r in records) + max(
            0.0, (len(records) - 1) / rate)
        digests = sorted(response_digest(r["response"]) for r in answered)
        rate_entries.append({
            "rate_rps": rate,
            "requests": len(records),
            "answered": len([r for r in records
                             if r["response"] is not None]),
            "completed": len(answered),
            "achieved_rps": round(len(answered) / span, 3) if span else 0.0,
            "p50_ms": round(percentile(latencies, 0.5) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
            "mean_ms": round(sum(latencies) / len(latencies) * 1000, 3),
            "max_ms": round(max(latencies) * 1000, 3),
            "verifications": (after["verifications"]
                              - before["verifications"]),
            "verifications_shed": (after["verifications_shed"]
                                   - before["verifications_shed"]),
            "rejected_overload": (after["requests_rejected_overload"]
                                  - before["requests_rejected_overload"]),
            "digest_ok": digests == _inline_digests(specs),
        })

    # --- determinism gate over the 5-app suite -----------------------
    service_digests = []
    with ServiceClient(socket_path, timeout=300.0) as client:
        for spec in suite_specs:
            response = client.submit(spec, deadline_s=120.0)
            assert response["ok"], response
            service_digests.append(response_digest(response))
    determinism = {
        "suite_jobs": len(suite_specs),
        "service_digest": digest_of(sorted(service_digests)),
        "serial_digest": digest_of(_inline_digests(suite_specs)),
    }
    determinism["ok"] = (determinism["service_digest"]
                         == determinism["serial_digest"])

    # --- chaos drill -------------------------------------------------
    chaos = _chaos_drill(daemon, socket_path, config, seed)

    return {"warm_cold": warm_cold, "rates": rate_entries,
            "determinism": determinism, "chaos": chaos}


def _chaos_drill(daemon, socket_path, config, seed, n_requests=8,
                 n_kills=3):
    """Seeded worker kills mid-request plus one poison job, pushed
    through the service as a swarm; see module docstring for the gates."""
    rng = random.Random(seed + 17)
    specs = [micro_spec(config, "chaos-%d" % i, 2000 + i)
             for i in range(n_requests)]
    drilled = sorted(rng.sample(range(n_requests), n_kills))
    for i in drilled:
        specs[i].params["crash"] = {"at_frame": rng.randrange(2, 6),
                                    "torn": 1}
    poison = micro_spec(config, "chaos-poison", 3000)
    poison.params["poison"] = True
    events_before = len(daemon.events)
    stats_before = daemon.stats.as_dict()
    records, _ = run_swarm(socket_path, specs + [poison], rate_rps=20.0,
                           seed=seed + 18)
    stats_after = daemon.stats.as_dict()
    events = daemon.events[events_before:]
    answered = [r for r in records if r["response"] is not None]
    poison_resp = records[-1]["response"]
    poison_rejected = (not poison_resp.get("ok")
                       and poison_resp.get("error", {}).get("kind")
                       == "poison")
    ok_records = records[:n_requests]
    digests = sorted(response_digest(r["response"]) for r in ok_records
                     if r["response"].get("ok"))
    retries = [e for e in events if e["kind"] == "retry"]
    recoveries = [e for e in events if e["kind"] == "recovery"]
    kills = stats_after["workers_crashed"] - stats_before["workers_crashed"]
    return {
        "requests": len(records),
        "answered": len(answered),
        "lost": len(records) - len(answered),
        "drilled": len(drilled),
        "kills": kills,
        "retries": len(retries),
        "recoveries": len(recoveries),
        # every worker kill produced a journaled recovery record and
        # every re-dispatch a journaled retry record
        "retries_journaled": (len(recoveries) == kills
                              and len(retries) >= len(drilled)),
        "poison_rejected": poison_rejected,
        "frames_salvaged": (stats_after["frames_salvaged"]
                            - stats_before["frames_salvaged"]),
        "completed": sum(1 for r in ok_records if r["response"].get("ok")),
        "digest_ok": digests == _inline_digests(specs),
    }


# ----------------------------------------------------------------------
# validation / rendering / artifact
# ----------------------------------------------------------------------

#: warm-pool floor on hosts with a single CPU, where the warm request,
#: the verifier thread and the benchmark harness all contend for one
#: core and warm p50 inflates by host-scheduler noise
RELAXED_MIN_SPEEDUP = 2.0


def validate(payload, min_speedup=5.0, require_speedup=False):
    """Schema/invariant problems (empty list = valid).

    Correctness gates (lost requests, digests, poison, drain) are
    unconditional.  The warm-pool >=``min_speedup`` gate mirrors the
    fleetbench pattern: it applies in full when the recording host had
    >=2 CPUs (or ``require_speedup`` forces it); a 1-CPU host — where
    warm latency is dominated by contention with the benchmark itself —
    is held to :data:`RELAXED_MIN_SPEEDUP` instead, so the gate tests
    the serving story, not the host's timing margin."""
    problems = check_schema(payload, SCHEMA,
                            required=("host", "workers", "rates",
                                      "warm_cold", "determinism",
                                      "chaos", "drain", "stats"))
    if not isinstance(payload, dict):
        return problems
    rates = payload.get("rates") or []
    if len(rates) < 3:
        problems.append("need >= 3 arrival rates, got %d" % len(rates))
    for entry in rates:
        for key in ("rate_rps", "requests", "answered", "achieved_rps",
                    "p50_ms", "p99_ms", "digest_ok"):
            if key not in entry:
                problems.append("rate entry missing %r" % key)
        if entry.get("answered") != entry.get("requests"):
            problems.append("rate %s: %s answered of %s submitted (lost?)"
                            % (entry.get("rate_rps"), entry.get("answered"),
                               entry.get("requests")))
        if not entry.get("digest_ok"):
            problems.append("rate %s: digests differ from inline reference"
                            % entry.get("rate_rps"))
    warm_cold = payload.get("warm_cold") or {}
    speedup = warm_cold.get("speedup_p50") or 0
    cpus = (payload.get("host") or {}).get("cpu_count", 1)
    want = (min_speedup if require_speedup or cpus >= 2
            else min(min_speedup, RELAXED_MIN_SPEEDUP))
    if speedup < want:
        problems.append("warm pool p50 speedup %.2fx < %.1fx (host cpus=%d)"
                        % (speedup, want, cpus))
    determinism = payload.get("determinism") or {}
    if not determinism.get("ok"):
        problems.append("service suite digest != serial reference")
    chaos = payload.get("chaos") or {}
    if chaos.get("lost", 1) != 0:
        problems.append("chaos drill lost %s request(s)" % chaos.get("lost"))
    if not chaos.get("poison_rejected"):
        problems.append("poison job was not rejected with a structured "
                        "error")
    if not chaos.get("retries_journaled"):
        problems.append("chaos kills/retries not fully journaled")
    if not chaos.get("digest_ok"):
        problems.append("chaos results differ from undrilled reference")
    if not (payload.get("drain") or {}).get("ok"):
        problems.append("drain did not complete")
    return problems


def render(payload):
    table = Table(
        "Service sustained traffic: open-loop Poisson swarm "
        "(%d warm worker(s), host cpus=%d)"
        % (payload["workers"], payload["host"]["cpu_count"]),
        ["rate rps", "requests", "achieved rps", "p50 ms", "p99 ms",
         "verify", "shed", "digest ok"],
        note="latency is completion minus intended arrival (queueing "
             "included); verification sheds before any request is "
             "rejected; digests equal the serial inline reference",
    )
    for entry in payload["rates"]:
        table.add_row(
            "%g" % entry["rate_rps"], entry["requests"],
            "%.2f" % entry["achieved_rps"], "%.1f" % entry["p50_ms"],
            "%.1f" % entry["p99_ms"], entry["verifications"],
            entry["verifications_shed"],
            "yes" if entry["digest_ok"] else "NO")
    lines = [table.render()]
    warm_cold = payload["warm_cold"]
    lines.append(
        "warm pool p50 %.1f ms vs cold spawn p50 %.1f ms -> %.1fx"
        % (warm_cold["warm_p50_ms"], warm_cold["cold_p50_ms"],
           warm_cold["speedup_p50"]))
    chaos = payload["chaos"]
    lines.append(
        "chaos: %d requests, %d kills, %d retries, %d lost, poison %s, "
        "digests %s"
        % (chaos["requests"], chaos["kills"], chaos["retries"],
           chaos["lost"],
           "rejected" if chaos["poison_rejected"] else "NOT REJECTED",
           "ok" if chaos["digest_ok"] else "DIFFER"))
    determinism = payload["determinism"]
    lines.append("determinism: 5-app suite via service %s serial reference"
                 % ("==" if determinism["ok"] else "!="))
    lines.append("drain: %s" % ("clean" if payload["drain"]["ok"]
                                else "HUNG"))
    return "\n".join(lines)


def write_payload(payload, path):
    tmp = "%s.tmp" % path
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


__all__ = ["DEFAULT_RATES", "MICRO_SOURCE", "SCHEMA", "generate",
           "measure_cold", "micro_spec", "percentile", "render",
           "response_digest", "run_swarm", "validate", "write_payload"]
