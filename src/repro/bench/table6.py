"""Table 6: time to detect and prevent each corpus bug.

Paper anchors: every bug is eventually detected and prevented; bugs are
always found faster in bug-finding mode; three bugs (Apache 21287, Apache
25520, NSS 169296) never manifest in prevention mode within the budget
("-"); increasing the pause from 20 ms to 50 ms makes detection *slower*
in over half the cases because the application itself slows down.
"""

from repro.bench.render import Table
from repro.bench.scale import corpus_config, scaled_times
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.workloads.bugs import BUGS
from repro.workloads.driver import detect_bug

#: the paper's Table 6 (minutes:seconds or '-')
PAPER = {
    "44402": ("66:59", "8:01", "8:23"),
    "21287": ("-", "13:30", "17:20"),
    "25520": ("-", "4:49", "7:33"),
    "341323": ("12:25", "2:59", "2:05"),
    "329072": ("1:40", "0:16", "0:17"),
    "225525": ("4:41", "2:21", "3:09"),
    "270689": ("2:00", "0:33", "0:56"),
    "169296": ("-", "10:19", "7:40"),
    "201134": ("52:45", "9:27", "7:33"),
    "19938": ("8:53", "1:50", "1:26"),
    "25306": ("11:15", "2:44", "3:20"),
}


class Table6Result:
    def __init__(self, table, outcomes):
        self.table = table
        self.rows = table.rows
        #: bug_id -> {"prev": DetectionResult, "bug20": ..., "bug50": ...}
        self.outcomes = outcomes

    def render(self):
        return self.table.render()

    def check_shape(self):
        problems = []
        common_attempts = [
            out["prev"].attempts
            for bug_id, out in self.outcomes.items()
            if not BUGS[bug_id].rare and out["prev"].detected
        ]
        typical = (sorted(common_attempts)[len(common_attempts) // 2]
                   if common_attempts else 1)
        for bug_id, out in self.outcomes.items():
            bug = BUGS[bug_id]
            if not (out["bug20"].detected or out["bug50"].detected):
                problems.append("%s: not found in bug-finding mode" % bug_id)
            if not bug.rare and not out["prev"].detected:
                # paper: every non-rare bug is eventually found in
                # prevention mode
                problems.append("%s: common bug not found in prevention "
                                "mode" % bug_id)
            if bug.rare and out["prev"].detected:
                # the paper's '-' rows: allow detection only if it took
                # far longer than the common bugs (the qualitative claim)
                if out["prev"].attempts < max(5, typical * 5):
                    problems.append(
                        "%s: rare bug found quickly in prevention mode"
                        % bug_id)
        slower_50 = sum(
            1 for out in self.outcomes.values()
            if out["bug50"].detected and out["bug20"].detected
            and out["bug50"].time_ns > out["bug20"].time_ns
        )
        if slower_50 < len(self.outcomes) // 4:
            problems.append(
                "50ms pause faster than 20ms almost everywhere "
                "(paper: slower in over half the cases)")
        return problems


def generate(max_attempts_prev=60, max_attempts_bug=30, seed_base=0):
    table = Table(
        "Table 6: bug detection time (paper-equivalent mm:ss; attempts in "
        "parentheses)",
        ["App", "Bug ID", "Prevention", "Bug (20ms)", "Bug (50ms)",
         "Paper (prev / 20ms / 50ms)"],
        note="'-' = not detected within the attempt budget, matching the "
             "paper's 90-minute cutoff",
    )
    outcomes = {}
    for bug_id, bug in BUGS.items():
        pp = ProtectedProgram(bug.source)
        prev = detect_bug(bug, corpus_config(Mode.PREVENTION),
                          max_attempts=max_attempts_prev,
                          seed_base=seed_base, protected=pp)
        bug20 = detect_bug(bug, corpus_config(Mode.BUG_FINDING, pause_ms=20),
                           max_attempts=max_attempts_bug,
                           seed_base=seed_base, protected=pp)
        bug50 = detect_bug(bug, corpus_config(Mode.BUG_FINDING, pause_ms=50),
                           max_attempts=max_attempts_bug,
                           seed_base=seed_base, protected=pp)
        outcomes[bug_id] = {"prev": prev, "bug20": bug20, "bug50": bug50}

        def cell(res):
            if not res.detected:
                return "-"
            return "%s (%d)" % (scaled_times(res.time_ns), res.attempts)

        table.add_row(bug.app, bug_id, cell(prev), cell(bug20), cell(bug50),
                      "%s / %s / %s" % PAPER[bug_id])
    return Table6Result(table, outcomes)
