"""Figure 7: false positives on successive training iterations.

Paper anchors: the number of new false positives decays towards zero over
training iterations; bug-finding mode flushes out more false positives
per iteration (and therefore converges in fewer iterations).
"""

from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.core.training import train
from repro.workloads.catalog import build_tpcw


class Figure7Result:
    def __init__(self, table, prevention, bug_finding):
        self.table = table
        self.rows = table.rows
        self.prevention = prevention
        self.bug_finding = bug_finding

    def render(self):
        return self.table.render()

    def series(self):
        return {
            "prevention": self.prevention.iterations,
            "bug-finding": self.bug_finding.iterations,
        }

    def check_shape(self):
        problems = []
        prev = self.prevention.iterations
        bug = self.bug_finding.iterations
        if sum(prev) == 0 and sum(bug) == 0:
            problems.append("training never observed any false positive")
        # decay: the last third of iterations should find fewer new FPs
        # than the first third
        third = max(1, len(prev) // 3)
        for name, series in (("prevention", prev), ("bug-finding", bug)):
            if sum(series[:third]) < sum(series[-third:]):
                problems.append("%s: false positives not decaying" % name)
        # the paper's claim: bug-finding removes more FPs per iteration —
        # i.e. it either finds at least as many in total or flushes them
        # out in fewer iterations
        def converged(series):
            for i in range(len(series)):
                if all(n == 0 for n in series[i:]):
                    return i
            return len(series)

        if sum(bug) < sum(prev) and converged(bug) >= converged(prev):
            problems.append("bug-finding neither found more FPs nor "
                            "converged faster (paper: it finds more per "
                            "iteration)")
        return problems


def generate(iterations=8, scale=0.5, seed_base=100):
    workload = build_tpcw(txns=max(2, int(40 * scale)))
    pp = ProtectedProgram(workload.source)
    prev = train(pp, bench_config(Mode.PREVENTION, opt=OptLevel.OPTIMIZED),
                 iterations=iterations, seed_base=seed_base)
    bug = train(pp,
                bench_config(Mode.BUG_FINDING, opt=OptLevel.OPTIMIZED,
                             pause_ms=20, pause_probability=0.3),
                iterations=iterations, seed_base=seed_base)

    table = Table(
        "Figure 7: new false positives per training iteration (TPC-W model)",
        ["Iteration"] + ["%d" % (i + 1) for i in range(iterations)]
        + ["total", "converged after"],
        note="paper: FP counts decay to zero; bug-finding mode removes "
             "more FPs per iteration",
    )
    for name, result in (("prevention", prev), ("bug-finding", bug)):
        conv = result.converged_after
        table.add_row(name, *result.iterations, sum(result.iterations),
                      conv if conv is not None else ">%d" % iterations)
    return Figure7Result(table, prev, bug)
