"""Table 3: run-time overhead across optimization levels and modes.

Paper anchors: geometric-mean overhead falls from 30% (base) to 19%
(optimized); bug-finding mode adds ~2.5% on top of prevention mode; the
null-syscall diagnostic shows crossings dominate; TPC-W is the worst
application.
"""

from repro.bench.render import Table
from repro.bench.suite import run_suite
from repro.core.config import Mode, OptLevel
from repro.workloads.catalog import APP_NAMES

#: paper per-app overheads, prevention/bug-finding, for the Base and
#: Optimized configurations (percent). The SyncVars and Null-syscall
#: columns of the published table did not survive text extraction intact;
#: the authoritative anchors are the geometric means (30% -> 19%) and the
#: +2.5% bug-finding delta.
PAPER = {
    "NSS": {"base": (32.4, 35.9), "optimized": (25.3, 28.4)},
    "VLC": {"base": (18.0, 19.9), "optimized": (14.3, 16.1)},
    "Webstone": {"base": (27.9, 29.1), "optimized": (22.6, 25.2)},
    "TPC-W": {"base": (33.7, 58.2), "optimized": (40.9, 46.3)},
    "SPEC OMP": {"base": (30.0, 33.5), "optimized": (24.6, 27.7)},
}


class Table3Result:
    def __init__(self, suite, table):
        self.suite = suite
        self.table = table
        self.rows = table.rows

    def render(self):
        return self.table.render()

    def overhead(self, app, opt, mode=Mode.PREVENTION):
        return self.suite[app].overhead(opt, mode)

    def check_shape(self):
        """The qualitative claims the paper's Table 3 supports."""
        problems = []
        for app in self.suite:
            base = app.overhead(OptLevel.BASE)
            sync = app.overhead(OptLevel.SYNCVARS)
            optd = app.overhead(OptLevel.OPTIMIZED)
            if not optd < base:
                problems.append("%s: optimized !< base" % app.name)
            if not sync <= base * 1.05:
                problems.append("%s: syncvars > base" % app.name)
            if optd < -0.02:
                # sleep-dominated pipelines (VLC) show ±1-2% scheduling
                # noise; anything beyond that is a real anomaly
                problems.append("%s: negative overhead" % app.name)
            bug = app.overhead(OptLevel.OPTIMIZED, Mode.BUG_FINDING)
            if bug < optd - 0.02:
                problems.append("%s: bug-finding cheaper than prevention"
                                % app.name)
        return problems


def generate(scale=0.6, seed=3):
    suite = run_suite(scale=scale, seed=seed)
    table = Table(
        "Table 3: performance overhead (prevention / bug-finding, % over "
        "vanilla)",
        ["Application", "Runtime", "Base", "Null syscall", "SyncVars",
         "Optimized", "Paper base", "Paper optimized"],
        note="runtime in simulated ms; paper columns are prevention/"
             "bug-finding percentages from the published table",
    )
    for name in APP_NAMES:
        app = suite[name]
        cells = [name, "%.3f" % (app.vanilla.time_ns / 1e6)]
        for opt in (OptLevel.BASE, OptLevel.NULL_SYSCALL, OptLevel.SYNCVARS,
                    OptLevel.OPTIMIZED):
            prev = app.overhead(opt, Mode.PREVENTION) * 100
            bug = app.overhead(opt, Mode.BUG_FINDING) * 100
            cells.append("%.1f / %.1f" % (prev, bug))
        paper = PAPER[name]
        cells.append("%.1f / %.1f" % paper["base"])
        cells.append("%.1f / %.1f" % paper["optimized"])
        table.add_row(*cells)
    gm_base = suite.geometric_mean_overhead(OptLevel.BASE) * 100
    gm_opt = suite.geometric_mean_overhead(OptLevel.OPTIMIZED) * 100
    am_base = suite.arithmetic_mean_overhead(OptLevel.BASE) * 100
    am_opt = suite.arithmetic_mean_overhead(OptLevel.OPTIMIZED) * 100
    table.add_row("geo. mean (arith.)", "",
                  "%.1f (%.1f)" % (gm_base, am_base), "", "",
                  "%.1f (%.1f)" % (gm_opt, am_opt), "30.0", "19.0")
    return Table3Result(suite, table)
