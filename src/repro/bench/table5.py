"""Table 5: request latency for the server workloads.

Paper anchor: Kivati increases per-request latency slightly; the effect
is larger in bug-finding mode (Webstone 6.7%/9.3%, TPC-W 11.2%/16.1%).
"""

from repro.bench.render import Table
from repro.bench.suite import run_suite
from repro.core.config import Mode, OptLevel

PAPER = {
    "Webstone": (492, 525, 6.7, 538, 9.3),
    "TPC-W": (1000, 1112, 11.2, 1161, 16.1),
}

SERVER_APPS = ("Webstone", "TPC-W")


class Table5Result:
    def __init__(self, table, latencies):
        self.table = table
        self.rows = table.rows
        self.latencies = latencies  # app -> (vanilla, prev, bug) in ns

    def render(self):
        return self.table.render()

    def check_shape(self):
        problems = []
        for app, (vanilla, prev, bug) in self.latencies.items():
            if not vanilla <= prev:
                problems.append("%s: prevention latency below vanilla" % app)
            if not prev <= bug * 1.02:
                problems.append("%s: bug-finding latency below prevention"
                                % app)
        return problems


def generate(scale=0.6, seed=3):
    suite = run_suite(scale=scale, seed=seed)
    table = Table(
        "Table 5: request latency (simulated µs per request)",
        ["Application", "Vanilla", "Prevention", "Bug-finding",
         "Paper (ms: vanilla/prev/bug)"],
        note="latency = wall time * workers / requests; overhead "
             "percentages relative to vanilla in parentheses",
    )
    latencies = {}
    for name in SERVER_APPS:
        app = suite[name]
        requests = app.workload.requests
        threads = app.workload.threads

        def lat(time_ns):
            return time_ns * threads / requests

        vanilla = lat(app.vanilla.time_ns)
        prev = lat(app.report(OptLevel.OPTIMIZED, Mode.PREVENTION).time_ns)
        bug = lat(app.report(OptLevel.OPTIMIZED, Mode.BUG_FINDING).time_ns)
        latencies[name] = (vanilla, prev, bug)
        p = PAPER[name]
        table.add_row(
            name,
            "%.2f" % (vanilla / 1e3),
            "%.2f (%.1f%%)" % (prev / 1e3, 100 * (prev / vanilla - 1)),
            "%.2f (%.1f%%)" % (bug / 1e3, 100 * (bug / vanilla - 1)),
            "%d / %d (%.1f%%) / %d (%.1f%%)" % p,
        )
    return Table5Result(table, latencies)
