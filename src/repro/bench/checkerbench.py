"""Streaming-checker benchmark (``BENCH_checker.json``).

Gates the four claims of :mod:`repro.journal.checker`:

- **scaling** — synthetic journals with verdicts known *by construction*
  are checked at sizes up to a million events; the checker must
  reproduce the expected multiset exactly at every size (soundness and
  completeness at scale), the log-log slope of time vs events must stay
  near 1 (near-linear, the Fast Atomicity Monitoring claim), and the
  streaming GC must hold peak retained state to O(live regions), not
  O(trace length);
- **speedup** — on a real recorded racy run, checking the journal must
  beat replay-based re-verification (which re-executes the program) by
  at least ``MIN_SPEEDUP``x, median of ``TIMING_RUNS`` runs each;
- **corruption** — the same recording is truncated at *every* frame
  boundary and bit-flipped at every frame boundary: zero exceptions, and
  coverage must grow monotonically with the truncation point (partial
  verdicts degrade gracefully, never cliff);
- **differential** — checker vs replay-based ``reverify`` vs the online
  detector over the full 11-bug corpus (three seeds each, plus the
  Table 6 bug-finding seed schedule for the rare bugs until every bug
  has a verdict) and a fleet of freshly generated fuzz programs: zero
  disagreements, 11/11 bugs witnessed.

The artifact (schema ``kivati-checkerbench/v1``) is committed as
``BENCH_checker.json``; ``validate`` is the CI gate.  Smoke mode shrinks
the sizes and program counts but keeps every gate on except the timing
ones (a smoke artifact proves the machinery, not the performance claim).
"""

import json
import math
import os
import tempfile
import time
import zlib
from random import Random

from repro.bench.schema import check_schema
from repro.bench.render import Table
from repro.bench.scale import corpus_config
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.journal.checker import check_journal
from repro.journal.events import JournalEvent, encode_event
from repro.journal.format import SEGMENT_MAGIC, _HEADER, JournalWriter
from repro.journal.postmortem import reverify
from repro.journal.replay import record_run, replay_run, verdict_multiset

SCHEMA = "kivati-checkerbench/v1"

#: synthetic trace sizes (events); the top size carries the paper claim
DEFAULT_SIZES = (10_000, 50_000, 200_000, 1_000_000)
SMOKE_SIZES = (2_000, 10_000)
#: least-squares log-log slope cap for "near-linear"
MAX_SLOPE = 1.35
#: required advantage over replay-based reverification
MIN_SPEEDUP = 5.0
TIMING_RUNS = 3
#: corpus differential: seed stride matches the detection campaign
CORPUS_SEEDS = (1, 2, 3)
DEFAULT_FUZZ_PROGRAMS = 200
SMOKE_FUZZ_PROGRAMS = 12

#: the speedup/corruption workload: a compact two-thread check-then-act
#: race whose iteration count scales the journal
RACY_TEMPLATE = """
int x = 0;

void careful() {
    int i = 0;
    while (i < %(iters)d) {
        int t = x;
        sleep(400);
        x = t + 1;
        i = i + 1;
    }
}

void racer() {
    int j = 0;
    while (j < %(iters)d) {
        sleep(150);
        x = x + 10;
        j = j + 1;
    }
}

void main() {
    spawn careful();
    spawn racer();
    join();
    output(x);
}
"""


# -- synthetic journals ------------------------------------------------------


def synthesize_journal(path, n_events, seed=0, threads=4, slots=4):
    """Write a synthetic ``n_events``-frame journal whose verdict
    multiset is known by construction; returns the expected multiset.

    The generator plays the kernel's own journaling protocol: slots are
    armed per window (bumping a per-slot generation), remote threads
    fire triggers against the armed epoch, windows close with an ``end``
    carrying the second access kind, and every expected offline verdict
    gets a matching journaled ``violation`` (so a correct checker
    reports a clean *pass*, not just the right multiset).  Frames are
    framed and CRCd exactly like :class:`JournalWriter` output but
    buffered in memory and written once — per-frame flushing would make
    million-event generation slower than the thing being measured.
    """
    rng = Random(seed)
    chunks = [SEGMENT_MAGIC]
    expected = []
    seq = 0
    now = 1000
    gens = {s: 0 for s in range(slots)}

    def emit(tid, kind, **payload):
        nonlocal seq, now
        now += rng.randrange(1, 50)
        payload_bytes = encode_event(
            JournalEvent(seq, now, tid, kind, payload))
        chunks.append(_HEADER.pack(len(payload_bytes),
                                   zlib.crc32(payload_bytes)))
        chunks.append(payload_bytes)
        seq += 1

    emit(-1, "run-start", synthetic=True, threads=threads, slots=slots)
    kinds = ("R", "W")
    # the generator applies the same Figure 2 predicate the checker
    # does, but over interleavings it chose itself — agreement at scale
    # is therefore evidence, not circularity
    from repro.analysis.watchtype import is_unserializable
    from repro.minic.ast import AccessKind

    def unserializable(first, remote, second):
        return is_unserializable(AccessKind(first), AccessKind(remote),
                                 AccessKind(second))

    # leave room for run-start, run-end and per-window overhead
    while seq < n_events - 2:
        tid = rng.randrange(threads)
        ar = rng.randrange(64)
        slot = rng.randrange(slots)
        gens[slot] += 1
        gen = gens[slot]
        first = rng.choice(kinds)
        emit(tid, "arm", slot=slot, gen=gen, addr=4096 + ar,
             size=4, read=True, write=True)
        emit(tid, "begin", ar=ar, slot=slot, gen=gen, addr=4096 + ar,
             first=first, var="g%d" % ar, joined=False)
        begin_time = now
        triggers = []
        for _ in range(rng.randrange(0, 4)):
            remote = rng.randrange(threads)
            kind = rng.choice(kinds)
            undone = rng.random() < 0.5
            emit(remote, "trigger", slot=slot, gen=gen, kinds=[kind],
                 pc=rng.randrange(1 << 16), undone=undone)
            triggers.append((remote, kind, now, undone))
        second = rng.choice(kinds)
        verdicts_here = []
        for remote, kind, t_time, undone in triggers:
            if remote == tid or t_time < begin_time:
                continue
            if unserializable(first, kind, second):
                verdicts_here.append(
                    (ar, tid, remote, first, kind, second, undone))
        emit(tid, "end", ar=ar, slot=slot, gen=gen, second=second,
             zombie=False, begin_time=begin_time,
             had_triggers=bool(triggers))
        for ar_v, tid_v, remote, first_v, kind, second_v, undone in \
                verdicts_here:
            emit(tid_v, "violation", ar=ar_v, var="g%d" % ar_v,
                 addr=4096 + ar_v, remote_tid=remote, first=first_v,
                 remote=kind, second=second_v, prevented=undone)
        expected.extend(verdicts_here)
        if rng.random() < 0.5:
            emit(tid, "disarm", slot=slot, gen=gen, addr=4096 + ar)
    emit(-1, "run-end", synthetic=True)
    with open(path, "wb") as f:
        f.write(b"".join(chunks))
    return sorted(expected), seq


def scaling_series(sizes, seed=0, workdir=None):
    """Check synthetic journals at each size; returns (rows, slope)."""
    rows = []
    owndir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="kivati-checkerbench-")
    try:
        for size in sizes:
            path = os.path.join(workdir, "synthetic-%d.journal" % size)
            expected, written = synthesize_journal(path, size, seed=seed)
            start = time.perf_counter()
            result = check_journal(path)
            elapsed = time.perf_counter() - start
            rows.append({
                "events": written,
                "bytes": os.path.getsize(path),
                "seconds": elapsed,
                "events_per_second": written / elapsed if elapsed else 0.0,
                "verdicts": len(result.verdicts),
                "expected_verdicts": len(expected),
                "sound": result.verdicts == expected,
                "status": result.status,
                "peak_live_regions": result.stats.live_regions_peak,
                "peak_epochs": result.stats.live_epochs_peak,
                "peak_retained_triggers":
                    result.stats.retained_triggers_peak,
            })
            os.unlink(path)
    finally:
        if owndir:
            try:
                os.rmdir(workdir)
            except OSError:
                pass
    slope = None
    if len(rows) >= 2:
        xs = [math.log(r["events"]) for r in rows]
        ys = [math.log(max(r["seconds"], 1e-9)) for r in rows]
        n = len(xs)
        mx, my = sum(xs) / n, sum(ys) / n
        denom = sum((x - mx) ** 2 for x in xs)
        slope = (sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom
                 if denom else 0.0)
    return rows, slope


# -- speedup vs replay-based reverification ---------------------------------


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def speedup_section(iters=60, seed=0, runs=TIMING_RUNS):
    """Time ``check_journal`` vs ``replay_run`` on one real recording."""
    program = ProtectedProgram(RACY_TEMPLATE % {"iters": iters})
    workdir = tempfile.mkdtemp(prefix="kivati-checkerbench-")
    path = os.path.join(workdir, "racy.journal")
    record_run(program, corpus_config(Mode.PREVENTION), seed=seed,
               writer=JournalWriter(path))
    check_times, replay_times = [], []
    verdicts = online = None
    for _ in range(runs):
        start = time.perf_counter()
        result = check_journal(path)
        check_times.append(time.perf_counter() - start)
        verdicts = len(result.verdicts)
        agrees = result.agrees
    for _ in range(runs):
        start = time.perf_counter()
        replay = replay_run(program, path)
        replay_times.append(time.perf_counter() - start)
        online = replay.ok and replay.verdicts_match
    check_s = _median(check_times)
    replay_s = _median(replay_times)
    return {
        "iters": iters,
        "seed": seed,
        "runs": runs,
        "journal_bytes": os.path.getsize(path),
        "check_seconds": check_s,
        "replay_seconds": replay_s,
        "speedup": replay_s / check_s if check_s else 0.0,
        "checker_agrees": bool(agrees),
        "checker_verdicts": verdicts,
        "replay_ok": bool(online),
    }


# -- corruption sweep --------------------------------------------------------


def _frame_boundaries(data):
    """Byte offsets of every frame boundary in an intact segment."""
    offsets = [len(SEGMENT_MAGIC)]
    offset = len(SEGMENT_MAGIC)
    while offset + _HEADER.size <= len(data):
        length, _crc = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size + length
        offsets.append(offset)
    return offsets


def corruption_sweep(iters=8, seed=0):
    """Truncate and bit-flip a real recording at every frame boundary.

    Gate: zero exceptions anywhere, coverage monotone non-decreasing in
    the truncation point, and nothing but the intact journal may claim
    completeness.
    """
    program = ProtectedProgram(RACY_TEMPLATE % {"iters": iters})
    workdir = tempfile.mkdtemp(prefix="kivati-checkerbench-")
    path = os.path.join(workdir, "racy.journal")
    record_run(program, corpus_config(Mode.PREVENTION), seed=seed,
               writer=JournalWriter(path))
    with open(path, "rb") as f:
        data = f.read()
    boundaries = _frame_boundaries(data)
    mutant = os.path.join(workdir, "mutant.journal")
    crashes = []
    coverages = []
    false_complete = 0
    for cut in boundaries:
        with open(mutant, "wb") as f:
            f.write(data[:cut])
        try:
            result = check_journal(mutant)
        except Exception as exc:  # the whole point: this must not happen
            crashes.append({"op": "truncate", "offset": cut,
                            "error": "%s: %s" % (type(exc).__name__, exc)})
            continue
        coverages.append(result.coverage)
        if result.complete and cut < len(data):
            false_complete += 1
    flip_checked = 0
    for boundary in boundaries:
        if boundary >= len(data):
            continue
        flipped = bytearray(data)
        flipped[boundary] ^= 0xFF
        with open(mutant, "wb") as f:
            f.write(bytes(flipped))
        flip_checked += 1
        try:
            result = check_journal(mutant)
        except Exception as exc:
            crashes.append({"op": "flip", "offset": boundary,
                            "error": "%s: %s" % (type(exc).__name__, exc)})
            continue
        if result.complete:
            false_complete += 1
    monotone = all(a <= b + 1e-12
                   for a, b in zip(coverages, coverages[1:]))
    return {
        "iters": iters,
        "seed": seed,
        "journal_bytes": len(data),
        "frame_boundaries": len(boundaries),
        "truncations": len(boundaries),
        "flips": flip_checked,
        "crashes": crashes,
        "coverage_monotone": monotone,
        "false_complete": false_complete,
        "final_coverage": coverages[-1] if coverages else None,
    }


# -- differential: checker vs reverify vs online -----------------------------


def _three_way(events):
    """(checker == reverify == online) over one event list."""
    post = reverify(events)
    from repro.journal.checker import check_events

    check = check_events(events)
    online = verdict_multiset(events)
    return (check.verdicts == post.offline and check.online == online
            and check.agrees == post.agrees), check, post


def corpus_differential(seeds=CORPUS_SEEDS, bug_ids=None, escalate=True,
                        max_attempts=30):
    """The 11-bug corpus, every seed: three evaluators, one story.

    The rare bugs (Table 6's '-' rows) do not manifest at arbitrary
    fixed seeds, so bugs still undetected after the fixed-seed pass are
    re-run on the Table 6 bug-finding schedule (seed = attempt * 7919,
    pause 20 ms then 50 ms) until the first verdict — every escalation
    run still goes through the three-way agreement check.
    """
    from repro.workloads.bugs import BUGS

    disagreements = []
    runs = 0
    detected = set()
    escalated = {}

    def one_run(bug_id, program, seed, pause_ms):
        nonlocal runs
        _, recorder = record_run(
            program, corpus_config(Mode.BUG_FINDING, pause_ms=pause_ms),
            seed=seed)
        runs += 1
        ok, check, post = _three_way(recorder.events)
        if check.verdicts:
            detected.add(bug_id)
        if not ok:
            disagreements.append({
                "bug": bug_id, "seed": seed,
                "checker": len(check.verdicts),
                "reverify": len(post.offline),
                "status": check.status,
            })

    all_bugs = sorted(bug_ids or BUGS)
    for bug_id in all_bugs:
        program = ProtectedProgram(BUGS[bug_id].source)
        for seed in seeds:
            one_run(bug_id, program, seed, pause_ms=20)
    if escalate:
        for bug_id in [b for b in all_bugs if b not in detected]:
            program = ProtectedProgram(BUGS[bug_id].source)
            extra = 0
            for pause_ms in (20, 50):
                for attempt in range(max_attempts):
                    one_run(bug_id, program, attempt * 7919, pause_ms)
                    extra += 1
                    if bug_id in detected:
                        break
                if bug_id in detected:
                    break
            escalated[bug_id] = extra
    return {
        "runs": runs,
        "bugs": len(all_bugs),
        "bugs_detected": len(detected),
        "escalated": escalated,
        "disagreements": disagreements,
    }


def fuzz_differential(n_programs, base_seed=0):
    """Freshly generated programs, one recording each, three evaluators."""
    from repro.fuzz.campaign import (CampaignSpec, fuzz_config,
                                     generate_programs)

    spec = CampaignSpec(n_programs=n_programs, base_seed=base_seed,
                        drill_every=0)
    disagreements = []
    checked = 0
    with_verdicts = 0
    for prog in generate_programs(spec):
        program = ProtectedProgram(prog.source)
        _, recorder = record_run(program, fuzz_config(prog.params.threads),
                                 seed=prog.run_seed)
        checked += 1
        ok, check, post = _three_way(recorder.events)
        if check.verdicts:
            with_verdicts += 1
        if not ok:
            disagreements.append({
                "program_id": prog.program_id, "run_seed": prog.run_seed,
                "checker": len(check.verdicts),
                "reverify": len(post.offline),
                "status": check.status,
            })
    return {
        "programs": checked,
        "programs_with_verdicts": with_verdicts,
        "disagreements": disagreements,
    }


# -- artifact ----------------------------------------------------------------


def generate(sizes=None, smoke=False, fuzz_programs=None, log=None):
    log = log or (lambda message: None)
    if sizes is None:
        sizes = SMOKE_SIZES if smoke else DEFAULT_SIZES
    if fuzz_programs is None:
        fuzz_programs = SMOKE_FUZZ_PROGRAMS if smoke else \
            DEFAULT_FUZZ_PROGRAMS
    corpus_seeds = CORPUS_SEEDS[:1] if smoke else CORPUS_SEEDS
    log("scaling: %s events" % (", ".join(str(s) for s in sizes)))
    rows, slope = scaling_series(sizes)
    log("scaling slope: %s" % (slope is not None and "%.3f" % slope))
    log("speedup: checker vs replay_run")
    speedup = speedup_section(iters=20 if smoke else 60)
    log("speedup: %.1fx" % speedup["speedup"])
    log("corruption sweep")
    corruption = corruption_sweep(iters=4 if smoke else 8)
    log("corruption: %d truncations + %d flips, %d crash(es)"
        % (corruption["truncations"], corruption["flips"],
           len(corruption["crashes"])))
    log("differential: corpus x%d seeds + %d fuzz programs"
        % (len(corpus_seeds), fuzz_programs))
    corpus = corpus_differential(seeds=corpus_seeds, escalate=not smoke)
    fuzz = fuzz_differential(fuzz_programs)
    return {
        "schema": SCHEMA,
        "smoke": bool(smoke),
        "scaling": {
            "sizes": list(sizes),
            "rows": rows,
            "slope": slope,
            "max_slope": MAX_SLOPE,
        },
        "speedup": speedup,
        "min_speedup": 0.0 if smoke else MIN_SPEEDUP,
        "corruption": corruption,
        "corpus": corpus,
        "fuzz": fuzz,
    }


def validate(payload):
    """Problems with a checkerbench artifact (empty list = valid).

    Timing gates (slope, speedup) are skipped for smoke artifacts; the
    correctness gates (soundness at every size, zero crashes, monotone
    coverage, zero differential disagreements) always apply.
    """
    problems = check_schema(payload, SCHEMA)
    if not isinstance(payload, dict):
        return problems
    smoke = bool(payload.get("smoke"))
    scaling = payload.get("scaling") or {}
    rows = scaling.get("rows") or []
    if not rows:
        problems.append("scaling rows missing")
    for row in rows:
        if not row.get("sound"):
            problems.append("checker unsound at %s events: %s != %s "
                            "expected verdicts"
                            % (row.get("events"), row.get("verdicts"),
                               row.get("expected_verdicts")))
        if row.get("status") != "pass":
            problems.append("synthetic journal at %s events: status %r"
                            % (row.get("events"), row.get("status")))
    if not smoke:
        if rows and max(r.get("events", 0) for r in rows) < 1_000_000:
            problems.append("largest scaling size below 1M events")
        slope = scaling.get("slope")
        cap = scaling.get("max_slope", MAX_SLOPE)
        if slope is None or slope > cap:
            problems.append("scaling slope %s exceeds %s (not near-linear)"
                            % (slope, cap))
        # streaming GC: peak retained state must not grow with the trace
        if len(rows) >= 2:
            first, last = rows[0], rows[-1]
            if (last.get("peak_retained_triggers", 0)
                    > 10 * max(first.get("peak_retained_triggers", 1), 1)):
                problems.append("retained-trigger peak grows with trace "
                                "length (GC leak): %s -> %s"
                                % (first.get("peak_retained_triggers"),
                                   last.get("peak_retained_triggers")))
    speedup = payload.get("speedup") or {}
    if not speedup.get("checker_agrees"):
        problems.append("checker disagreed on the speedup workload")
    want = payload.get("min_speedup", MIN_SPEEDUP)
    if want and speedup.get("speedup", 0.0) < want:
        problems.append("speedup %.2fx below required %.1fx"
                        % (speedup.get("speedup", 0.0), want))
    corruption = payload.get("corruption") or {}
    if corruption.get("crashes"):
        problems.append("corruption sweep crashed %d time(s): %s"
                        % (len(corruption["crashes"]),
                           corruption["crashes"][:3]))
    if not corruption.get("coverage_monotone"):
        problems.append("coverage not monotone under truncation")
    if corruption.get("false_complete"):
        problems.append("%d damaged journal(s) claimed completeness"
                        % corruption["false_complete"])
    corpus = payload.get("corpus") or {}
    if corpus.get("disagreements"):
        problems.append("corpus differential disagreements: %s"
                        % corpus["disagreements"])
    if not smoke and corpus.get("bugs_detected") != corpus.get("bugs"):
        problems.append("corpus recall: %s/%s bugs"
                        % (corpus.get("bugs_detected"), corpus.get("bugs")))
    fuzz = payload.get("fuzz") or {}
    if fuzz.get("disagreements"):
        problems.append("fuzz differential disagreements: %s"
                        % fuzz["disagreements"])
    if not smoke and fuzz.get("programs", 0) < DEFAULT_FUZZ_PROGRAMS:
        problems.append("fuzz differential covered %s programs, need >=%d"
                        % (fuzz.get("programs"), DEFAULT_FUZZ_PROGRAMS))
    return problems


def render(payload):
    scaling = payload["scaling"]
    speedup = payload["speedup"]
    corruption = payload["corruption"]
    table = Table(
        "Streaming checker: time vs trace length (slope %s, cap %s)"
        % (scaling["slope"] is not None
           and "%.3f" % scaling["slope"] or "-", scaling["max_slope"]),
        ["events", "MB", "seconds", "events/s", "verdicts", "peak regions",
         "peak triggers", "sound"],
        note="speedup vs replay-reverify: %.1fx (%.3fs vs %.3fs, median "
             "of %d); corruption: %d truncations + %d flips, %d crashes, "
             "coverage %s; differential: %d corpus runs + %d fuzz "
             "programs, %d disagreements"
             % (speedup["speedup"], speedup["check_seconds"],
                speedup["replay_seconds"], speedup["runs"],
                corruption["truncations"], corruption["flips"],
                len(corruption["crashes"]),
                "monotone" if corruption["coverage_monotone"]
                else "NOT MONOTONE",
                payload["corpus"]["runs"], payload["fuzz"]["programs"],
                len(payload["corpus"]["disagreements"])
                + len(payload["fuzz"]["disagreements"])),
    )
    for row in scaling["rows"]:
        table.add_row(
            row["events"], "%.1f" % (row["bytes"] / 1e6),
            "%.3f" % row["seconds"],
            "%d" % row["events_per_second"], row["verdicts"],
            row["peak_live_regions"], row["peak_retained_triggers"],
            "yes" if row["sound"] else "NO")
    return table.render()


def write_payload(payload, path):
    tmp = "%s.tmp" % path
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


__all__ = ["DEFAULT_SIZES", "MAX_SLOPE", "MIN_SPEEDUP", "SCHEMA",
           "corpus_differential", "corruption_sweep", "fuzz_differential",
           "generate", "render", "scaling_series", "speedup_section",
           "synthesize_journal", "validate", "write_payload"]
