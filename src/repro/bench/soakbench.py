"""Soak harness: the 5 app workloads at inflated thread counts, with
fault injection enabled, under the overload control plane (DESIGN.md
§10).

Not a paper table — the paper never asks what happens when a production
workload exhausts the 4 debug registers per core. The soak sweep runs
every application at a multiple of its paper thread count, injects a
mild multi-point fault schedule, and asserts the liveness contract of
the pressure plane:

- the run always completes (no permanent suspension, no deadlock);
- correctness is never shed (the workload's output validator holds);
- zero leaked slots at exit, and every leak the watchdog detected was
  reclaimed;
- the quarantine AIMD loop converges (every entry settles or releases);
- every arbiter decision left a journal record.

The pressure-vs-coverage table reports how detection coverage (fraction
of executed ARs that were actually monitored) degrades as the thread
multiplier grows — gracefully, not to zero.
"""

from repro.bench.render import Table
from repro.bench.scale import MS, SCALE, bench_config
from repro.core.session import ProtectedProgram
from repro.faults.plan import FaultPlan, FaultSpec
from repro.pressure import PressurePolicy
from repro.workloads.apps import (
    build_nss,
    build_specomp,
    build_tpcw,
    build_vlc,
    build_webstone,
)

DEFAULT_SEEDS = (0, 1)
DEFAULT_MULTIPLIERS = (1, 2, 4)

#: Synthetic slot-exhaustion workload: five "quiet" threads each hold a
#: long check-then-act AR on a distinct variable (5 concurrent
#: watchpoint demands > 4 registers), while ``hot_burst`` runs
#: check-then-act windows on ``hot`` that an un-annotated racer keeps
#: blasting. The hot thread bursts twice: the first burst runs while the
#: quiet threads are still asleep, so its ARs are monitored and build
#: violation history; the AR-free sleep between the bursts releases the
#: slot, the waking quiet flood takes every register, and the second
#: burst re-begins the *same static ARs* against a full house — the
#: arbiter preempts a zero-priority quiet slot for them. Quiet begins
#: during the flood exceed four concurrent demands and are denied.
SLOT_PRESSURE_SRC = """
int q0 = 0;
int q1 = 0;
int q2 = 0;
int q3 = 0;
int q4 = 0;
int hot = 0;

void quiet0() { sleep(15000); int i = 0; while (i < 5) { int t = q0; sleep(1200); q0 = t + 1; i = i + 1; } }
void quiet1() { sleep(15000); int i = 0; while (i < 5) { int t = q1; sleep(1200); q1 = t + 1; i = i + 1; } }
void quiet2() { sleep(15000); int i = 0; while (i < 5) { int t = q2; sleep(1200); q2 = t + 1; i = i + 1; } }
void quiet3() { sleep(15000); int i = 0; while (i < 5) { int t = q3; sleep(1200); q3 = t + 1; i = i + 1; } }
void quiet4() { sleep(15000); int i = 0; while (i < 5) { int t = q4; sleep(1200); q4 = t + 1; i = i + 1; } }

void blast(int v) {
    hot = v;
}

void hot_burst() {
    int i = 0;
    while (i < 5) {
        int t = hot;
        sleep(400);
        hot = t + 1;
        i = i + 1;
    }
}

void hot_thread() {
    hot_burst();
    sleep(9000);
    hot_burst();
}

void racer() {
    int j = 0;
    while (j < 50) {
        sleep(300);
        blast(100 + j);
        j = j + 1;
    }
}

void main() {
    spawn hot_thread();
    spawn racer();
    spawn quiet0();
    spawn quiet1();
    spawn quiet2();
    spawn quiet3();
    spawn quiet4();
    join();
    output(q0 + q1 + q2 + q3 + q4);
}
"""


def soak_policy(**overrides):
    """PressurePolicy with every *_ns threshold divided by SCALE, like
    every other OS time constant at bench scale."""
    kwargs = dict(
        # the natural wake-to-run latency at 4x oversubscription is
        # ~0.1-6 us of simulated time; shed only when the EMA sits an
        # order of magnitude above the spike ceiling
        latency_watermark_ns=50 * MS // SCALE,
        latency_ref_ns=2 * MS // SCALE,
        suspended_watermark=12,
        leak_age_ns=1 * MS // SCALE,
        leak_scan_ns=MS // (4 * SCALE),
        sample_max_n=16,
    )
    kwargs.update(overrides)
    return PressurePolicy(**kwargs)


def soak_fault_plan():
    """Mild multi-point schedule: enough injected chaos to drive the
    degradation planes without making completion itself improbable."""
    return FaultPlan("soak-mix", [
        FaultSpec("machine.trap.drop", probability=0.15),
        FaultSpec("kernel.crosscore.delay", probability=0.2),
        FaultSpec("kernel.wakeup.lost", probability=0.2, max_fires=6),
        FaultSpec("machine.timer.jitter", probability=0.2,
                  param={"jitter_ns": 2000}),
    ])


def soak_config(policy=None, faults=None, **overrides):
    """Bench-scaled config with the pressure plane on and faults
    injected (pass ``faults=None`` explicitly for a fault-free run)."""
    kwargs = dict(
        pressure=policy if policy is not None else soak_policy(),
        faults=faults,
        num_cores=4,
    )
    kwargs.update(overrides)
    return bench_config(**kwargs)


def build_soak_workloads(multiplier=4, scale=0.25):
    """The five apps with thread counts inflated ``multiplier``x over
    the paper's (Table 2) and per-thread work cut by ``scale`` so soak
    wall-clock stays bounded.

    VLC's decode/render pipeline is structurally three threads — there
    is no thread knob to multiply — so its pressure is inflated the
    other way: ``multiplier``x the frame volume through a ring buffer
    kept at the minimum depth, which maximizes contention on the ring
    cursors.
    """
    def s(n):
        return max(2, int(round(n * scale)))

    m = max(1, int(multiplier))
    return [
        build_nss(threads=4 * m, iters=s(25)),
        build_vlc(frames=s(70) * m, ring=2),
        build_webstone(threads=4 * m, requests=s(28)),
        build_tpcw(threads=4 * m, txns=s(40)),
        build_specomp(threads=4 * m, rounds=s(3)),
    ]


class SoakCase:
    """Outcome of one (workload, multiplier, seed) soak run."""

    __slots__ = ("name", "multiplier", "seed", "report", "problems")

    def __init__(self, name, multiplier, seed, report, problems):
        self.name = name
        self.multiplier = multiplier
        self.seed = seed
        self.report = report
        self.problems = problems

    @property
    def ok(self):
        return not self.problems

    @property
    def coverage(self):
        """Fraction of executed ARs that were monitored (1 - Table 8's
        missed fraction, with quarantine skips and admission sheds also
        counting against coverage)."""
        stats = self.report.stats
        denom = (stats.total_ars_executed() + stats.breaker_skips
                 + stats.quarantine_sampled_skips + stats.admission_sheds)
        if denom == 0:
            return 1.0
        return stats.monitored_ars / denom


def run_soak_case(program, workload, config, seed, multiplier=1):
    """One soak run + the liveness/accounting assertions. ``program``
    may be a pre-built ProtectedProgram for the workload's source."""
    from repro.journal.recorder import JournalRecorder

    journal = JournalRecorder()
    report = program.run(config.copy(seed=seed, journal=journal))
    problems = []
    result = report.result
    stats = report.stats

    if result.fault is not None:
        problems.append("machine fault: %s" % (result.fault,))
    if result.deadlocked:
        problems.append("deadlocked (permanent suspension)")
    if not workload.check_output(result.output):
        problems.append("output check failed: %r" % (result.output,))
    if stats.slots_leaked != stats.slots_reclaimed:
        problems.append("slot accounting: %d leaked != %d reclaimed"
                        % (stats.slots_leaked, stats.slots_reclaimed))
    if stats.slots_leaked_at_exit:
        problems.append("%d slots still leaked at exit"
                        % stats.slots_leaked_at_exit)
    if report.pressure is not None and not report.pressure.quarantine_converged:
        problems.append("quarantine did not converge: %s"
                        % report.pressure.describe())
    arbiter_events = sum(1 for e in journal.events if e.kind == "arbiter")
    if arbiter_events != stats.arbiter_preemptions + stats.arbiter_denials:
        problems.append("arbiter decisions unjournaled: %d events for %d"
                        % (arbiter_events,
                           stats.arbiter_preemptions + stats.arbiter_denials))
    return SoakCase(workload.name, multiplier, seed, report, problems)


class SoakBenchResult:
    def __init__(self, table, cases):
        self.table = table
        self.rows = table.rows
        self.cases = cases

    def render(self):
        return self.table.render()

    def check(self):
        """Invariant problems (empty list = the sweep passed)."""
        return ["%s x%d seed=%d: %s" % (c.name, c.multiplier, c.seed, p)
                for c in self.cases for p in c.problems]


def generate(seeds=DEFAULT_SEEDS, multipliers=DEFAULT_MULTIPLIERS,
             scale=0.25, policy=None, faults="default"):
    """Run the soak sweep; returns a :class:`SoakBenchResult` whose
    table is the pressure-vs-coverage table for EXPERIMENTS.md."""
    if faults == "default":
        faults = soak_fault_plan()
    cases = []
    for multiplier in multipliers:
        for workload in build_soak_workloads(multiplier=multiplier,
                                             scale=scale):
            program = ProtectedProgram(workload.source)
            config = soak_config(policy=policy, faults=faults)
            for seed in seeds:
                cases.append(run_soak_case(program, workload, config,
                                           seed, multiplier=multiplier))

    table = Table(
        "Soak sweep: pressure vs detection coverage "
        "(apps at inflated thread counts, faults injected)",
        ["app", "mult", "threads", "coverage%", "monitored", "missed",
         "sheds", "quar", "arb p/d", "leak r/l", "ok"],
        note="coverage = monitored ARs / (executed + skipped + shed); "
             "sheds = admission-control skips; quar = ARs quarantined; "
             "arb p/d = arbiter preemptions/denials; leak r/l = slots "
             "reclaimed/leaked by the watchdog; VLC inflates frame "
             "volume instead of threads (fixed 3-thread pipeline)",
    )
    # aggregate per (app, multiplier) over seeds
    keys = []
    for case in cases:
        key = (case.name, case.multiplier)
        if key not in keys:
            keys.append(key)
    for name, mult in keys:
        group = [c for c in cases
                 if c.name == name and c.multiplier == mult]
        stats = [c.report.stats for c in group]
        threads = group[0].report.result.threads
        coverage = sum(c.coverage for c in group) / len(group)
        table.add_row(
            name, "%dx" % mult, threads,
            "%.1f" % (100.0 * coverage),
            sum(s.monitored_ars for s in stats),
            sum(s.missed_ars for s in stats),
            sum(s.admission_sheds + s.quarantine_sampled_skips
                for s in stats),
            sum(s.quarantined_ars for s in stats),
            "%d/%d" % (sum(s.arbiter_preemptions for s in stats),
                       sum(s.arbiter_denials for s in stats)),
            "%d/%d" % (sum(s.slots_reclaimed for s in stats),
                       sum(s.slots_leaked for s in stats)),
            "yes" if all(c.ok for c in group) else "NO",
        )
    return SoakBenchResult(table, cases)


def replay_determinism_check(multiplier=2, seed=0, scale=0.2, policy=None,
                             workload_index=0):
    """Record one pressure+faults soak run, then replay it pinned to the
    journal. Every arbiter preemption, quarantine transition, admission
    shed and leak reclaim must reproduce frame-for-frame; returns
    ``(SoakCase, ReplayResult)``."""
    from repro.journal.replay import record_run, replay_run

    workload = build_soak_workloads(multiplier=multiplier,
                                    scale=scale)[workload_index]
    program = ProtectedProgram(workload.source)
    config = soak_config().copy(seed=seed) if policy is None \
        else soak_config(policy=policy).copy(seed=seed)
    report, recorder = record_run(program, config=config)
    case = SoakCase(workload.name, multiplier, seed, report, [])
    replay = replay_run(program, recorder)
    return case, replay


# ----------------------------------------------------------------------
# detection recall under pressure (acceptance: the 11-bug corpus)
# ----------------------------------------------------------------------

class RecallCase:
    """Detection outcome for one corpus bug under the pressure plane.

    ``outcome`` is ``"detected"``, ``"sampled"`` (not detected within
    the attempt budget, but the bug's AR sat in quarantine — sampled
    monitoring legitimately lowers per-window detection probability), or
    ``"missed"`` (not detected with no quarantine excuse — a recall
    regression).
    """

    __slots__ = ("bug_id", "outcome", "attempts", "quarantined_ars")

    def __init__(self, bug_id, outcome, attempts, quarantined_ars):
        self.bug_id = bug_id
        self.outcome = outcome
        self.attempts = attempts
        self.quarantined_ars = quarantined_ars


def corpus_recall(bug_ids=None, config=None, max_attempts=40, seed_base=0):
    """Run the detect-the-bug campaign (Table 6 protocol) with the
    pressure plane enabled; returns a list of :class:`RecallCase`."""
    from repro.bench.scale import corpus_config
    from repro.workloads.bugs.corpus import BUGS

    if bug_ids is None:
        bug_ids = tuple(BUGS)
    if config is None:
        config = corpus_config(pressure=soak_policy())
    out = []
    for bug_id in bug_ids:
        bug = BUGS[bug_id]
        program = ProtectedProgram(bug.source)
        detected = False
        attempts = 0
        victim_quarantined = set()
        for attempt in range(max_attempts):
            attempts = attempt + 1
            report = program.run(config, seed=seed_base + attempt * 7919)
            if report.pressure is not None:
                for entry in report.pressure.quarantine.entries.values():
                    info = report.ar_table.get(entry.ar_id)
                    if info is not None and info.var in bug.victim_vars:
                        victim_quarantined.add(entry.ar_id)
            if bug.detected_in(report):
                detected = True
                break
        if detected:
            outcome = "detected"
        elif victim_quarantined:
            outcome = "sampled"
        else:
            outcome = "missed"
        out.append(RecallCase(bug_id, outcome, attempts,
                              sorted(victim_quarantined)))
    return out
