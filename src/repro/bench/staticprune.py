"""Static-pruning pressure study: monitoring cost with pruning off vs on.

For each application the protected program is run twice per optimization
level — ``static_prune=False`` and ``static_prune=True`` — and the three
pressure metrics the prune layer targets are compared: monitored-AR
count, watchpoint arms and kernel crossings.  Output equality across the
pair doubles as a semantics check.
"""

from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.core.config import OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.catalog import workload_suite

LEVELS = (OptLevel.BASE, OptLevel.OPTIMIZED)


class PrunePair:
    """Off/on stats for one (application, opt level) cell."""

    __slots__ = ("app", "opt", "off", "on", "same_output")

    def __init__(self, app, opt, off, on, same_output):
        self.app = app
        self.opt = opt
        self.off = off  # KivatiStats, pruning disabled
        self.on = on    # KivatiStats, pruning enabled
        self.same_output = same_output

    def reduced(self, metric):
        return getattr(self.on, metric) < getattr(self.off, metric)

    def crossings_reduced(self):
        return self.on.crossings() < self.off.crossings()


class StaticPruneResult:
    def __init__(self, table, pairs, static_counts):
        self.table = table
        self.pairs = pairs  # (app, opt) -> PrunePair
        self.static_counts = static_counts  # app -> (safe, total)

    def render(self):
        return self.table.render()

    def apps(self):
        return sorted({app for app, _ in self.pairs})

    def reduction_fraction(self, metric, opt=OptLevel.OPTIMIZED):
        apps = self.apps()
        hits = sum(1 for app in apps
                   if self.pairs[(app, opt)].reduced(metric))
        return hits / len(apps)

    def check_shape(self):
        problems = []
        for pair in self.pairs.values():
            if not pair.same_output:
                problems.append("%s/%s: pruning changed program output"
                                % (pair.app, pair.opt.value))
            if pair.on.static_prune_hits == 0:
                problems.append("%s/%s: pruning never fired"
                                % (pair.app, pair.opt.value))
        # the headline claim: pruning relieves monitoring pressure on at
        # least half the workloads at every level
        for opt in LEVELS:
            for metric in ("monitored_ars",):
                if self.reduction_fraction(metric, opt) < 0.5:
                    problems.append(
                        "%s not reduced on half the apps at %s"
                        % (metric, opt.value))
            frac = sum(1 for app in self.apps()
                       if self.pairs[(app, opt)].crossings_reduced())
            if frac / len(self.apps()) < 0.5:
                problems.append("crossings not reduced on half the apps "
                                "at %s" % opt.value)
        return problems


def generate(scale=0.6, seed=3):
    table = Table(
        "Static pruning: monitoring pressure with pruning off -> on",
        ["Application", "Opt", "ARs safe/total", "Monitored",
         "Arms", "Crossings", "Prune hits"],
        note="off -> on per cell; identical program output verified; "
             "safe ARs are begin/end pairs resolved in user space",
    )
    pairs = {}
    static_counts = {}
    for workload in workload_suite(scale=scale):
        pp = ProtectedProgram(workload.source)
        safe = len(pp.static_safe_ar_ids)
        total = len(pp.annotation.ar_table)
        static_counts[workload.name] = (safe, total)
        for opt in LEVELS:
            off = pp.run(bench_config(opt=opt, static_prune=False),
                         seed=seed)
            on = pp.run(bench_config(opt=opt, static_prune=True),
                        seed=seed)
            pair = PrunePair(workload.name, opt, off.stats, on.stats,
                             off.result.output == on.result.output)
            pairs[(workload.name, opt)] = pair
            table.add_row(
                workload.name, opt.value, "%d/%d" % (safe, total),
                "%d -> %d" % (off.stats.monitored_ars,
                              on.stats.monitored_ars),
                "%d -> %d" % (off.stats.watchpoint_arms,
                              on.stats.watchpoint_arms),
                "%d -> %d" % (off.stats.crossings(),
                              on.stats.crossings()),
                on.stats.static_prune_hits,
            )
    return StaticPruneResult(table, pairs, static_counts)
