"""Observability-overhead benchmark (``BENCH_obs.json``).

The obs plane (:mod:`repro.obs`) promises to be *free when off* and
*transparent when on*: enabling the metrics registry and VM profiler
must not change a single verdict, stat, or simulated nanosecond, and
must cost at most ``BUDGET`` of instructions/sec on the 5-app suite.
This benchmark measures and gates exactly those claims:

- **overhead**: per app, obs-on vs obs-off wall cost as the *median of
  paired ratios* — each round runs both configurations back to back
  (alternating which goes first) on the CPU-time clock, so host noise
  and drift cancel instead of biasing one side.  A plain min-of-N on
  this class of shared container swings +-15% run to run; the paired
  median is stable to a couple of percent;
- **verdicts**: over the bug corpus, the violation-verdict multisets
  are bit-identical obs-on vs obs-off;
- **digests**: per app, a canonical digest over (stats, violations,
  final time, journal event stream) is identical obs-on vs obs-off,
  and a small fleet batch aggregates to the same digest whether or not
  the supervising process carries an obs plane;
- **determinism**: the metrics export and the Chrome-trace span export
  are byte-identical across 2 fresh processes x 2 PYTHONHASHSEED
  values;
- **sentinel**: the perf-regression sentinel (:mod:`repro.obs.regress`)
  passes an artifact diffed against itself and flags a synthetically
  regressed copy.

The artifact (schema ``kivati-obsbench/v1``) is committed as
``BENCH_obs.json``; ``validate`` is the CI gate.  A ``smoke`` artifact
(CI-sized, relaxed overhead budget) proves the machinery runs — shared
CI runners cannot honestly gate a 5% timing claim.
"""

import hashlib
import json
import os
import statistics
import subprocess
import sys
import time

from repro.bench.schema import check_schema
from repro.bench.render import Table
from repro.bench.scale import corpus_config
from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram
from repro.fleet.jobs import app_run_jobs
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor
from repro.journal.replay import record_run
from repro.obs import ObsPlane, compare_artifacts
from repro.workloads.bugs import BUGS
from repro.workloads.catalog import workload_suite

SCHEMA = "kivati-obsbench/v1"
#: obs-on may cost at most this fraction of obs-off instructions/sec
BUDGET = 0.05
#: paired measurement rounds per app (each round = one off + one on run)
DEFAULT_ROUNDS = 10
DEFAULT_SCALE = 0.2
#: seed stride matches detect_bug's campaign stride
CORPUS_SEEDS = (0, 7919, 15838)
#: PYTHONHASHSEED values for the cross-process byte-identity check
HASH_SEEDS = ("0", "12345")


def _run_pair(program, seed, on_first):
    """One paired measurement round: run obs-off and obs-on adjacently
    on the CPU-time clock; returns ``(off_s, on_s)``."""

    def timed(obs):
        config = KivatiConfig(seed=seed, obs=obs)
        t0 = time.process_time()
        program.run(config)
        return time.process_time() - t0

    if on_first:
        on = timed(ObsPlane())
        off = timed(None)
    else:
        off = timed(None)
        on = timed(ObsPlane())
    return off, on


def overhead_series(scale=DEFAULT_SCALE, rounds=DEFAULT_ROUNDS, seed=0):
    """Per-app overhead via median of paired obs-on/obs-off ratios."""
    rows = []
    all_ratios = []
    for workload in workload_suite(scale=scale):
        program = ProtectedProgram(workload.source)
        _run_pair(program, seed, False)  # warm caches before measuring
        ratios = []
        off_total = on_total = 0.0
        instrs = ProtectedProgram(workload.source).run(
            KivatiConfig(seed=seed)).result.instr_count
        for r in range(rounds):
            off, on = _run_pair(program, seed, on_first=r % 2 == 1)
            off_total += off
            on_total += on
            ratios.append(on / off)
        frac = statistics.median(ratios) - 1.0
        all_ratios.extend(ratios)
        rows.append({
            "app": workload.name,
            "instrs": instrs,
            "rounds": rounds,
            "off_s": round(off_total, 4),
            "on_s": round(on_total, 4),
            "base_instrs_per_sec": round(instrs * rounds / off_total, 1),
            "obs_instrs_per_sec": round(instrs * rounds / on_total, 1),
            "overhead_frac": round(frac, 4),
        })
    overall = statistics.median(all_ratios) - 1.0
    return {"apps": rows, "overall_frac": round(overall, 4),
            "max_frac": round(max(r["overhead_frac"] for r in rows), 4),
            "rounds": rounds, "scale": scale,
            "clock": "process_time", "estimator": "median-paired-ratio"}


def _violation_multiset(report):
    return sorted(
        (r.ar_id, r.local_tid, r.remote_tid, r.first_kind, r.remote_kind,
         r.second_kind, bool(r.prevented))
        for r in report.violations)


def corpus_transparency(bug_ids=None, seeds=CORPUS_SEEDS):
    """Violation-verdict multisets obs-off vs obs-on, per bug and seed,
    under the detection configuration."""
    diffs = []
    checked = 0
    for bug_id in sorted(bug_ids or BUGS):
        program = ProtectedProgram(BUGS[bug_id].source)
        for seed in seeds:
            base = program.run(corpus_config(seed=seed))
            obs = program.run(corpus_config(seed=seed, obs=ObsPlane()))
            checked += 1
            if _violation_multiset(base) != _violation_multiset(obs):
                diffs.append({"bug": bug_id, "seed": seed})
    return {"runs_checked": checked, "diffs": diffs,
            "identical": not diffs}


def _report_digest(report, recorder):
    """Canonical digest over everything a run reports: stats, verdicts,
    final simulated time, and the journal event stream."""
    payload = {
        "stats": report.stats.as_dict(),
        "violations": _violation_multiset(report),
        "time_ns": report.result.time_ns,
        "instr_count": report.result.instr_count,
        "events": [(e.seq, e.time_ns, e.tid, e.kind,
                    sorted(e.payload.items()))
                   for e in recorder.events],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)  # journal payloads carry enums
    return hashlib.sha256(blob.encode()).hexdigest()


def digest_identity(scale=DEFAULT_SCALE, seed=0, fleet_jobs=True):
    """Per-app journaled-run digests obs-off vs obs-on, plus a fleet
    batch aggregated with and without a supervisor-side obs plane."""
    apps = []
    for workload in workload_suite(scale=scale):
        program = ProtectedProgram(workload.source)
        base_rep, base_rec = record_run(program, KivatiConfig(seed=seed))
        obs_rep, obs_rec = record_run(
            program, KivatiConfig(seed=seed, obs=ObsPlane()))
        base_digest = _report_digest(base_rep, base_rec)
        obs_digest = _report_digest(obs_rep, obs_rec)
        apps.append({"app": workload.name,
                     "digest": base_digest,
                     "equal": base_digest == obs_digest})
    out = {"apps": apps, "all_equal": all(a["equal"] for a in apps)}
    if fleet_jobs:
        # obs lives in the supervising process; folding a batch's stats
        # into a registry must not perturb the aggregate digest
        specs = app_run_jobs(corpus_config(), seeds=(seed,), scale=scale,
                             prefix="obsbench")
        policy = FleetPolicy(workers=1, verify=False)
        digests = []
        for obs in (None, ObsPlane()):
            supervisor = FleetSupervisor(workers=0, policy=policy)
            result = supervisor.run_jobs(specs)
            if obs is not None:
                obs.registry.ingest_stats(result.stats,
                                          prefix="kivati.fleet.")
            digests.append(result.aggregate().digest())
        out["fleet"] = {"jobs": len(specs), "digest": digests[0],
                        "equal": digests[0] == digests[1]}
        out["all_equal"] = out["all_equal"] and out["fleet"]["equal"]
    return out


#: subprocess body for the cross-process byte-identity check: runs one
#: journaled, obs-enabled bug run and prints a digest of the metrics
#: export and the span export
_DETERMINISM_SCRIPT = """\
import hashlib, json, sys
from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram
from repro.journal.replay import record_run
from repro.obs import ObsPlane
from repro.obs.spans import journal_trace_events, render_chrome_trace
from repro.workloads.bugs import BUGS

bug_id = sys.argv[1]
obs = ObsPlane()
program = ProtectedProgram(BUGS[bug_id].source)
report, recorder = record_run(program, KivatiConfig(seed=7, obs=obs))
metrics_blob = json.dumps(obs.snapshot(), sort_keys=True,
                          separators=(",", ":"))
trace_blob = render_chrome_trace(journal_trace_events(recorder.events))
print(hashlib.sha256(metrics_blob.encode()).hexdigest(),
      hashlib.sha256(trace_blob.encode()).hexdigest(),
      len(metrics_blob), len(trace_blob))
"""


def export_determinism(bug_id=None, hash_seeds=HASH_SEEDS, procs=2):
    """Byte-identity of metrics + span exports across fresh processes
    and PYTHONHASHSEED values."""
    bug_id = bug_id or sorted(BUGS)[0]
    outputs = set()
    runs = 0
    for hs in hash_seeds:
        for _ in range(procs):
            env = dict(os.environ, PYTHONHASHSEED=hs)
            env.setdefault("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", _DETERMINISM_SCRIPT, bug_id],
                env=env, capture_output=True, text=True, check=True)
            outputs.add(out.stdout.strip())
            runs += 1
    sample = next(iter(outputs)).split() if outputs else []
    return {"bug": bug_id, "processes": runs,
            "hash_seeds": list(hash_seeds),
            "distinct_outputs": len(outputs),
            "ok": len(outputs) == 1,
            "metrics_bytes": int(sample[2]) if len(sample) == 4 else None,
            "trace_bytes": int(sample[3]) if len(sample) == 4 else None}


def sentinel_selfcheck():
    """The regression sentinel must pass an identical diff and flag a
    synthetic regression."""
    base = {"schema": "kivati-selftest/v1", "jobs_per_sec": 100.0,
            "recall": 1.0, "deterministic": True, "elapsed_s": 10.0}
    clean = compare_artifacts(base, dict(base))
    regressed = dict(base, jobs_per_sec=80.0, deterministic=False)
    dirty = compare_artifacts(base, regressed)
    return {
        "identical_pass": clean.ok and not clean.regressions,
        "synthetic_flagged": not dirty.ok,
        "synthetic_regressions": len(dirty.regressions),
        "ok": (clean.ok and not clean.regressions and not dirty.ok
               and len(dirty.regressions) == 2),
    }


def hot_profile(scale=DEFAULT_SCALE, seed=0, top=5):
    """Deterministic per-app hot-opcode table (dispatch shares)."""
    rows = []
    for workload in workload_suite(scale=scale):
        obs = ObsPlane()
        ProtectedProgram(workload.source).run(
            KivatiConfig(seed=seed, obs=obs))
        profiler = obs.profiler
        counts = profiler.named_op_counts()
        total = sum(counts.values())
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        rows.append({
            "app": workload.name,
            "dispatches": total,
            "wp_checks": profiler.wp_checks,
            "wp_hit_rate": round(profiler.wp_hit_rate, 6),
            "top_ops": [{"op": name, "count": n,
                         "share": round(n / total, 4)}
                        for name, n in ranked[:top]],
        })
    return rows


def generate(scale=DEFAULT_SCALE, rounds=DEFAULT_ROUNDS, smoke=False):
    """Run the full benchmark; returns the artifact dict.

    ``smoke`` shrinks everything (fewer rounds, reduced scale, a 3-bug
    corpus slice) and relaxes the overhead budget — a smoke artifact
    proves transparency and determinism, not the timing claim.
    """
    corpus_bugs = None
    corpus_seeds = CORPUS_SEEDS
    budget = BUDGET
    if smoke:
        scale = min(scale, 0.15)
        rounds = min(rounds, 4)
        corpus_bugs = sorted(BUGS)[:3]
        corpus_seeds = (0,)
        budget = 1.0
    return {
        "schema": SCHEMA,
        "smoke": bool(smoke),
        "budget": budget,
        "overhead": overhead_series(scale=scale, rounds=rounds),
        "verdicts": corpus_transparency(bug_ids=corpus_bugs,
                                        seeds=corpus_seeds),
        "digests": digest_identity(scale=scale),
        "determinism": export_determinism(),
        "sentinel": sentinel_selfcheck(),
        "profile": hot_profile(scale=scale),
    }


def validate(payload):
    """Schema/invariant problems with an obsbench artifact (empty list
    = valid).  The overhead gate uses the artifact's own ``budget``
    (relaxed for smoke artifacts)."""
    problems = check_schema(payload, SCHEMA,
                            required=("budget", "overhead", "verdicts",
                                      "digests", "determinism",
                                      "sentinel"))
    if not isinstance(payload, dict):
        return problems
    budget = payload.get("budget", BUDGET)
    overhead = payload.get("overhead") or {}
    apps = overhead.get("apps")
    if not isinstance(apps, list) or not apps:
        problems.append("overhead.apps missing or empty")
    else:
        if not payload.get("smoke") and len(apps) != 5:
            problems.append("expected 5 apps, got %d" % len(apps))
        for row in apps:
            frac = row.get("overhead_frac")
            if frac is None:
                problems.append("app row missing overhead_frac")
            elif frac > budget:
                problems.append("%s overhead %.3f above budget %.3f"
                                % (row.get("app"), frac, budget))
    overall = overhead.get("overall_frac")
    if overall is not None and overall > budget:
        problems.append("overall overhead %.3f above budget %.3f"
                        % (overall, budget))
    verdicts = payload.get("verdicts") or {}
    if not verdicts.get("identical"):
        problems.append("corpus verdict multisets differ obs-on: %s"
                        % verdicts.get("diffs"))
    digests = payload.get("digests") or {}
    if not digests.get("all_equal"):
        problems.append("run digests differ obs-on vs obs-off")
    determinism = payload.get("determinism") or {}
    if not determinism.get("ok"):
        problems.append("exports not byte-identical across processes "
                        "(%s distinct outputs)"
                        % determinism.get("distinct_outputs"))
    sentinel = payload.get("sentinel") or {}
    if not sentinel.get("ok"):
        problems.append("regression sentinel self-check failed: %s"
                        % sentinel)
    return problems


def render(payload):
    overhead = payload["overhead"]
    table = Table(
        "Observability overhead: obs-on vs obs-off instructions/sec "
        "(%d paired rounds/app, %s clock, budget %.0f%%)"
        % (overhead.get("rounds", 0), overhead.get("clock", "?"),
           100 * payload["budget"]),
        ["app", "instrs", "base i/s", "obs i/s", "overhead"],
        note="overhead is the median of paired on/off ratios (drift-"
             "immune); verdicts %s, digests %s, exports %s, sentinel %s"
             % ("identical" if payload["verdicts"]["identical"]
                else "DIFFER",
                "equal" if payload["digests"]["all_equal"] else "DIFFER",
                "byte-identical" if payload["determinism"]["ok"]
                else "DIVERGE",
                "ok" if payload["sentinel"]["ok"] else "BROKEN"),
    )
    for row in overhead["apps"]:
        table.add_row(row["app"], row["instrs"],
                      "%.0f" % row["base_instrs_per_sec"],
                      "%.0f" % row["obs_instrs_per_sec"],
                      "%+.1f%%" % (100 * row["overhead_frac"]))
    return table.render()


def write_payload(payload, path):
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


__all__ = ["BUDGET", "CORPUS_SEEDS", "SCHEMA", "corpus_transparency",
           "digest_identity", "export_determinism", "generate",
           "hot_profile", "overhead_series", "render",
           "sentinel_selfcheck", "validate", "write_payload"]
