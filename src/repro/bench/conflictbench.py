"""Conflict-aware scheduling benchmark (``BENCH_conflict.json``).

Measures what the static conflict analysis buys at run time: with
``KivatiConfig(conflict_sched=True)`` the machine scheduler consults the
per-AR footprints (:mod:`repro.analysis.footprint`) and avoids
co-scheduling threads whose atomic regions may touch the same shared
words — turning would-be suspensions and undos into cheap queue
reorderings (or brief core stalls when every runnable thread conflicts).

The benchmark runs the 5-app suite at an oversubscribed core count
(more live threads than cores — the regime where the policy engages)
base vs conflict-scheduled, and gates on three claims:

- **wins**: suspensions + undos drop on at least ``MIN_IMPROVED`` of the
  apps (SPEC OMP is lock-disciplined and has none to remove; it must
  merely stay at zero);
- **verdict transparency**: over the 11-bug corpus under the standard
  detection configuration, the violation-verdict multisets are
  *identical* with the policy on, and every bug is still detected — the
  scheduler may move windows in time, never change what Kivati reports
  (the corpus runs one core per thread, where the policy's
  oversubscription gate keeps it inert by construction);
- **replayability**: a journaled conflict-scheduled run replays
  deterministically, ``csched`` frames and all.

The artifact (schema ``kivati-conflictbench/v1``) is committed as
``BENCH_conflict.json``; ``validate`` is the CI gate.
"""

import json
import os

from repro.bench.schema import check_schema
from repro.bench.render import Table
from repro.bench.scale import corpus_config
from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram
from repro.journal.replay import record_run, replay_run
from repro.workloads.bugs import BUGS
from repro.workloads.catalog import workload_suite
from repro.workloads.driver import detect_bug

SCHEMA = "kivati-conflictbench/v1"
DEFAULT_SEEDS = (0, 1, 2, 3)
DEFAULT_CORES = 2
DEFAULT_SCALE = 1.0
#: apps whose suspensions+undos must drop for the artifact to validate
MIN_IMPROVED = 3
#: seed stride matches detect_bug's campaign stride
CORPUS_SEEDS = (0, 7919, 15838)


def _totals(stats):
    return stats.suspensions + stats.undos


def app_series(scale=DEFAULT_SCALE, seeds=DEFAULT_SEEDS,
               num_cores=DEFAULT_CORES):
    """Base vs conflict-scheduled stats per application."""
    rows = []
    for workload in workload_suite(scale=scale):
        program = ProtectedProgram(workload.source)
        base_susp = base_undo = 0
        conf_susp = conf_undo = 0
        decisions = defers = forced = 0
        for seed in seeds:
            base = program.run(
                KivatiConfig(num_cores=num_cores, seed=seed)).stats
            conf = program.run(
                KivatiConfig(num_cores=num_cores, seed=seed,
                             conflict_sched=True)).stats
            base_susp += base.suspensions
            base_undo += base.undos
            conf_susp += conf.suspensions
            conf_undo += conf.undos
            decisions += conf.conflict_sched_decisions
            defers += conf.conflict_defers
            forced += conf.conflict_forced_fifo
        base_total = base_susp + base_undo
        conf_total = conf_susp + conf_undo
        rows.append({
            "app": workload.name,
            "threads": workload.threads,
            "base_suspensions": base_susp,
            "base_undos": base_undo,
            "base_total": base_total,
            "conf_suspensions": conf_susp,
            "conf_undos": conf_undo,
            "conf_total": conf_total,
            "decisions": decisions,
            "defers": defers,
            "forced_fifo": forced,
            "verdict": ("improved" if conf_total < base_total
                        else "same" if conf_total == base_total
                        else "regressed"),
        })
    return rows


def _violation_multiset(report):
    """Canonical multiset of a run's violation verdicts (mirrors the
    journal-side :func:`repro.journal.replay.verdict_multiset`)."""
    return sorted(
        (r.ar_id, r.local_tid, r.remote_tid, r.first_kind, r.remote_kind,
         r.second_kind, bool(r.prevented))
        for r in report.violations)


def corpus_transparency(bug_ids=None, seeds=CORPUS_SEEDS):
    """Violation-verdict multisets base vs conflict-scheduled, per bug
    and seed, under the detection configuration."""
    diffs = []
    checked = 0
    for bug_id in sorted(bug_ids or BUGS):
        program = ProtectedProgram(BUGS[bug_id].source)
        for seed in seeds:
            base = program.run(corpus_config(seed=seed))
            conf = program.run(corpus_config(seed=seed, conflict_sched=True))
            checked += 1
            if (_violation_multiset(base)
                    != _violation_multiset(conf)):
                diffs.append({"bug": bug_id, "seed": seed})
    return {"runs_checked": checked, "diffs": diffs,
            "identical": not diffs}


def corpus_recall(bug_ids=None):
    """Every corpus bug must still be caught with the policy on."""
    missed = []
    checked = 0
    for bug_id in sorted(bug_ids or BUGS):
        result = detect_bug(BUGS[bug_id],
                            config=corpus_config(conflict_sched=True))
        checked += 1
        if not result.detected:
            missed.append(bug_id)
    return {"bugs_checked": checked, "missed": missed,
            "all_detected": not missed}


def replay_determinism(scale=DEFAULT_SCALE, num_cores=DEFAULT_CORES,
                       seed=0):
    """Journal one conflict-scheduled app run and replay it pinned."""
    workload = next(w for w in workload_suite(scale=scale)
                    if w.name == "VLC")
    program = ProtectedProgram(workload.source)
    _, recorder = record_run(
        program, KivatiConfig(num_cores=num_cores, seed=seed,
                              conflict_sched=True))
    result = replay_run(program, recorder)
    csched = sum(1 for e in recorder.events if e.kind == "csched")
    return {"app": workload.name, "seed": seed,
            "recorded_events": len(recorder.events),
            "csched_frames": csched,
            "ok": bool(result.ok),
            "verdicts_match": bool(result.verdicts_match)}


def generate(scale=DEFAULT_SCALE, seeds=DEFAULT_SEEDS,
             num_cores=DEFAULT_CORES, smoke=False):
    """Run the full benchmark; returns the artifact dict.

    ``smoke`` shrinks everything (CI-sized: one seed, reduced scale, a
    3-bug corpus slice) and relaxes the improvement gate — a smoke
    artifact proves the machinery runs, not the performance claim.
    """
    corpus_bugs = None
    corpus_seeds = CORPUS_SEEDS
    if smoke:
        scale = min(scale, 0.4)
        seeds = seeds[:1]
        corpus_bugs = sorted(BUGS)[:3]
        corpus_seeds = (0,)
    apps = app_series(scale=scale, seeds=seeds, num_cores=num_cores)
    improved = [r["app"] for r in apps if r["verdict"] == "improved"]
    regressed = [r["app"] for r in apps if r["verdict"] == "regressed"]
    return {
        "schema": SCHEMA,
        "smoke": bool(smoke),
        "scale": scale,
        "seeds": list(seeds),
        "num_cores": num_cores,
        "apps": apps,
        "improved": improved,
        "regressed": regressed,
        "min_improved": 0 if smoke else MIN_IMPROVED,
        "corpus": corpus_transparency(bug_ids=corpus_bugs,
                                      seeds=corpus_seeds),
        "recall": corpus_recall(bug_ids=corpus_bugs),
        "replay": replay_determinism(scale=scale, num_cores=num_cores,
                                     seed=seeds[0]),
    }


def validate(payload):
    """Schema/invariant problems with a conflictbench artifact (empty
    list = valid).  The improvement gate uses the artifact's own
    ``min_improved`` (0 for smoke artifacts)."""
    problems = check_schema(payload, SCHEMA)
    if not isinstance(payload, dict):
        return problems
    apps = payload.get("apps")
    if not isinstance(apps, list) or not apps:
        return problems + ["apps missing or empty"]
    for row in apps:
        for key in ("app", "base_total", "conf_total", "decisions",
                    "verdict"):
            if key not in row:
                problems.append("app row missing %r" % key)
    if not payload.get("smoke") and len(apps) != 5:
        problems.append("expected 5 apps, got %d" % len(apps))
    want = payload.get("min_improved", MIN_IMPROVED)
    improved = payload.get("improved") or []
    if len(improved) < want:
        problems.append("only %d apps improved, need >=%d (%s)"
                        % (len(improved), want, ", ".join(improved) or "-"))
    corpus = payload.get("corpus") or {}
    if not corpus.get("identical"):
        problems.append("corpus verdict multisets differ: %s"
                        % corpus.get("diffs"))
    recall = payload.get("recall") or {}
    if not recall.get("all_detected"):
        problems.append("corpus recall lost bugs: %s"
                        % recall.get("missed"))
    replay = payload.get("replay") or {}
    if not replay.get("ok") or not replay.get("verdicts_match"):
        problems.append("conflict-scheduled replay diverged")
    if not payload.get("smoke") and not replay.get("csched_frames"):
        problems.append("replayed run journaled no csched frames "
                        "(policy never engaged?)")
    return problems


def render(payload):
    table = Table(
        "Conflict-aware scheduling: suspensions+undos, base vs "
        "conflict_sched (%d cores, seeds %s, scale %s)"
        % (payload["num_cores"],
           ",".join(str(s) for s in payload["seeds"]), payload["scale"]),
        ["app", "base s/u", "conf s/u", "total", "decisions", "defers",
         "forced", "verdict"],
        note="totals are suspensions+undos summed over seeds; decisions "
             "count queue reorderings and stalls the footprint policy "
             "made; corpus verdicts %s, recall %s, replay %s"
             % ("identical" if payload["corpus"]["identical"] else "DIFFER",
                "complete" if payload["recall"]["all_detected"] else "LOST",
                "deterministic" if payload["replay"]["ok"] else "DIVERGED"),
    )
    for row in payload["apps"]:
        table.add_row(
            row["app"],
            "%d/%d" % (row["base_suspensions"], row["base_undos"]),
            "%d/%d" % (row["conf_suspensions"], row["conf_undos"]),
            "%d -> %d" % (row["base_total"], row["conf_total"]),
            row["decisions"], row["defers"], row["forced_fifo"],
            row["verdict"])
    return table.render()


def write_payload(payload, path):
    tmp = "%s.tmp" % path
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


__all__ = ["MIN_IMPROVED", "SCHEMA", "app_series", "corpus_recall",
           "corpus_transparency", "generate", "render",
           "replay_determinism", "validate", "write_payload"]
