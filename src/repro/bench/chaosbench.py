"""Degradation bench: cost and visibility of surviving each fault class.

Not a paper table — this quantifies the robustness extension (DESIGN.md
§6): for every built-in chaos schedule, how many faults fired across the
seeds, how often the system degraded, which policies engaged, and what
the surviving runs cost in simulated time relative to the fault-free
baseline. The invariant checks themselves live in the chaos harness;
``generate().check()`` re-exposes them so the bench fails loudly if a
schedule stops holding.
"""

from repro.bench.render import Table
from repro.faults.chaos import DEFAULT_SEEDS, run_chaos_suite


class ChaosBenchResult:
    def __init__(self, table, report):
        self.table = table
        self.rows = table.rows
        self.report = report

    def render(self):
        return self.table.render()

    def check(self):
        """Invariant problems (empty list = all schedules held)."""
        failed, schedule_problems = self.report.failures
        problems = [case.describe() for case in failed]
        problems.extend(schedule_problems)
        return problems


def generate(seeds=DEFAULT_SEEDS):
    report = run_chaos_suite(seeds=seeds)

    by_plan = {}
    for case in report.cases:
        by_plan.setdefault(case.plan.name, []).append(case)

    table = Table(
        "Chaos bench: graceful degradation under injected faults",
        ["schedule", "seeds", "fired", "degradations", "kinds",
         "time vs clean", "ok"],
        note="time vs clean = mean simulated-time ratio of faulty run to "
             "fault-free baseline on the same seed",
    )
    for name, cases in by_plan.items():
        fired = sum(case.fired for case in cases)
        degradations = sum(len(case.report.degradations) for case in cases)
        kinds = sorted({kind
                        for case in cases
                        for kind in case.report.degradations.kinds()})
        ratios = [case.report.result.time_ns / case.baseline.result.time_ns
                  for case in cases if case.baseline.result.time_ns]
        mean_ratio = sum(ratios) / len(ratios) if ratios else 1.0
        table.add_row(
            name, len(cases), fired, degradations,
            ",".join(kinds) if kinds else "-",
            "%.2fx" % mean_ratio,
            "yes" if all(case.ok for case in cases) else "NO",
        )
    return ChaosBenchResult(table, report)
