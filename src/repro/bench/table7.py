"""Table 7: false positives and watchpoint trap rates.

Paper anchors (prevention mode): NSS 8 FPs / 16.5 traps/s, VLC 4 / 9.9,
Webstone 12 / 21.1, TPC-W 19 / 30.0, SPEC OMP 5 / 5.9. TPC-W has the
most false positives and the highest trap rate; bug-finding mode finds
more false positives (which is what makes it better for training).
"""

from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.bench.suite import run_suite
from repro.core.config import Mode, OptLevel
from repro.workloads.catalog import APP_NAMES

PAPER = {
    "NSS": (8, 16.5),
    "VLC": (4, 9.9),
    "Webstone": (12, 21.1),
    "TPC-W": (19, 30.0),
    "SPEC OMP": (5, 5.9),
}


class Table7Result:
    def __init__(self, table, data):
        self.table = table
        self.rows = table.rows
        self.data = data  # app -> {"fp_prev", "fp_bug", "traps_prev", ...}

    def render(self):
        return self.table.render()

    def check_shape(self):
        problems = []
        total_prev = sum(d["fp_prev"] for d in self.data.values())
        total_bug = sum(d["fp_bug"] for d in self.data.values())
        if total_prev == 0:
            problems.append("no false positives at all in prevention mode")
        if total_bug < total_prev:
            problems.append("bug-finding mode found fewer FPs than "
                            "prevention mode")
        return problems


def generate(scale=0.6, seed=3):
    suite = run_suite(scale=scale, seed=seed)
    table = Table(
        "Table 7: false positives (unique violated ARs) and watchpoint "
        "trap rates",
        ["Application", "FP (prev)", "Traps/s (prev)", "FP (bug)",
         "Traps/s (bug)", "Paper prev (FP, traps/s)"],
        note="a false positive is a unique AR with >=1 violation; none of "
             "the performance workloads contain a real bug, so every "
             "violation is benign or required",
    )
    data = {}
    for name in APP_NAMES:
        app = suite[name]
        prev = app.report(OptLevel.OPTIMIZED, Mode.PREVENTION)
        # the bug-finding column re-runs with the mode's pauses actually
        # exercised (the Table 3 runs sample pauses sparsely to measure
        # overhead; FP flushing needs them frequent, as in training)
        bug = app.protected.run(
            bench_config(Mode.BUG_FINDING, OptLevel.OPTIMIZED,
                         pause_probability=0.2),
            seed=seed,
        )
        entry = {
            "fp_prev": len(prev.violated_ars()),
            "fp_bug": len(bug.violated_ars()),
            "traps_prev": prev.traps_per_second(),
            "traps_bug": bug.traps_per_second(),
        }
        data[name] = entry
        table.add_row(
            name,
            entry["fp_prev"],
            "%.0f" % entry["traps_prev"],
            entry["fp_bug"],
            "%.0f" % entry["traps_bug"],
            "%d, %.1f" % PAPER[name],
        )
    return Table7Result(table, data)
