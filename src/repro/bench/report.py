"""One-command evaluation report.

``kivati report`` (or :func:`generate_report`) regenerates every table,
the figure and the ablations, checks each against the paper's qualitative
shape, and emits a single text report — the content of the repository's
EXPERIMENTS measured-results section.
"""

import time


def generate_report(scale=0.6, include_table6=True, include_ablations=True,
                    stream=None, jobs=1):
    """Run the full evaluation; returns the report text (and prints it
    incrementally to ``stream`` if given).

    ``jobs`` > 1 pre-warms the shared measurement pass (Tables 3/4/5/7/8
    all read the same cached suite) through a fleet worker pool — the
    tables themselves then hit the cache and render identically to a
    serial run.
    """
    from repro.bench import (ablations, baseline, figure7, table1, table2,
                             table3, table4, table5, table6, table7, table8,
                             table9)

    if jobs > 1:
        from repro.bench.suite import run_suite

        run_suite(scale=scale, jobs=jobs)

    sections = []

    def emit(text):
        sections.append(text)
        if stream is not None:
            stream.write(text + "\n")
            stream.flush()

    emit("KIVATI REPRODUCTION — FULL EVALUATION REPORT")
    emit("generated in %s\n" % time.strftime("%Y-%m-%d %H:%M:%S"))

    jobs = [
        ("Table 1", lambda: table1.generate()),
        ("Table 2", lambda: table2.generate(scale=scale)),
        ("Table 3", lambda: table3.generate(scale=scale)),
        ("Table 4", lambda: table4.generate(scale=scale)),
        ("Table 5", lambda: table5.generate(scale=scale)),
    ]
    if include_table6:
        jobs.append(("Table 6", lambda: table6.generate()))
    jobs.extend([
        ("Table 7", lambda: table7.generate(scale=scale)),
        ("Table 8", lambda: table8.generate(scale=scale)),
        ("Table 9", lambda: table9.generate(scale=scale * 0.8)),
        ("Figure 7", lambda: figure7.generate()),
        ("Baselines", lambda: baseline.generate()),
    ])
    if include_ablations:
        jobs.append(("Ablations", lambda: ablations.generate()))

    verdicts = []
    for name, job in jobs:
        started = time.time()
        result = job()
        elapsed = time.time() - started
        emit(result.render())
        problems = (result.check_shape()
                    if hasattr(result, "check_shape") else [])
        if problems:
            verdict = "%s: SHAPE DEVIATIONS: %s" % (name, "; ".join(problems))
        else:
            verdict = "%s: shape matches the paper (%.0fs)" % (name, elapsed)
        verdicts.append(verdict)
        emit(verdict + "\n")

    emit("=" * 60)
    emit("SUMMARY")
    for verdict in verdicts:
        emit("  " + verdict)
    return "\n".join(sections)
