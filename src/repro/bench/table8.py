"""Table 8: ARs missed because all four watchpoint registers were busy.

Paper anchor: Kivati is unable to monitor approximately 5% of ARs with
the four x86 watchpoints.
"""

from repro.bench.render import Table
from repro.bench.suite import run_suite
from repro.core.config import Mode, OptLevel
from repro.workloads.catalog import APP_NAMES

#: paper: missed-AR percentage at 4 watchpoints (from Table 9's "4" column)
PAPER_PCT = {
    "NSS": 5.7,
    "VLC": 5.2,
    "Webstone": 4.9,
    "TPC-W": 9.1,
    "SPEC OMP": 4.8,
}


class Table8Result:
    def __init__(self, table, data):
        self.table = table
        self.rows = table.rows
        self.data = data  # app -> (missed_per_s, fraction)

    def render(self):
        return self.table.render()

    def average_missed_fraction(self):
        fracs = [f for _, f in self.data.values()]
        return sum(fracs) / len(fracs)

    def check_shape(self):
        problems = []
        avg = self.average_missed_fraction()
        if not 0.005 <= avg <= 0.40:
            problems.append(
                "average missed fraction %.3f far from the paper's ~5%%"
                % avg)
        worst = max(self.data, key=lambda a: self.data[a][1])
        if self.data["TPC-W"][1] < self.average_missed_fraction() * 0.5:
            problems.append("TPC-W misses unusually few ARs (paper: most)")
        return problems


def generate(scale=0.6, seed=3):
    suite = run_suite(scale=scale, seed=seed)
    table = Table(
        "Table 8: ARs missed due to watchpoint exhaustion (4 registers)",
        ["Application", "Missed/s", "% of ARs", "Paper %"],
    )
    data = {}
    for name in APP_NAMES:
        app = suite[name]
        report = app.report(OptLevel.OPTIMIZED, Mode.PREVENTION)
        stats = report.stats
        per_s = stats.missed_ars / (report.time_ns / 1e9)
        frac = stats.missed_fraction()
        data[name] = (per_s, frac)
        table.add_row(name, "%.0fk" % (per_s / 1e3), "%.1f%%" % (frac * 100),
                      "%.1f%%" % PAPER_PCT[name])
    return Table8Result(table, data)
