"""Plain-text table rendering for benchmark output."""


class Table:
    """A rendered benchmark table with paper-vs-measured rows."""

    def __init__(self, title, columns, note=None):
        self.title = title
        self.columns = list(columns)
        self.rows = []
        self.note = note

    def add_row(self, *cells):
        self.rows.append([str(c) for c in cells])

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                if i < len(widths):
                    widths[i] = max(widths[i], len(cell))
        lines = ["", "=== %s ===" % self.title]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(
                cell.ljust(widths[i]) if i < len(widths) else cell
                for i, cell in enumerate(row)
            ))
        if self.note:
            lines.append("note: %s" % self.note)
        lines.append("")
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def pct(x):
    return "%.1f%%" % (x * 100.0)
