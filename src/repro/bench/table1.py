"""Table 1: survey of hardware watchpoint support."""

from repro.bench.render import Table
from repro.machine.watchpoints import ARCH_SURVEY

#: the paper's Table 1, verbatim
PAPER = [
    ("x86", "Yes", 4, "After"),
    ("SPARC", "Yes", 2, "Before"),
    ("MIPS", "Yes", 1, "Depends on inst."),
    ("ARM", "Yes", 2, "After"),
    ("PowerPC", "Yes", 1, ""),
]


def generate():
    table = Table(
        "Table 1: hardware watchpoint support survey",
        ["Arch", "Support", "Number", "Type"],
        note="static data; the machine model implements the x86 row "
             "(trap-after) with a trap-before switch for the SPARC row",
    )
    for row in ARCH_SURVEY:
        table.add_row(row["arch"], "Yes" if row["support"] else "No",
                      row["number"], row["type"])
    return table


def matches_paper():
    ours = [(r["arch"], "Yes" if r["support"] else "No", r["number"],
             r["type"]) for r in ARCH_SURVEY]
    return ours == PAPER
