"""Recovery/replay pressure bench: crash the journaled session at sampled
frame offsets and measure what recovery gets back.

Not a paper table — this quantifies the crash-safety extension
(DESIGN.md §9): for each workload/seed pair, a clean journaled run is
recorded, then the session is killed at frame offsets sampled across the
whole journal (``stride`` controls density; ``stride=1`` is the
exhaustive acceptance sweep).  Every crash is followed by a full
recovery — salvage, state reconstruction, pinned re-execution — so the
table reports how many crash points resumed, how many frames the torn
journals salvaged on average, and whether every re-execution stayed
deterministic and postmortem-clean.
"""

from repro.bench.render import Table
from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.faults.chaos import CHAOS_SRC
from repro.journal.format import JournalWriter, read_journal
from repro.journal.postmortem import reverify_report
from repro.journal.recovery import crash_at_frame, recover
from repro.journal.replay import record_run

import os
import tempfile

DEFAULT_SEEDS = (0, 1, 2)

#: Two-thread check-then-act race kept deliberately tiny so dense crash
#: sampling stays cheap.
SMALL_SRC = """
int x = 0;

void careful() {
    int i = 0;
    while (i < 3) {
        int t = x;
        sleep(400);
        x = t + 1;
        i = i + 1;
    }
}

void racer() {
    int j = 0;
    while (j < 3) {
        sleep(150);
        x = x + 10;
        j = j + 1;
    }
}

void main() {
    spawn careful();
    spawn racer();
    join();
    output(x);
}
"""

WORKLOADS = (("small-race", SMALL_SRC), ("chaos", CHAOS_SRC))


def bench_config(**overrides):
    kwargs = dict(opt=OptLevel.BASE, mode=Mode.PREVENTION)
    kwargs.update(overrides)
    return KivatiConfig(**kwargs)


class RecoveryCase:
    """All sampled crash points for one (workload, seed) pair."""

    __slots__ = ("name", "seed", "frames", "crash_points", "resumed",
                 "aborted", "salvaged_total", "divergences",
                 "postmortem_clean", "problems")

    def __init__(self, name, seed, frames):
        self.name = name
        self.seed = seed
        self.frames = frames
        self.crash_points = 0
        self.resumed = 0
        self.aborted = 0
        self.salvaged_total = 0
        self.divergences = 0
        self.postmortem_clean = True
        self.problems = []

    @property
    def ok(self):
        return not self.problems

    @property
    def salvage_pct(self):
        if not self.crash_points:
            return 0.0
        return 100.0 * self.salvaged_total / (self.crash_points * self.frames)


class RecoveryBenchResult:
    def __init__(self, table, cases):
        self.table = table
        self.rows = table.rows
        self.cases = cases

    def render(self):
        return self.table.render()

    def check(self):
        """Invariant problems (empty list = every crash point recovered)."""
        return [p for case in self.cases for p in case.problems]


def _run_case(name, source, seed, stride, workdir):
    program = ProtectedProgram(source)
    config = bench_config(seed=seed)
    report, recorder = record_run(program, config, seed=seed)
    case = RecoveryCase(name, seed, len(recorder.events))

    # postmortem agreement on the clean run rides along for free
    post, matches = reverify_report(recorder, report)
    if not (post.agrees and matches):
        case.postmortem_clean = False
        case.problems.append("%s seed=%d: postmortem disagreement on the "
                             "clean run" % (name, seed))

    for frame in range(1, case.frames, stride):
        path = os.path.join(workdir, "%s-%d-%d.journal" % (name, seed, frame))
        crash = crash_at_frame(program, config, frame,
                               JournalWriter(path), torn=frame % 2)
        if crash is None:
            case.problems.append("%s seed=%d: crash at frame %d never fired"
                                 % (name, seed, frame))
            continue
        case.crash_points += 1
        result = recover(program, path)
        case.salvaged_total += len(result.salvaged)
        if result.ok:
            case.resumed += 1
            if result.report.output != report.output:
                case.divergences += 1
                case.problems.append(
                    "%s seed=%d frame=%d: recovered output %r != %r"
                    % (name, seed, frame, result.report.output,
                       report.output))
        else:
            case.aborted += 1
            case.problems.append("%s seed=%d frame=%d: recovery aborted (%s)"
                                 % (name, seed, frame, result.reason))
        # salvage must never lose a pre-crash frame
        salvaged = read_journal(path)
        if len(salvaged.events) != frame:
            case.divergences += 1
            case.problems.append(
                "%s seed=%d frame=%d: salvaged %d frames, expected %d"
                % (name, seed, frame, len(salvaged.events), frame))
    return case


def generate(seeds=DEFAULT_SEEDS, stride=7, workloads=WORKLOADS):
    """Run the pressure sweep; returns a :class:`RecoveryBenchResult`.

    ``stride`` samples every Nth frame boundary; the journal test suite
    covers stride=1 on the small workload, so the bench default trades
    density for breadth across seeds and workloads.
    """
    cases = []
    with tempfile.TemporaryDirectory(prefix="kivati-recovery-") as workdir:
        for name, source in workloads:
            for seed in seeds:
                cases.append(_run_case(name, source, seed, stride, workdir))

    table = Table(
        "Recovery bench: crash-at-frame sweep over journaled runs",
        ["workload", "seed", "frames", "crashes", "resumed", "aborted",
         "salvage%", "postmortem", "ok"],
        note="each crash point = one torn journal salvaged, reconstructed "
             "and re-executed pinned to the recorded schedule; salvage% = "
             "mean fraction of the full journal recovered per crash",
    )
    for case in cases:
        table.add_row(
            case.name, case.seed, case.frames, case.crash_points,
            case.resumed, case.aborted, "%.1f" % case.salvage_pct,
            "clean" if case.postmortem_clean else "DISAGREES",
            "yes" if case.ok else "NO",
        )
    return RecoveryBenchResult(table, cases)
