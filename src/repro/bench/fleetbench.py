"""Fleet throughput benchmark: jobs/sec at 1/2/4 workers.

Not a paper table — the paper's whitelists are "learned over training
runs" on customer fleets (§6), and this repo's runs are embarrassingly
shardable jobs; the fleetbench measures how the fleet plane actually
scales.  The job mix is the 5-app suite (each application at several
seeds and both usage modes) pushed through :class:`FleetSupervisor` at
each worker count, measuring wall-clock jobs/sec and — the part a
throughput number cannot show — asserting that the *aggregate digest is
identical at every worker count*: parallelism buys time, never answers.

The artifact (``BENCH_fleet.json``, schema ``kivati-fleetbench/v1``)
records the host's CPU count alongside the series: on a single-core
container the OS time-slices the workers, so jobs/sec is flat-to-slightly-
worse as workers grow (the honest number), while multi-core hosts see
near-linear scaling because every job is an independent simulated
execution with no shared state beyond the result queue.
``validate`` encodes exactly that: determinism and completeness are
unconditional; the >=1.8x speedup gate at 4 workers applies only where
the host has >=4 CPUs to scale onto (``require_speedup`` forces it).
"""

import json
import os

from repro.bench.schema import check_schema
from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.core.config import Mode
from repro.fleet.jobs import app_run_jobs
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor

SCHEMA = "kivati-fleetbench/v1"
DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_SEEDS = (3, 11)
DEFAULT_MODES = (Mode.PREVENTION, Mode.BUG_FINDING)


def build_bench_jobs(scale=0.6, seeds=DEFAULT_SEEDS, modes=DEFAULT_MODES):
    """The bench job mix: 5 apps x seeds x modes ``run`` jobs (20 by
    default), every one an independent deterministic simulation."""
    specs = []
    for mode in modes:
        config = bench_config(mode=mode)
        specs.extend(app_run_jobs(
            config, seeds=seeds, scale=scale,
            prefix="fb-%s" % mode.value.replace("-", "")))
    return specs


def host_info():
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    return {"cpu_count": cpus, "pid_start_method_default": "spawn"}


def generate(workers_list=DEFAULT_WORKERS, scale=0.6, seeds=DEFAULT_SEEDS,
             modes=DEFAULT_MODES, start_method="spawn", crash_drill=False):
    """Run the job mix at each worker count; returns the artifact dict.

    ``crash_drill`` arms a mid-run worker kill on the first job of every
    multi-worker round, so the benchmark also exercises (and times)
    salvage + retry — recovery overhead is part of the honest number.
    """
    specs = build_bench_jobs(scale=scale, seeds=seeds, modes=modes)
    series = []
    digests = {}
    for workers in workers_list:
        round_specs = specs
        if crash_drill and workers > 0:
            round_specs = [s.without_crash_drill() for s in specs]
            drilled = round_specs[0]
            drilled = type(drilled).from_dict(drilled.as_dict())
            drilled.params["crash"] = {"at_frame": 5, "torn": 1}
            round_specs[0] = drilled
        policy = FleetPolicy(workers=max(1, workers), verify=False,
                             collect_journals=crash_drill,
                             start_method=start_method)
        supervisor = FleetSupervisor(workers=workers, policy=policy)
        result = supervisor.run_jobs(round_specs)
        aggregate = result.aggregate()
        digests[workers] = aggregate.digest()
        series.append({
            "workers": workers,
            "jobs": len(result.results),
            "failed": sum(1 for r in result.results.values() if not r.ok),
            "elapsed_s": round(result.elapsed_s, 4),
            "jobs_per_sec": round(result.jobs_per_sec, 4),
            "retried": result.stats.jobs_retried,
            "workers_crashed": result.stats.workers_crashed,
            "frames_salvaged": result.stats.frames_salvaged,
            "digest": aggregate.digest(),
        })
    base = next((s for s in series if s["workers"] == 1), series[0])
    for entry in series:
        entry["speedup_vs_1"] = (
            round(entry["jobs_per_sec"] / base["jobs_per_sec"], 3)
            if base["jobs_per_sec"] else None)
    return {
        "schema": SCHEMA,
        "host": host_info(),
        "scale": scale,
        "seeds": list(seeds),
        "modes": [m.value for m in modes],
        "start_method": start_method,
        "crash_drill": bool(crash_drill),
        "job_count": len(specs),
        "series": series,
        "determinism_ok": len(set(digests.values())) == 1,
    }


def validate(payload, require_speedup=False, min_speedup=1.8):
    """Schema/invariant problems with a fleetbench artifact (empty list
    = valid).  The speedup gate applies when the recording host had >=4
    CPUs (or ``require_speedup``); determinism is gated unconditionally.
    """
    problems = check_schema(payload, SCHEMA,
                            required=("host", "job_count",
                                      "determinism_ok"))
    if not isinstance(payload, dict):
        return problems
    series = payload.get("series")
    if not isinstance(series, list) or not series:
        return problems + ["series missing or empty"]
    for entry in series:
        for key in ("workers", "jobs", "failed", "elapsed_s",
                    "jobs_per_sec", "digest", "speedup_vs_1"):
            if key not in entry:
                problems.append("series entry missing %r" % key)
        if entry.get("failed"):
            problems.append("workers=%s: %s failed jobs"
                            % (entry.get("workers"), entry.get("failed")))
        if entry.get("jobs") != payload.get("job_count"):
            problems.append("workers=%s: %s results for %s jobs (lost?)"
                            % (entry.get("workers"), entry.get("jobs"),
                               payload.get("job_count")))
    if len({entry.get("digest") for entry in series}) != 1:
        problems.append("aggregate digests differ across worker counts")
    if not payload.get("determinism_ok"):
        problems.append("determinism_ok is false")
    cpus = (payload.get("host") or {}).get("cpu_count", 1)
    four = next((e for e in series if e.get("workers") == 4), None)
    if require_speedup and four is None:
        problems.append("no 4-worker entry to gate speedup on")
    elif four is not None and (require_speedup or cpus >= 4):
        if (four.get("speedup_vs_1") or 0) < min_speedup:
            problems.append("4-worker speedup %.2fx < %.1fx (host cpus=%d)"
                            % (four.get("speedup_vs_1") or 0, min_speedup,
                               cpus))
    return problems


def render(payload):
    table = Table(
        "Fleet throughput: jobs/sec vs worker count (5-app suite, "
        "%d jobs, host cpus=%d)"
        % (payload["job_count"], payload["host"]["cpu_count"]),
        ["workers", "jobs", "elapsed s", "jobs/s", "speedup", "retried",
         "crashes", "digest ok"],
        note="speedup is vs the 1-worker pool; identical aggregate "
             "digests at every worker count prove parallelism changed "
             "wall-clock only, never results; on a 1-CPU host the "
             "workers time-slice and speedup is ~1x by construction",
    )
    for entry in payload["series"]:
        table.add_row(
            entry["workers"], entry["jobs"], "%.2f" % entry["elapsed_s"],
            "%.2f" % entry["jobs_per_sec"],
            "%.2fx" % entry["speedup_vs_1"] if entry["speedup_vs_1"]
            else "-",
            entry["retried"], entry["workers_crashed"],
            "yes" if payload["determinism_ok"] else "NO")
    return table.render()


def write_payload(payload, path):
    tmp = "%s.tmp" % path
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


__all__ = ["SCHEMA", "build_bench_jobs", "generate", "host_info", "render",
           "validate", "write_payload"]
