"""Table 9: missed-AR percentage as the number of watchpoint registers
grows from 2 to 12.

Paper anchor: the missed fraction drops steeply between 2-3 registers and
the 4 that x86 provides, and reaches zero for every application by 8-12
registers.
"""

from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.catalog import APP_NAMES, workload_suite

#: paper values (percent missed) for the register counts we sweep
PAPER = {
    "NSS": {2: 57, 3: 39, 4: 5.7, 6: 1.4, 8: 0.0007, 12: 0},
    "VLC": {2: 34, 3: 15, 4: 5.2, 6: 0.01, 8: 0, 12: 0},
    "Webstone": {2: 51, 3: 29, 4: 4.9, 6: 0.58, 8: 0.027, 12: 0},
    "TPC-W": {2: 59, 3: 44, 4: 9.1, 6: 1.8, 8: 0.39, 12: 0},
    "SPEC OMP": {2: 66, 3: 53, 4: 4.8, 6: 1.3, 8: 0.001, 12: 0},
}

SWEEP = (2, 3, 4, 6, 8, 12)


class Table9Result:
    def __init__(self, table, data):
        self.table = table
        self.rows = table.rows
        self.data = data  # app -> {nwp: fraction}

    def render(self):
        return self.table.render()

    def check_shape(self):
        problems = []
        for app, series in self.data.items():
            vals = [series[n] for n in SWEEP]
            # monotone non-increasing (small tolerance for scheduling noise)
            for a, b in zip(vals, vals[1:]):
                if b > a + 0.02:
                    problems.append("%s: missed fraction grew with more "
                                    "registers" % app)
                    break
            if series[2] < series[4]:
                problems.append("%s: 2 registers miss fewer than 4" % app)
            if series[12] > 0.01:
                problems.append("%s: still missing ARs at 12 registers"
                                % app)
        return problems


def generate(scale=0.5, seed=3):
    table = Table(
        "Table 9: missed-AR %% by number of watchpoint registers",
        ["Application"] + ["%d" % n for n in SWEEP] + ["Paper (2/4/8)"],
    )
    data = {}
    suite = {w.name: w for w in workload_suite(scale=scale)}
    for name in APP_NAMES:
        workload = suite[name]
        pp = ProtectedProgram(workload.source)
        series = {}
        for nwp in SWEEP:
            config = bench_config(mode=Mode.PREVENTION, opt=OptLevel.OPTIMIZED,
                                  num_watchpoints=nwp)
            report = pp.run(config, seed=seed)
            series[nwp] = report.stats.missed_fraction()
        data[name] = series
        p = PAPER[name]
        table.add_row(
            name,
            *["%.1f%%" % (series[n] * 100) for n in SWEEP],
            "%s%% / %s%% / %s%%" % (p[2], p[4], p[8]),
        )
    return Table9Result(table, data)
