"""Shared bench-artifact schema checking (`kivati bench validate`).

Every bench plane commits a ``BENCH_*.json`` artifact whose
``validate(payload)`` starts with the same structural preamble (is it
an object, does ``schema`` match, are the top-level keys there) — until
this module, each smoke job in CI re-rolled that check by hand. The
preamble now lives in :func:`check_schema`, and this module keeps the
registry mapping committed artifact filenames and schema strings to
their validators so ``kivati bench validate [--all]`` (and the CI smoke
jobs) can validate any artifact without knowing which plane owns it.
"""

import importlib
import json
import os

#: committed artifact filename -> owning bench module (lazy import —
#: bench modules are heavy and validation must stay cheap)
ARTIFACT_MODULES = {
    "BENCH_fleet.json": "repro.bench.fleetbench",
    "BENCH_service.json": "repro.bench.servicebench",
    "BENCH_conflict.json": "repro.bench.conflictbench",
    "BENCH_fuzz.json": "repro.bench.fuzzbench",
    "BENCH_checker.json": "repro.bench.checkerbench",
    "BENCH_obs.json": "repro.bench.obsbench",
}


def check_schema(payload, schema, required=()):
    """The structural preamble every bench ``validate()`` shares.

    Returns a problem list: non-dict payloads report exactly
    ``["payload is not an object"]`` (callers should return
    immediately), otherwise one problem per schema mismatch / missing
    top-level key.
    """
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    problems = []
    if payload.get("schema") != schema:
        problems.append("schema is %r, want %r"
                        % (payload.get("schema"), schema))
    for key in required:
        if key not in payload:
            problems.append("missing key %r" % key)
    return problems


def known_schemas():
    """schema string -> bench module name, for dispatch by payload."""
    out = {}
    for module_name in sorted(set(ARTIFACT_MODULES.values())):
        module = importlib.import_module(module_name)
        out[module.SCHEMA] = module_name
    return out


def validate_artifact(payload):
    """Validate any bench artifact by its ``schema`` field; returns a
    problem list (unknown/missing schema is itself a problem)."""
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    schema = payload.get("schema")
    module_name = known_schemas().get(schema)
    if module_name is None:
        return ["unknown schema %r (known: %s)"
                % (schema, ", ".join(sorted(known_schemas())))]
    return importlib.import_module(module_name).validate(payload)


def validate_file(path):
    """Validate one artifact file; unreadable/unparseable files are a
    problem, not an exception."""
    try:
        with open(path) as f:
            payload = json.load(f)
    except OSError as exc:
        return ["cannot read %s: %s" % (path, exc)]
    except ValueError as exc:
        return ["%s is not valid JSON: %s" % (path, exc)]
    return validate_artifact(payload)


def committed_artifacts(root="."):
    """The committed ``BENCH_*.json`` files under ``root``, sorted."""
    return sorted(name for name in os.listdir(root)
                  if name.startswith("BENCH_") and name.endswith(".json")
                  and os.path.isfile(os.path.join(root, name)))


def validate_committed(root="."):
    """Validate every committed artifact; returns an ordered
    ``{filename: problems}`` dict (a file missing its registry entry is
    still validated, by payload schema)."""
    report = {}
    for name in committed_artifacts(root):
        report[name] = validate_file(os.path.join(root, name))
    return report


__all__ = ["ARTIFACT_MODULES", "check_schema", "committed_artifacts",
           "known_schemas", "validate_artifact", "validate_committed",
           "validate_file"]
