"""Baseline comparison: Kivati vs software per-access instrumentation.

Paper anchors (Sections 1 and 5): dynamic atomicity-violation testing
tools run at 2.2x-72x slowdown (worst cases 15x-65x); Kivati's overhead
is "orders of magnitude smaller". This table runs the AVIO-like detector
and the lockset checker on the same workloads.
"""

from repro.baselines.avio import run_avio_like
from repro.baselines.ctrigger import explore
from repro.baselines.lockset import run_lockset
from repro.bench.render import Table
from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.catalog import workload_suite


class BaselineResult:
    def __init__(self, table, data):
        self.table = table
        self.rows = table.rows
        self.data = data  # app -> {"kivati": x, "avio": x, "lockset": x}

    def render(self):
        return self.table.render()

    def check_shape(self):
        problems = []
        exploration = self.data.get("exploration")
        if exploration is not None:
            if exploration["total_ns"] < exploration["kivati_ns"]:
                problems.append(
                    "schedule exploration cheaper than one protected run")
        for app, d in self.data.items():
            if "avio" not in d:
                continue
            if d["avio"] < 2.2 - 1:
                problems.append("%s: AVIO-like slowdown below the paper's "
                                "2.2x floor" % app)
            if d["avio"] < d["kivati"] * 5:
                problems.append(
                    "%s: AVIO-like overhead not orders of magnitude above "
                    "Kivati" % app)
        return problems


def generate(scale=0.35, seed=3):
    table = Table(
        "Baseline comparison: overhead vs vanilla",
        ["Application", "Kivati (optimized)", "AVIO-like", "Lockset",
         "Paper range for testing tools"],
        note="AVIO-like instruments every shared access (testing-tool "
             "semantics, no prevention); paper cites 2.2x-72x slowdowns "
             "for this tool class",
    )
    data = {}
    for workload in workload_suite(scale=scale):
        pp = ProtectedProgram(workload.source)
        vanilla = pp.run_vanilla(seed=seed)
        kivati = pp.run(bench_config(Mode.PREVENTION, OptLevel.OPTIMIZED),
                        seed=seed)
        avio_res, avio_rt = run_avio_like(pp.vanilla_program, seed=seed)
        lock_res, lock_rt = run_lockset(pp.vanilla_program, seed=seed)
        entry = {
            "kivati": kivati.time_ns / vanilla.time_ns - 1,
            "avio": avio_res.time_ns / vanilla.time_ns - 1,
            "lockset": lock_res.time_ns / vanilla.time_ns - 1,
            "avio_violations": len(avio_rt.violations),
            "lockset_races": len(lock_rt.races),
        }
        data[workload.name] = entry
        table.add_row(
            workload.name,
            "%.0f%%" % (entry["kivati"] * 100),
            "%.1fx slower" % (entry["avio"] + 1),
            "%.1fx slower" % (entry["lockset"] + 1),
            "2.2x - 72x",
        )

    # CTrigger-style exploration on a corpus bug: total testing cost to
    # *find* the violation vs one Kivati-protected run that detects and
    # prevents it online
    from repro.workloads.bugs import get_bug

    bug = get_bug("19938")
    bug_pp = ProtectedProgram(bug.source)
    vanilla = bug_pp.run_vanilla(seed=3)
    exploration = explore(bug_pp.vanilla_program, runs=12, seed_base=3)
    kivati = bug_pp.run(bench_config(Mode.PREVENTION, OptLevel.OPTIMIZED),
                        seed=3)
    data["exploration"] = {
        "runs": exploration.runs,
        "found": exploration.found,
        "total_ns": exploration.total_time_ns,
        "kivati_ns": kivati.time_ns,
    }
    table.add_row(
        "MySQL 19938 (testing vs production)",
        "%.0f%% (one run, online)" % (
            100 * (kivati.time_ns / vanilla.time_ns - 1)),
        "%.0fx total for %d exploration runs%s" % (
            exploration.total_time_ns / vanilla.time_ns,
            exploration.runs,
            "" if exploration.found else ", not found"),
        "-",
        "testing tools are offline",
    )
    return BaselineResult(table, data)
