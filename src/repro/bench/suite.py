"""Shared measurement pass for the performance tables.

Tables 3, 4, 5, 7 and 8 all derive from the same set of runs (five
applications × four optimization levels × two modes, plus vanilla), so
they are measured once and cached.
"""

from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.catalog import workload_suite

OPT_LEVELS = (OptLevel.BASE, OptLevel.NULL_SYSCALL, OptLevel.SYNCVARS,
              OptLevel.OPTIMIZED)
MODES = (Mode.PREVENTION, Mode.BUG_FINDING)


class AppMeasurement:
    """All measurements for one application."""

    def __init__(self, workload, protected, vanilla, reports):
        self.workload = workload
        self.protected = protected
        self.vanilla = vanilla
        #: (OptLevel, Mode) -> RunReport
        self.reports = reports

    @property
    def name(self):
        return self.workload.name

    def overhead(self, opt, mode=Mode.PREVENTION):
        report = self.reports[(opt, mode)]
        return report.time_ns / self.vanilla.time_ns - 1.0

    def report(self, opt, mode=Mode.PREVENTION):
        return self.reports[(opt, mode)]


class SuiteResults:
    def __init__(self, apps, scale, seed):
        self.apps = apps  # name -> AppMeasurement
        self.scale = scale
        self.seed = seed

    def __iter__(self):
        return iter(self.apps.values())

    def __getitem__(self, name):
        return self.apps[name]

    def geometric_mean_overhead(self, opt, mode=Mode.PREVENTION):
        """Geometric mean of per-app overheads, floored at 1% — a
        near-zero app (VLC's sleep-dominated pipeline) would otherwise
        dominate the log average."""
        import math

        logs = []
        for app in self:
            oh = max(0.01, app.overhead(opt, mode))
            logs.append(math.log(oh))
        return math.exp(sum(logs) / len(logs))

    def arithmetic_mean_overhead(self, opt, mode=Mode.PREVENTION):
        values = [app.overhead(opt, mode) for app in self]
        return sum(values) / len(values)


_CACHE = {}


def run_suite(scale=0.6, seed=3, levels=OPT_LEVELS, modes=MODES,
              use_cache=True, jobs=1):
    """Run the full measurement pass; cached on (scale, seed).

    ``jobs`` > 1 fans the per-application passes out over a fleet worker
    pool (one ``suite`` job per application); the default of 1 keeps the
    classic in-process loop, so existing callers are byte-identical.
    Every run is a deterministic simulation keyed by (config, seed), so
    the fanned-out results equal the serial ones — asserted in tests,
    not assumed.
    """
    key = (scale, seed, tuple(levels), tuple(modes))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    if jobs > 1:
        results = _run_suite_fleet(scale, seed, levels, modes, jobs)
    else:
        apps = {}
        for workload in workload_suite(scale=scale):
            pp = ProtectedProgram(workload.source)
            vanilla = pp.run_vanilla(seed=seed)
            assert workload.check_output(vanilla.output), (
                "vanilla run of %s produced wrong output" % workload.name)
            reports = {}
            for opt in levels:
                for mode in modes:
                    config = bench_config(mode=mode, opt=opt)
                    report = pp.run(config, seed=seed)
                    reports[(opt, mode)] = report
            apps[workload.name] = AppMeasurement(workload, pp, vanilla,
                                                 reports)
        results = SuiteResults(apps, scale, seed)
    if use_cache:
        _CACHE[key] = results
    return results


def _run_suite_fleet(scale, seed, levels, modes, jobs):
    """Fan the measurement pass out: one fleet ``suite`` job per app.

    Workers ship live report objects back (pickled over the result
    queue); the parent compiles each program once more to keep
    ``AppMeasurement.protected`` usable by table code that re-runs it.
    """
    from repro.fleet.jobs import JobSpec
    from repro.fleet.supervisor import FleetPolicy, FleetSupervisor

    workloads = {w.name: w for w in workload_suite(scale=scale)}
    config = bench_config()
    specs = [
        JobSpec.for_config(
            "suite-%s-s%d" % (name.replace(" ", ""), seed), "suite",
            workload.source, config, seed=seed,
            params={"workload": name, "scale": scale,
                    "levels": [opt.value for opt in levels],
                    "modes": [mode.value for mode in modes]})
        for name, workload in workloads.items()
    ]
    supervisor = FleetSupervisor(
        workers=jobs,
        policy=FleetPolicy(workers=jobs, verify=False,
                           collect_journals=False))
    fleet_result = supervisor.run_jobs(specs)
    failed = [r for r in fleet_result.results.values() if not r.ok]
    if failed:
        raise RuntimeError("suite fleet pass failed: %s"
                           % "; ".join("%s (%s)" % (r.job_id, r.error)
                                       for r in failed))
    apps = {}
    for result in fleet_result.results.values():
        payload = result.payload
        name = payload["workload"]
        reports = {(OptLevel(level_value), Mode(mode_value)): report
                   for (level_value, mode_value), report
                   in payload["reports"].items()}
        apps[name] = AppMeasurement(workloads[name],
                                    ProtectedProgram(workloads[name].source),
                                    payload["vanilla"], reports)
    apps = {name: apps[name] for name in workloads if name in apps}
    return SuiteResults(apps, scale, seed)
