"""Shared measurement pass for the performance tables.

Tables 3, 4, 5, 7 and 8 all derive from the same set of runs (five
applications × four optimization levels × two modes, plus vanilla), so
they are measured once and cached.
"""

from repro.bench.scale import bench_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.catalog import workload_suite

OPT_LEVELS = (OptLevel.BASE, OptLevel.NULL_SYSCALL, OptLevel.SYNCVARS,
              OptLevel.OPTIMIZED)
MODES = (Mode.PREVENTION, Mode.BUG_FINDING)


class AppMeasurement:
    """All measurements for one application."""

    def __init__(self, workload, protected, vanilla, reports):
        self.workload = workload
        self.protected = protected
        self.vanilla = vanilla
        #: (OptLevel, Mode) -> RunReport
        self.reports = reports

    @property
    def name(self):
        return self.workload.name

    def overhead(self, opt, mode=Mode.PREVENTION):
        report = self.reports[(opt, mode)]
        return report.time_ns / self.vanilla.time_ns - 1.0

    def report(self, opt, mode=Mode.PREVENTION):
        return self.reports[(opt, mode)]


class SuiteResults:
    def __init__(self, apps, scale, seed):
        self.apps = apps  # name -> AppMeasurement
        self.scale = scale
        self.seed = seed

    def __iter__(self):
        return iter(self.apps.values())

    def __getitem__(self, name):
        return self.apps[name]

    def geometric_mean_overhead(self, opt, mode=Mode.PREVENTION):
        """Geometric mean of per-app overheads, floored at 1% — a
        near-zero app (VLC's sleep-dominated pipeline) would otherwise
        dominate the log average."""
        import math

        logs = []
        for app in self:
            oh = max(0.01, app.overhead(opt, mode))
            logs.append(math.log(oh))
        return math.exp(sum(logs) / len(logs))

    def arithmetic_mean_overhead(self, opt, mode=Mode.PREVENTION):
        values = [app.overhead(opt, mode) for app in self]
        return sum(values) / len(values)


_CACHE = {}


def run_suite(scale=0.6, seed=3, levels=OPT_LEVELS, modes=MODES,
              use_cache=True):
    """Run the full measurement pass; cached on (scale, seed)."""
    key = (scale, seed, tuple(levels), tuple(modes))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    apps = {}
    for workload in workload_suite(scale=scale):
        pp = ProtectedProgram(workload.source)
        vanilla = pp.run_vanilla(seed=seed)
        assert workload.check_output(vanilla.output), (
            "vanilla run of %s produced wrong output" % workload.name)
        reports = {}
        for opt in levels:
            for mode in modes:
                config = bench_config(mode=mode, opt=opt)
                report = pp.run(config, seed=seed)
                reports[(opt, mode)] = report
        apps[workload.name] = AppMeasurement(workload, pp, vanilla, reports)
    results = SuiteResults(apps, scale, seed)
    if use_cache:
        _CACHE[key] = results
    return results
