"""Linked program image: instructions, symbol tables and memory layout.

Memory layout (word addresses)::

    0 .. 1023           reserved (null page; access faults)
    GLOBALS_BASE ..     global variables, laid out in declaration order
    HEAP_BASE ..        bump-allocated heap (``alloc`` builtin)
    STACK_BASE ..       per-thread stacks, STACK_WORDS each, growing down
"""

GLOBALS_BASE = 1024
HEAP_BASE = 1 << 20
STACK_BASE = 1 << 24
STACK_WORDS = 1 << 14


class FuncImage:
    """Per-function layout information."""

    __slots__ = ("name", "index", "entry", "end", "nparams", "frame_words",
                 "var_offsets")

    def __init__(self, name, index, entry, nparams, frame_words, var_offsets):
        self.name = name
        self.index = index
        self.entry = entry
        self.end = entry  # patched after codegen
        self.nparams = nparams
        self.frame_words = frame_words
        # var name -> offset from frame base (params first, then locals;
        # arrays occupy contiguous slots at their offset)
        self.var_offsets = dict(var_offsets)


class Program:
    """A compiled mini-C program ready to load into the machine."""

    def __init__(self):
        self.instrs = []
        self.funcs = {}          # name -> FuncImage
        self.func_by_index = []  # index -> FuncImage
        self.global_addrs = {}   # name -> address
        self.global_sizes = {}   # name -> words
        self.global_inits = {}   # address -> initial value
        self.globals_end = GLOBALS_BASE
        self.ar_table = {}       # ar_id -> analysis.arinfo.ARInfo
        self.source = None       # annotated mini-C text, if available
        self.memory_map = None   # compiler.memmap.MemoryMap

    # -- symbols -------------------------------------------------------------

    def add_global(self, name, size, init=None):
        addr = self.globals_end
        self.global_addrs[name] = addr
        self.global_sizes[name] = size
        if init is not None:
            self.global_inits[addr] = init
        self.globals_end += size
        return addr

    def global_addr(self, name):
        return self.global_addrs[name]

    def func(self, name):
        return self.funcs[name]

    def func_index(self, name):
        return self.funcs[name].index

    def entry(self):
        """Program counter where execution starts (main's entry)."""
        return self.funcs["main"].entry

    # -- debug ----------------------------------------------------------------

    def func_at(self, pc):
        """Return the FuncImage containing ``pc``, or None."""
        for f in self.func_by_index:
            if f.entry <= pc < f.end:
                return f
        return None

    def location(self, pc):
        """Human-readable 'func+offset (line N)' for a program counter."""
        f = self.func_at(pc)
        if f is None:
            return "pc=%d" % pc
        line = self.instrs[pc].src_line if 0 <= pc < len(self.instrs) else 0
        return "%s+%d (line %d)" % (f.name, pc - f.entry, line)

    def __len__(self):
        return len(self.instrs)
