"""Bytecode instruction set for the simulated machine.

A register machine with ``NUM_REGS`` general-purpose registers per thread
plus dedicated SP/FP. All named program variables live in memory (stack
frames for locals/params, a globals segment, and a heap); registers hold
only expression temporaries. This mirrors unoptimized C codegen and makes
every variable addressable, which matters because the paper's shared
variables include by-reference stack locations.

Instructions that touch data memory are the watchable surface for the
hardware watchpoints. Call/return bookkeeping (pushing the return address,
frame link) is modelled as non-watchable micro-architectural traffic; the
one watchable part of a call, per the paper's special case, is the
indirect function-pointer read of CALLIND.
"""

import enum


NUM_REGS = 16


class Op(enum.Enum):
    # data movement
    LI = "li"        # a=rd, b=imm
    MOV = "mov"      # a=rd, b=rs
    LD = "ld"        # a=rd, b=rs(addr)           -- memory read
    ST = "st"        # a=rs(addr), b=rs(value)    -- memory write
    CPY = "cpy"      # a=rd(addr), b=rs(addr)     -- memory read + write

    # arithmetic / logic (a=rd, b=rs, c=rt)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    AND = "and"
    OR = "or"
    NOT = "not"      # a=rd, b=rs
    NEG = "neg"      # a=rd, b=rs

    # control flow
    JMP = "jmp"      # a=target
    JZ = "jz"        # a=rs, b=target
    JNZ = "jnz"      # a=rs, b=target
    CALL = "call"    # a=func_index, b=nargs, c=rd for the return value
    CALLIND = "callind"  # a=rs holding the *address* of a function index
    RET = "ret"
    ENTER = "enter"  # a=frame words (params + locals)
    STPARAM = "stparam"  # a=param slot, b=rs -- store incoming arg (mem write)
    LADDR = "laddr"  # a=rd, b=frame offset: rd = FP - 1 - offset

    # threads & synchronization
    SPAWN = "spawn"  # a=func_index, b=nargs (args in r0..r(n-1))
    JOIN = "join"
    LOCK = "lock"    # a=rs(addr)
    UNLOCK = "unlock"  # a=rs(addr)
    CAS = "cas"      # a=rd, b=rs(addr), c=rs(old), d=rs(new)
    AADD = "aadd"    # a=rd, b=rs(addr), c=rs(delta)
    SLEEP = "sleepi"  # a=rs(nanoseconds)
    YIELD = "yield"

    # runtime services
    OUT = "out"      # a=rs
    ALLOC = "alloc"  # a=rd, b=rs(nwords)
    RAND = "rand"    # a=rd, b=rs(bound)
    TID = "tid"      # a=rd

    # Kivati annotations (lowered from annotator-inserted statements)
    BEGINAT = "beginat"   # a=ar_id, b=rs(addr)
    ENDAT = "endat"       # a=ar_id
    CLEARAR = "clearar"
    SHADOWST = "shadowst"  # a=ar_id, b=rs(addr)

    HALT = "halt"


#: Ops that perform watchable data-memory accesses, mapped to access kinds.
#: "RW" means the instruction both reads and writes its target address.
WATCHABLE = {
    Op.LD: "R",
    Op.ST: "W",
    Op.CPY: "RW_SPLIT",  # read at src, write at dst (different addresses)
    Op.STPARAM: "W",
    Op.LOCK: "RW",
    Op.UNLOCK: "W",
    Op.CAS: "RW",
    Op.AADD: "RW",
    Op.CALLIND: "R",
}

#: Atomic read-modify-write macro-ops. The prevention engine detects traps
#: caused by these but does not undo/reorder them (see DESIGN.md).
SYNC_OPS = frozenset({Op.LOCK, Op.UNLOCK, Op.CAS, Op.AADD})


class Instr:
    """One bytecode instruction.

    ``src_uid``/``src_line`` tie the instruction back to the AST statement
    it was generated from, for diagnostics and violation reports.
    """

    __slots__ = ("op", "a", "b", "c", "d", "src_uid", "src_line")

    def __init__(self, op, a=0, b=0, c=0, d=0, src_uid=0, src_line=0):
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.src_uid = src_uid
        self.src_line = src_line

    def __repr__(self):
        return "Instr(%s, %r, %r, %r, %r)" % (self.op.name, self.a, self.b, self.c, self.d)

    def accesses_memory(self):
        return self.op in WATCHABLE
