"""Bytecode compiler for mini-C.

The virtual machine executes a register-based bytecode. The compiler also
runs the paper's binary pre-processing pass (Section 3.3): it records every
memory-accessing instruction and the program counter that follows it in a
lookup table (:class:`repro.compiler.memmap.MemoryMap`), plus the entry
point of every subroutine so the kernel can handle the CALL special case
when rolling back a remote access.
"""

from repro.compiler.bytecode import Instr, Op
from repro.compiler.codegen import compile_program
from repro.compiler.disasm import disassemble
from repro.compiler.memmap import MemoryMap, build_memory_map
from repro.compiler.program import GLOBALS_BASE, HEAP_BASE, STACK_BASE, Program

__all__ = [
    "GLOBALS_BASE",
    "HEAP_BASE",
    "Instr",
    "MemoryMap",
    "Op",
    "Program",
    "STACK_BASE",
    "build_memory_map",
    "compile_program",
    "disassemble",
]
