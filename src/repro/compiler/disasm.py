"""Disassembler for compiled programs (debugging aid)."""

from repro.compiler.bytecode import Op

_REG3 = {
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.EQ, Op.NE, Op.LT, Op.LE,
    Op.GT, Op.GE, Op.AND, Op.OR,
}


def format_instr(instr, program=None):
    op = instr.op
    if op == Op.LI:
        return "li r%d, %d" % (instr.a, instr.b)
    if op == Op.MOV:
        return "mov r%d, r%d" % (instr.a, instr.b)
    if op == Op.LD:
        return "ld r%d, [r%d]" % (instr.a, instr.b)
    if op == Op.ST:
        return "st [r%d], r%d" % (instr.a, instr.b)
    if op == Op.CPY:
        return "cpy [r%d], [r%d]" % (instr.a, instr.b)
    if op in _REG3:
        return "%s r%d, r%d, r%d" % (op.value, instr.a, instr.b, instr.c)
    if op in (Op.NOT, Op.NEG):
        return "%s r%d, r%d" % (op.value, instr.a, instr.b)
    if op == Op.JMP:
        return "jmp %d" % instr.a
    if op in (Op.JZ, Op.JNZ):
        return "%s r%d, %d" % (op.value, instr.a, instr.b)
    if op == Op.CALL:
        name = ""
        if program is not None:
            name = " <%s>" % program.func_by_index[instr.a].name
        return "call %d%s nargs=%d -> r%d" % (instr.a, name, instr.b, instr.c)
    if op == Op.CALLIND:
        return "callind [r%d]" % instr.a
    if op == Op.ENTER:
        return "enter %d" % instr.a
    if op == Op.STPARAM:
        return "stparam slot%d, r%d" % (instr.a, instr.b)
    if op == Op.LADDR:
        return "laddr r%d, fp-%d" % (instr.a, instr.b + 1)
    if op == Op.SPAWN:
        name = ""
        if program is not None:
            name = " <%s>" % program.func_by_index[instr.a].name
        return "spawn %d%s nargs=%d" % (instr.a, name, instr.b)
    if op in (Op.LOCK, Op.UNLOCK, Op.SLEEP, Op.OUT):
        return "%s r%d" % (op.value, instr.a)
    if op == Op.CAS:
        return "cas r%d, [r%d], r%d, r%d" % (instr.a, instr.b, instr.c, instr.d)
    if op == Op.AADD:
        return "aadd r%d, [r%d], r%d" % (instr.a, instr.b, instr.c)
    if op in (Op.ALLOC, Op.RAND):
        return "%s r%d, r%d" % (op.value, instr.a, instr.b)
    if op == Op.TID:
        return "tid r%d" % instr.a
    if op == Op.BEGINAT:
        return "beginat ar%d, [r%d]" % (instr.a, instr.b)
    if op == Op.ENDAT:
        return "endat ar%d" % instr.a
    if op == Op.SHADOWST:
        return "shadowst ar%d, [r%d]" % (instr.a, instr.b)
    return op.value


def disassemble(program):
    """Return the full program listing as a string."""
    lines = []
    entries = {img.entry: img.name for img in program.func_by_index}
    for pc, instr in enumerate(program.instrs):
        if pc in entries:
            lines.append("%s:" % entries[pc])
        lines.append("  %4d: %s" % (pc, format_instr(instr, program)))
    return "\n".join(lines)
