"""AST → bytecode lowering.

Calling convention (register windows):

- The caller evaluates each argument into a temporary, then MOVs them into
  ``r0..r(n-1)`` and issues ``CALL func_index, nargs, rd``.
- The VM snapshots the caller's register file on CALL and restores it on
  RET; the callee's ``r0`` at RET time becomes the caller's ``rd``.
- The callee's prologue is ``ENTER frame_words`` followed by one
  ``STPARAM slot, r<i>`` per parameter, which stores incoming arguments to
  addressable stack slots.

All named variables live in memory. Expression temporaries use registers
with stack-discipline allocation; register windows mean temporaries stay
live across calls without spilling.
"""

from repro.errors import CompileError
from repro.minic import ast
from repro.minic.ast import AccessKind
from repro.minic.builtins import is_builtin
from repro.minic.typecheck import check
from repro.compiler.bytecode import Instr, NUM_REGS, Op
from repro.compiler.memmap import build_memory_map
from repro.compiler.program import FuncImage, Program

_BINOPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "==": Op.EQ,
    "!=": Op.NE,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}

_BUILTIN_SIMPLE = {
    "lock": (Op.LOCK, False),
    "unlock": (Op.UNLOCK, False),
    "sleep": (Op.SLEEP, False),
    "output": (Op.OUT, False),
    "alloc": (Op.ALLOC, True),
    "rand": (Op.RAND, True),
}


class _FuncCompiler:
    def __init__(self, program, prog_ast, func, finfo, pinfo):
        self.program = program
        self.prog_ast = prog_ast
        self.func = func
        self.finfo = finfo
        self.pinfo = pinfo
        self.next_temp = 0
        self.loop_stack = []  # (continue_target, [break_patch_sites])
        self.cur_stmt = None

        # frame layout: params first, then locals in declaration order
        self.var_offsets = {}
        offset = 0
        for name, _ in func.params:
            self.var_offsets[name] = offset
            offset += 1
        for name in finfo.locals:
            self.var_offsets[name] = offset
            offset += finfo.local_sizes[name]
        self.frame_words = offset

    # -- emission helpers ----------------------------------------------------

    def emit(self, op, a=0, b=0, c=0, d=0):
        uid = self.cur_stmt.uid if self.cur_stmt is not None else 0
        line = self.cur_stmt.line if self.cur_stmt is not None else 0
        self.program.instrs.append(Instr(op, a, b, c, d, uid, line))
        return len(self.program.instrs) - 1

    def here(self):
        return len(self.program.instrs)

    def patch(self, at, target):
        instr = self.program.instrs[at]
        if instr.op == Op.JMP:
            instr.a = target
        else:
            instr.b = target

    def temp(self):
        if self.next_temp >= NUM_REGS:
            raise CompileError(
                "expression too deep in %s (out of registers)" % self.func.name
            )
        reg = self.next_temp
        self.next_temp += 1
        return reg

    def release(self, *regs):
        # stack discipline: released temps must be the most recent ones
        self.next_temp -= len(regs)

    # -- variables -----------------------------------------------------------

    def is_local(self, name):
        return name in self.var_offsets

    def is_array(self, name):
        if name in self.finfo.array_names:
            return True
        if not self.is_local(name):
            return name in self.pinfo.global_arrays
        return False

    def gen_var_addr(self, name, rd):
        """Emit code leaving the address of variable ``name`` in rd."""
        if self.is_local(name):
            self.emit(Op.LADDR, rd, self.var_offsets[name])
        else:
            self.emit(Op.LI, rd, self.program.global_addr(name))

    # -- expressions -----------------------------------------------------------

    def gen_addr(self, lvalue, rd):
        """Emit code leaving the address of ``lvalue`` in rd.

        Loads never reuse their address register as the destination: a
        rolled-back remote load must be re-executable, which requires its
        input register to survive the first (undone) execution.
        """
        if isinstance(lvalue, ast.Var):
            self.gen_var_addr(lvalue.name, rd)
        elif isinstance(lvalue, ast.Deref):
            self.gen_expr(lvalue.operand, rd)
        elif isinstance(lvalue, ast.Index):
            name = lvalue.base.name
            if self.is_array(name):
                self.gen_var_addr(name, rd)
            else:
                # pointer indexing: base address is the pointer's value
                ra = self.temp()
                self.gen_var_addr(name, ra)
                self.emit(Op.LD, rd, ra)
                self.release(ra)
            ri = self.temp()
            self.gen_expr(lvalue.index, ri)
            self.emit(Op.ADD, rd, rd, ri)
            self.release(ri)
        else:
            raise CompileError("not an lvalue: %r" % lvalue)

    def gen_expr(self, expr, rd):
        """Emit code leaving the value of ``expr`` in rd."""
        if isinstance(expr, ast.IntLit):
            self.emit(Op.LI, rd, expr.value)
        elif isinstance(expr, ast.Var):
            if self.is_array(expr.name):
                # array name decays to its address
                self.gen_var_addr(expr.name, rd)
            else:
                ra = self.temp()
                self.gen_var_addr(expr.name, ra)
                self.emit(Op.LD, rd, ra)
                self.release(ra)
        elif isinstance(expr, ast.Unary):
            self.gen_expr(expr.operand, rd)
            self.emit(Op.NEG if expr.op == "-" else Op.NOT, rd, rd)
        elif isinstance(expr, ast.Deref):
            ra = self.temp()
            self.gen_expr(expr.operand, ra)
            self.emit(Op.LD, rd, ra)
            self.release(ra)
        elif isinstance(expr, ast.AddrOf):
            self.gen_addr(expr.operand, rd)
        elif isinstance(expr, ast.Index):
            ra = self.temp()
            self.gen_addr(expr, ra)
            self.emit(Op.LD, rd, ra)
            self.release(ra)
        elif isinstance(expr, ast.Binary):
            self.gen_binary(expr, rd)
        elif isinstance(expr, ast.Call):
            self.gen_call(expr, rd)
        else:
            raise CompileError("cannot compile expression %r" % expr)

    def gen_binary(self, expr, rd):
        if expr.op in ("&&", "||"):
            # short-circuit evaluation producing 0/1
            self.gen_expr(expr.left, rd)
            if expr.op == "&&":
                skip = self.emit(Op.JZ, rd, 0)
            else:
                skip = self.emit(Op.JNZ, rd, 0)
            self.gen_expr(expr.right, rd)
            # normalize to 0/1
            zero = self.temp()
            self.emit(Op.LI, zero, 0)
            self.emit(Op.NE, rd, rd, zero)
            self.release(zero)
            done = self.emit(Op.JMP, 0)
            self.patch(skip, self.here())
            self.emit(Op.LI, rd, 0 if expr.op == "&&" else 1)
            self.patch(done, self.here())
            return
        self.gen_expr(expr.left, rd)
        rr = self.temp()
        self.gen_expr(expr.right, rr)
        self.emit(_BINOPS[expr.op], rd, rd, rr)
        self.release(rr)

    def gen_call(self, expr, rd):
        name = expr.name
        if name == "funcref":
            self.emit(Op.LI, rd, self.program.func_index(expr.args[0].name))
            return
        if is_builtin(name):
            self.gen_builtin(expr, rd)
            return
        # user function: evaluate args, marshal into r0..r(n-1)
        arg_regs = []
        for arg in expr.args:
            r = self.temp()
            self.gen_expr(arg, r)
            arg_regs.append(r)
        for i, r in enumerate(arg_regs):
            if r != i:
                self.emit(Op.MOV, i, r)
        self.emit(Op.CALL, self.program.func_index(name), len(expr.args), rd)
        if arg_regs:
            self.release(*arg_regs)

    def gen_builtin(self, expr, rd):
        name = expr.name
        if name in _BUILTIN_SIMPLE:
            op, has_result = _BUILTIN_SIMPLE[name]
            regs = []
            for arg in expr.args:
                r = self.temp()
                self.gen_expr(arg, r)
                regs.append(r)
            if has_result:
                self.emit(op, rd, *regs)
            else:
                self.emit(op, *regs)
            if regs:
                self.release(*regs)
            return
        if name == "yield":
            self.emit(Op.YIELD)
            return
        if name == "join":
            self.emit(Op.JOIN)
            return
        if name == "tid":
            self.emit(Op.TID, rd)
            return
        if name == "cas":
            ra, ro, rn = self.temp(), self.temp(), self.temp()
            self.gen_expr(expr.args[0], ra)
            self.gen_expr(expr.args[1], ro)
            self.gen_expr(expr.args[2], rn)
            self.emit(Op.CAS, rd, ra, ro, rn)
            self.release(ra, ro, rn)
            return
        if name == "atomic_add":
            ra, rv = self.temp(), self.temp()
            self.gen_expr(expr.args[0], ra)
            self.gen_expr(expr.args[1], rv)
            self.emit(Op.AADD, rd, ra, rv)
            self.release(ra, rv)
            return
        if name == "copyword":
            rdst, rsrc = self.temp(), self.temp()
            self.gen_expr(expr.args[0], rdst)
            self.gen_expr(expr.args[1], rsrc)
            self.emit(Op.CPY, rdst, rsrc)
            self.release(rdst, rsrc)
            return
        if name == "invoke":
            ra = self.temp()
            self.gen_expr(expr.args[0], ra)
            self.emit(Op.CALLIND, ra)
            self.release(ra)
            return
        raise CompileError("unimplemented builtin %r" % name)

    # -- statements -------------------------------------------------------------

    def gen_stmt(self, stmt):
        self.cur_stmt = stmt
        if isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                rv = self.temp()
                self.gen_expr(stmt.init, rv)
                ra = self.temp()
                self.gen_var_addr(stmt.name, ra)
                self.emit(Op.ST, ra, rv)
                self.release(rv, ra)
        elif isinstance(stmt, ast.Assign):
            rv = self.temp()
            self.gen_expr(stmt.value, rv)
            ra = self.temp()
            self.gen_addr(stmt.target, ra)
            self.emit(Op.ST, ra, rv)
            self.release(rv, ra)
        elif isinstance(stmt, ast.ExprStmt):
            rd = self.temp()
            self.gen_expr(stmt.expr, rd)
            self.release(rd)
        elif isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self.gen_stmt(s)
        elif isinstance(stmt, ast.If):
            rc = self.temp()
            self.gen_expr(stmt.cond, rc)
            jfalse = self.emit(Op.JZ, rc, 0)
            self.release(rc)
            self.gen_stmt(stmt.then)
            if stmt.els is not None:
                jend = self.emit(Op.JMP, 0)
                self.patch(jfalse, self.here())
                self.gen_stmt(stmt.els)
                self.patch(jend, self.here())
            else:
                self.patch(jfalse, self.here())
        elif isinstance(stmt, ast.While):
            top = self.here()
            rc = self.temp()
            self.cur_stmt = stmt
            self.gen_expr(stmt.cond, rc)
            jexit = self.emit(Op.JZ, rc, 0)
            self.release(rc)
            self.loop_stack.append((top, []))
            self.gen_stmt(stmt.body)
            self.cur_stmt = stmt
            self.emit(Op.JMP, top)
            _, breaks = self.loop_stack.pop()
            end = self.here()
            self.patch(jexit, end)
            for site in breaks:
                self.patch(site, end)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CompileError("break outside loop")
            self.loop_stack[-1][1].append(self.emit(Op.JMP, 0))
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise CompileError("continue outside loop")
            self.emit(Op.JMP, self.loop_stack[-1][0])
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                rv = self.temp()
                self.gen_expr(stmt.value, rv)
                if rv != 0:
                    self.emit(Op.MOV, 0, rv)
                self.release(rv)
            self.emit(Op.RET)
        elif isinstance(stmt, ast.Spawn):
            arg_regs = []
            for arg in stmt.args:
                r = self.temp()
                self.gen_expr(arg, r)
                arg_regs.append(r)
            for i, r in enumerate(arg_regs):
                if r != i:
                    self.emit(Op.MOV, i, r)
            self.emit(Op.SPAWN, self.program.func_index(stmt.func), len(stmt.args))
            if arg_regs:
                self.release(*arg_regs)
        elif isinstance(stmt, ast.BeginAtomic):
            ra = self.temp()
            self.gen_addr(stmt.addr, ra)
            self.emit(Op.BEGINAT, stmt.ar_id, ra)
            self.release(ra)
        elif isinstance(stmt, ast.EndAtomic):
            kind_code = 1 if stmt.second_kind == AccessKind.WRITE else 0
            self.emit(Op.ENDAT, stmt.ar_id, kind_code)
        elif isinstance(stmt, ast.ClearAr):
            self.emit(Op.CLEARAR)
        elif isinstance(stmt, ast.ShadowStore):
            ra = self.temp()
            self.gen_addr(stmt.addr, ra)
            self.emit(Op.SHADOWST, stmt.ar_id, ra)
            self.release(ra)
        else:
            raise CompileError("cannot compile statement %r" % stmt)

    def compile(self):
        image = self.program.funcs[self.func.name]
        image.entry = self.here()
        image.frame_words = self.frame_words
        image.var_offsets = dict(self.var_offsets)
        self.cur_stmt = self.func.body
        self.emit(Op.ENTER, self.frame_words)
        for i, (name, _) in enumerate(self.func.params):
            self.emit(Op.STPARAM, self.var_offsets[name], i)
        self.gen_stmt(self.func.body)
        # implicit return (annotator guarantees a trailing ClearAr in the
        # body, so falling off the end is safe)
        self.cur_stmt = self.func.body
        self.emit(Op.RET)
        image.end = self.here()


def compile_program(prog_ast, pinfo=None, ar_table=None):
    """Compile a (possibly annotated) mini-C AST into a Program image."""
    if pinfo is None:
        pinfo = check(prog_ast)
    program = Program()
    if ar_table:
        program.ar_table = dict(ar_table)

    for g in prog_ast.globals:
        program.add_global(g.name, g.size, g.init)

    for index, func in enumerate(prog_ast.funcs):
        image = FuncImage(func.name, index, 0, len(func.params), 0, {})
        program.funcs[func.name] = image
        program.func_by_index.append(image)

    for func in prog_ast.funcs:
        _FuncCompiler(program, prog_ast, func, pinfo.funcs[func.name], pinfo).compile()

    program.memory_map = build_memory_map(program)
    return program
