"""The binary pre-processing pass of Section 3.3.

On x86 the watchpoint trap is delivered *after* the triggering instruction
has committed, so the trap handler only sees the program counter of the
*next* instruction. Because x86 instructions are variable length, Kivati
cannot simply subtract a fixed amount; instead a pre-processing pass over
the binary records every instruction that accesses memory together with
the program counter that immediately follows it.

The special case is the subroutine call instruction with an indirect
memory operand: after the access commits, the program counter points at
the *callee's first instruction*, not at call-site+len. The pass therefore
also records the entry point of every subroutine; when a trap's after-PC
is a subroutine entry, the kernel recovers the call site from the return
address at the top of the faulting thread's stack, backing up by the size
of a call instruction (one slot in this ISA).

Our VM deliberately reports only the after-PC in the trap, so the kernel
must use this table exactly as the real system does.
"""

from repro.compiler.bytecode import Op


class MemoryMap:
    """Lookup tables produced by the pre-processing pass."""

    __slots__ = ("after_to_instr", "subroutine_entries", "entry_to_func",
                 "call_instr_size")

    def __init__(self):
        # pc-after-instruction -> pc of the memory-accessing instruction
        self.after_to_instr = {}
        # entry pcs of every subroutine (for the CALLIND special case)
        self.subroutine_entries = set()
        self.entry_to_func = {}
        self.call_instr_size = 1

    def faulting_pc(self, after_pc, stack_top_value=None):
        """Resolve the pc of the instruction that caused a trap.

        ``after_pc`` is the pc the trap handler observed.
        ``stack_top_value`` is the word at the top of the faulting thread's
        call stack (the return address) — needed only for the subroutine
        special case.

        Returns the faulting pc, or None if ``after_pc`` does not follow
        any known memory-accessing instruction.
        """
        if after_pc in self.after_to_instr:
            return self.after_to_instr[after_pc]
        if after_pc in self.subroutine_entries and stack_top_value is not None:
            return stack_top_value - self.call_instr_size
        return None


def build_memory_map(program):
    """Scan a compiled program and build its MemoryMap."""
    mm = MemoryMap()
    for image in program.func_by_index:
        mm.subroutine_entries.add(image.entry)
        mm.entry_to_func[image.entry] = image.name
    for pc, instr in enumerate(program.instrs):
        if not instr.accesses_memory():
            continue
        if instr.op == Op.CALLIND:
            # after-pc is the callee entry; covered by subroutine_entries
            continue
        mm.after_to_instr[pc + 1] = pc
    return mm
