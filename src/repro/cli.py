"""Command-line interface: ``kivati <command>``.

Commands::

    kivati annotate FILE          print the annotated program and AR table
    kivati lint FILE...           static lock-discipline diagnostics
    kivati conflict bench         conflict-sched benchmark (BENCH_conflict.json)
    kivati run FILE               run FILE under Kivati and report
    kivati vanilla FILE           run FILE without instrumentation
    kivati bugs [ID...]           run the Table 6 detection campaign
    kivati table N                regenerate one of the paper's tables (1-9)
    kivati figure7                regenerate Figure 7
    kivati report [--quick]       regenerate the full evaluation
    kivati apps                   list the application models
    kivati chaos                  run the fault-injection chaos suite
    kivati soak                   soak the app suite under overload + faults
    kivati journal JOURNAL        inspect / postmortem-reverify a journal
    kivati check JOURNAL          streaming offline checker (no re-execution)
    kivati replay FILE JOURNAL    deterministically replay a recorded run
    kivati fleet run              shard the app suite over worker processes
    kivati fleet check            check every journal a fleet batch produced
    kivati fleet train            federated whitelist training over shards
    kivati fleet bench            fleet throughput benchmark (BENCH_fleet.json)
    kivati fuzz gen               emit one generated mini-C program
    kivati fuzz run               fuzz campaign through the fleet
    kivati fuzz minimize FILE     ddmin-shrink a diverging program
    kivati fuzz fix FILE          synthesize + verify a fix for a violation
    kivati fuzz bench             fuzz-campaign benchmark (BENCH_fuzz.json)
    kivati serve                  long-lived warm-worker detection daemon
    kivati service ping|stats|events|drain   operate a running daemon
    kivati service run FILE       submit one detection job to the daemon
    kivati service bench          sustained-traffic bench (BENCH_service.json)
    kivati obs report FILE        VM hot-path profile of one run
    kivati obs export             Chrome/Perfetto trace from a run/journal
    kivati obs diff BASE NEW      perf-regression sentinel over artifacts
    kivati obs bench              obs overhead benchmark (BENCH_obs.json)
    kivati bench validate         schema-check BENCH_*.json artifacts

Exit codes: 0 success; 1 invariant failure (chaos divergence, replay
divergence, postmortem disagreement, fleet determinism/recovery failure);
2 usage error; 3 violations found under ``--strict`` (for ``fuzz``:
any archived divergence).
"""

import argparse
import os
import sys

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram


def _read(path):
    with open(path) as f:
        return f.read()


def cmd_annotate(args):
    import json

    from repro.analysis.annotate import annotate
    from repro.analysis.diagnostics import (analysis_dump, footprint_dump,
                                            render_dump, render_footprints)
    from repro.minic.pretty import pretty

    result = annotate(_read(args.file),
                      interprocedural=args.interprocedural)
    if args.dump_analysis:
        dump = analysis_dump(result)
        if args.json:
            print(json.dumps(dump, indent=2, sort_keys=True))
        else:
            print(render_dump(dump))
        return 0
    if args.dump_footprints:
        dump = footprint_dump(result)
        if args.json:
            print(json.dumps(dump, indent=2, sort_keys=True))
        else:
            print(render_footprints(dump))
        return 0
    text = pretty(result.ast)
    print(text)
    print("// %d atomic regions:" % result.num_ars)
    for info in result.ar_table.values():
        print("//   " + info.describe())
    return 0


def _lint_sources(args):
    """Yield (display name, mini-C source) pairs for ``kivati lint``."""
    for path in args.files:
        yield path, _read(path)
    if args.corpus:
        from repro.workloads.bugs import BUG_IDS, get_bug
        from repro.workloads.catalog import workload_suite

        for bug_id in BUG_IDS:
            yield "bug-%s" % bug_id, get_bug(bug_id).source
        for workload in workload_suite():
            yield "app-%s" % workload.name, workload.source


def cmd_lint(args):
    import json

    from repro.analysis.annotate import annotate
    from repro.analysis.diagnostics import (diagnostics_json,
                                            render_diagnostics,
                                            run_diagnostics)

    all_diags = []
    payload = {}
    by_file = {}
    for name, source in _lint_sources(args):
        diags = run_diagnostics(annotate(source), filename=name)
        all_diags.extend(diags)
        by_file[name] = diags
        if args.json:
            payload[name] = diagnostics_json(diags)
        elif not args.sarif:
            print(render_diagnostics(diags))
    if args.sarif:
        from repro.analysis.sarif import sarif_payload

        print(json.dumps(sarif_payload(by_file), indent=2, sort_keys=True))
    elif args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _config(args):
    return KivatiConfig(
        mode=Mode.BUG_FINDING if args.bug_finding else Mode.PREVENTION,
        opt=OptLevel(args.opt),
        num_watchpoints=args.watchpoints,
        num_cores=args.cores,
        seed=args.seed,
    )


def cmd_run(args):
    pp = ProtectedProgram(_read(args.file))
    config = _config(args)
    trace = None
    if args.trace:
        from repro.core.tracing import Trace

        trace = Trace()
        config = config.copy(trace=trace)
    recorder = None
    if args.journal:
        from repro.journal.format import JournalWriter
        from repro.journal.recorder import JournalRecorder

        recorder = JournalRecorder(writer=JournalWriter(args.journal))
        config = config.copy(journal=recorder)
    report = pp.run(config)
    print("output:", report.output)
    print(report.summary())
    for violation in report.violations:
        print("violation: " + violation.describe())
    if trace is not None:
        if report.violations:
            print("\n--- forensic trace around the first violation ---")
            print(trace.render_violation(report.violations.records[0]))
        else:
            print("\n--- execution trace ---")
            print(trace.render())
    if recorder is not None:
        print("journal: %d frames -> %s" % (len(recorder), args.journal))
    if args.strict and report.violations:
        return 3
    return 0


def cmd_vanilla(args):
    pp = ProtectedProgram(_read(args.file))
    result = pp.run_vanilla(num_cores=args.cores, seed=args.seed)
    print("output:", result.output)
    print(result)
    return 0


def cmd_bugs(args):
    from repro.bench import table6

    if args.ids:
        from repro.bench.scale import corpus_config
        from repro.workloads.bugs import get_bug
        from repro.workloads.driver import detect_bug

        any_detected = False
        for bug_id in args.ids:
            bug = get_bug(bug_id)
            res = detect_bug(
                bug,
                corpus_config(Mode.BUG_FINDING if args.bug_finding
                              else Mode.PREVENTION),
                max_attempts=args.attempts,
            )
            any_detected = any_detected or res.detected
            print("%s: %s (%d attempts, %.2f ms simulated)"
                  % (bug_id, "detected" if res.detected else "not found",
                     res.attempts, res.time_ms))
            for record in res.records[:3]:
                print("   " + record.describe())
        return 3 if args.strict and any_detected else 0
    result = table6.generate()
    print(result.render())
    if args.strict and any(
            outcome.detected
            for per_bug in result.outcomes.values()
            for outcome in per_bug.values()):
        return 3
    return 0


def cmd_table(args):
    from repro.bench import (table1, table2, table3, table4, table5, table6,
                             table7, table8, table9)

    generators = {
        1: table1.generate, 2: table2.generate, 3: table3.generate,
        4: table4.generate, 5: table5.generate, 6: table6.generate,
        7: table7.generate, 8: table8.generate, 9: table9.generate,
    }
    if args.n not in generators:
        print("unknown table %d (1-9)" % args.n, file=sys.stderr)
        return 2
    print(generators[args.n]().render())
    return 0


def cmd_figure7(args):
    from repro.bench import figure7

    print(figure7.generate().render())
    return 0


def cmd_report(args):
    import sys as _sys

    from repro.bench.report import generate_report

    generate_report(scale=args.scale, include_table6=not args.quick,
                    include_ablations=not args.quick, stream=_sys.stdout,
                    jobs=args.jobs)
    return 0


def cmd_chaos(args):
    from repro.faults.chaos import (ChaosSchedule, builtin_schedules,
                                    run_chaos_suite)

    kwargs = {}
    if args.file:
        kwargs["program"] = ProtectedProgram(_read(args.file))
        # the per-schedule stat expectations encode the built-in
        # workload's contention profile; for a user program only the
        # universal invariants apply
        kwargs["schedules"] = tuple(
            ChaosSchedule(schedule.plan,
                          needs_whitelist_file=schedule.needs_whitelist_file)
            for schedule in builtin_schedules())
        kwargs["require_fires"] = False
    if args.seeds:
        kwargs["seeds"] = tuple(args.seeds)
    report = run_chaos_suite(**kwargs)
    print(report.describe())
    if args.verbose:
        for case in report.cases:
            for fault in case.report.injected:
                print("  " + fault.describe())
    return 0 if report.ok else 1


def cmd_soak(args):
    from repro.bench import soakbench

    seeds = tuple(args.seeds) if args.seeds else soakbench.DEFAULT_SEEDS
    multipliers = (tuple(args.multipliers) if args.multipliers
                   else soakbench.DEFAULT_MULTIPLIERS)
    scale = args.scale
    if args.smoke:
        multipliers = multipliers[:2]
        scale = min(scale, 0.15)
    result = soakbench.generate(seeds=seeds, multipliers=multipliers,
                                scale=scale)
    print(result.render())
    status = 0
    for problem in result.check():
        print("SOAK FAIL: " + problem)
        status = 1
    case, replay = soakbench.replay_determinism_check(
        multiplier=multipliers[-1], seed=seeds[0], scale=scale)
    print("replay determinism (%s x%d): %s"
          % (case.name, case.multiplier, replay.describe()))
    if not replay.ok:
        status = 1
    if args.recall:
        cases = soakbench.corpus_recall()
        for rc in cases:
            print("recall %-8s %-9s attempts=%d%s"
                  % (rc.bug_id, rc.outcome, rc.attempts,
                     " quarantined=%s" % (rc.quarantined_ars,)
                     if rc.quarantined_ars else ""))
        if any(rc.outcome == "missed" for rc in cases):
            print("SOAK FAIL: corpus recall regression under pressure")
            status = 1
    return status


def cmd_journal(args):
    from repro.errors import JournalError
    from repro.journal.format import read_journal
    from repro.journal.postmortem import reverify
    from repro.journal.recovery import reconstruct_state

    try:
        result = read_journal(args.journal)
    except JournalError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print("journal: %d events (seq %s..%s) from %d segment(s), "
          "%d valid bytes%s"
          % (len(result.events), result.first_seq, result.last_seq,
             result.segments_read, result.valid_bytes,
             ", TORN TAIL (truncated at first corrupt frame)"
             if result.torn else ""))
    counts = {}
    for event in result.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    print("kinds: " + " ".join("%s=%d" % kv for kv in sorted(counts.items())))
    state = reconstruct_state(result.events)
    print(state.describe())
    if args.events:
        for event in result.events[:args.events]:
            print("  " + event.describe())
        if len(result.events) > args.events:
            print("  ... %d more" % (len(result.events) - args.events))
    status = 0
    if args.postmortem:
        post = reverify(result.events)
        print(post.describe())
        if not post.agrees:
            status = 1
    if not state.consistent:
        status = 1
    return status


def cmd_check(args):
    import json

    from repro.errors import JournalError
    from repro.journal.checker import check_journal

    if args.bench:
        from repro.bench import checkerbench

        payload = checkerbench.generate(smoke=args.smoke, log=print)
        print(checkerbench.render(payload))
        problems = checkerbench.validate(payload)
        for problem in problems:
            print("CHECKERBENCH FAIL: " + problem)
        if args.out:
            checkerbench.write_payload(payload, args.out)
            print("wrote %s" % args.out)
        return 1 if problems else 0
    if not args.journal:
        print("error: a journal path is required (or --bench)",
              file=sys.stderr)
        return 2
    try:
        result = check_journal(args.journal)
    except JournalError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.as_payload(), indent=2, sort_keys=True))
    else:
        print(result.describe())
    if result.status == "disagree":
        return 1
    if args.strict and result.status != "pass":
        return 3
    return 0


def _check_journal_tree(root, strict):
    """Check every ``*.journal`` under ``root``; returns (checked, bad)."""
    from repro.errors import JournalError
    from repro.journal.checker import check_journal

    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        paths.extend(os.path.join(dirpath, name) for name in filenames
                     if name.endswith(".journal"))
    checked, bad = 0, 0
    for path in sorted(paths):
        rel = os.path.relpath(path, root)
        try:
            result = check_journal(path)
        except JournalError as exc:
            print("  %s: UNREADABLE (%s)" % (rel, exc))
            bad += 1
            continue
        checked += 1
        verdict_note = "%d verdict(s)" % len(result.verdicts)
        print("  %s: %s — %s, coverage %.4f"
              % (rel, result.status.upper(), verdict_note, result.coverage))
        if result.status == "disagree" or (strict
                                           and result.status != "pass"):
            for line in result.describe().splitlines()[1:]:
                print("  " + line)
            bad += 1
    return checked, bad


def cmd_fleet_check(args):
    if args.journal_root:
        root = args.journal_root
    else:
        from repro.bench.scale import bench_config
        from repro.fleet import FleetPolicy, FleetSupervisor, app_run_jobs

        config = bench_config(mode=Mode.BUG_FINDING if args.bug_finding
                              else Mode.PREVENTION)
        specs = app_run_jobs(config, seeds=tuple(args.seeds),
                             scale=args.scale)
        supervisor = FleetSupervisor(
            workers=args.workers,
            policy=FleetPolicy(workers=max(1, args.workers), verify=False,
                               collect_journals=True,
                               start_method=args.start_method))
        fleet = supervisor.run_jobs(specs)
        print(fleet.describe())
        root = supervisor.journal_root()
    print("checking journals under %s" % root)
    checked, bad = _check_journal_tree(root, args.strict)
    print("fleet check: %d journal(s), %d problem(s)" % (checked, bad))
    if checked == 0:
        print("FLEET CHECK FAIL: no journals found", file=sys.stderr)
        return 2
    return 1 if bad else 0


def cmd_replay(args):
    from repro.errors import JournalError
    from repro.journal.replay import replay_run

    pp = ProtectedProgram(_read(args.file))
    try:
        result = replay_run(pp, args.journal,
                            check_source=not args.no_source_check)
    except JournalError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(result.describe())
    print("replayed run: output=%s" % (result.report.output,))
    print(result.report.summary())
    return 0 if result.ok and result.verdicts_match else 1


def cmd_fleet_run(args):
    from repro.bench.scale import bench_config
    from repro.fleet import FleetPolicy, FleetSupervisor, app_run_jobs

    config = bench_config(mode=Mode.BUG_FINDING if args.bug_finding
                          else Mode.PREVENTION)
    specs = app_run_jobs(config, seeds=tuple(args.seeds), scale=args.scale)
    if args.rounds > 1:
        # rebinning rounds: run the same batch N times, feeding each
        # round's violated ARs back into the conflict binning, and pin
        # the aggregate digest across rounds (rebinning is pure
        # scheduling, so any digest drift is a bug)
        from repro.fleet import run_binned_rounds

        policy = FleetPolicy(workers=max(1, args.workers),
                             verify=not args.no_verify,
                             start_method=args.start_method)
        supervisor = FleetSupervisor(workers=args.workers, policy=policy)
        outcome = run_binned_rounds(supervisor, specs, rounds=args.rounds,
                                    log=print)
        print(outcome.last.describe())
        print(outcome.last.aggregate().summary())
        print("violation history: %d hot AR(s)" % len(outcome.history))
        if not outcome.digests_agree:
            print("FLEET FAIL: rebinning changed the aggregate digest")
            return 1
        print("determinism check: %d round digests agree"
              % len(outcome.rounds))
        return 0 if outcome.last.ok else 1
    if args.bin_by_conflict:
        from repro.fleet import bin_jobs_by_conflict

        specs, weights = bin_jobs_by_conflict(specs)
        print("conflict binning (heaviest first): "
              + " ".join("%s=%d" % (s.job_id, weights[s.job_id])
                         for s in specs))
    if args.crash_drill:
        specs[0].params["crash"] = {"at_frame": 5, "torn": 1}
    policy = FleetPolicy(workers=max(1, args.workers),
                         verify=not args.no_verify,
                         start_method=args.start_method)
    result = FleetSupervisor(workers=args.workers, policy=policy).run_jobs(
        specs)
    print(result.describe())
    aggregate = result.aggregate()
    print(aggregate.summary())
    status = 0 if result.ok else 1
    if args.check:
        # re-run the same batch inline; the aggregate digest must match
        inline = FleetSupervisor(workers=0, policy=FleetPolicy(
            workers=1, verify=False)).run_jobs(
                [s.without_crash_drill() for s in specs])
        if inline.aggregate().digest() != aggregate.digest():
            print("FLEET FAIL: aggregate differs from inline reference")
            status = 1
        else:
            print("determinism check: fleet aggregate == inline reference")
    return status


def cmd_fleet_train(args):
    from repro.bench.scale import bench_config
    from repro.fleet import FleetSupervisor, federated_train
    from repro.fleet.supervisor import FleetPolicy
    from repro.workloads.catalog import workload_suite

    matches = [w for w in workload_suite(scale=args.scale)
               if w.name.lower() == args.app.lower()]
    if not matches:
        print("unknown app %r (see: kivati apps)" % args.app,
              file=sys.stderr)
        return 2
    workload = matches[0]
    config = bench_config(mode=Mode.BUG_FINDING)
    seed_rounds = [[args.seed_base + r * args.seeds_per_round + i
                    for i in range(args.seeds_per_round)]
                   for r in range(args.rounds)]
    supervisor = FleetSupervisor(
        workers=args.workers,
        policy=FleetPolicy(workers=max(1, args.workers), verify=False,
                           collect_journals=False,
                           start_method=args.start_method))
    fed = federated_train(supervisor, workload.source, config, seed_rounds,
                          shards=args.shards, shard_dir=args.shard_dir)
    print(fed.describe())
    status = 0
    if args.check:
        from repro.core.training import train_rounds

        serial = train_rounds(ProtectedProgram(workload.source), config,
                              seed_rounds)
        if (serial.whitelist != fed.whitelist
                or serial.iterations != fed.iterations):
            print("FLEET FAIL: federated training != serial reference")
            status = 1
        else:
            print("equivalence check: federated == serial training")
    if args.out:
        from repro.runtime.whitelist import Whitelist

        Whitelist.write_file(args.out, fed.whitelist,
                             comment="federated training (%d shards)"
                             % args.shards)
        print("whitelist written: %s (%d ARs)"
              % (args.out, len(fed.whitelist)))
    return status


def cmd_fleet_bench(args):
    from repro.bench import fleetbench

    workers_list = tuple(args.workers) if args.workers \
        else fleetbench.DEFAULT_WORKERS
    scale = args.scale
    seeds = fleetbench.DEFAULT_SEEDS
    if args.smoke:
        workers_list = tuple(w for w in workers_list if w <= 2) or (1, 2)
        scale = min(scale, 0.25)
        seeds = seeds[:1]
    payload = fleetbench.generate(workers_list=workers_list, scale=scale,
                                  seeds=seeds,
                                  start_method=args.start_method,
                                  crash_drill=args.crash_drill)
    print(fleetbench.render(payload))
    problems = fleetbench.validate(payload,
                                   require_speedup=args.assert_speedup)
    for problem in problems:
        print("FLEETBENCH FAIL: " + problem)
    if args.out:
        fleetbench.write_payload(payload, args.out)
        print("wrote %s" % args.out)
    return 1 if problems else 0


def cmd_conflict_bench(args):
    from repro.bench import conflictbench

    seeds = (tuple(args.seeds) if args.seeds
             else conflictbench.DEFAULT_SEEDS)
    payload = conflictbench.generate(scale=args.scale, seeds=seeds,
                                     num_cores=args.cores,
                                     smoke=args.smoke)
    print(conflictbench.render(payload))
    problems = conflictbench.validate(payload)
    for problem in problems:
        print("CONFLICTBENCH FAIL: " + problem)
    if args.out:
        conflictbench.write_payload(payload, args.out)
        print("wrote %s" % args.out)
    return 1 if problems else 0


def cmd_fuzz_gen(args):
    import json

    from repro.fuzz.generator import FuzzParams, generate_source

    if args.params:
        params = FuzzParams.from_dict(json.loads(args.params))
    else:
        from random import Random

        params = FuzzParams.sampled(Random(args.seed))
    source = generate_source(params, args.seed)
    if args.out:
        with open(args.out, "w") as f:
            f.write(source)
        print("wrote %s (%s)" % (args.out, params.as_dict()))
    else:
        print(source, end="")
    return 0


def cmd_fuzz_run(args):
    from repro.fuzz.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        n_programs=args.programs, base_seed=args.base_seed,
        workers=args.workers, drill_every=args.drill_every,
        corpus_dir=args.corpus, chaos=args.chaos,
        minimize_tests=args.minimize_tests, fix=not args.no_fix,
        rounds=args.rounds)
    result = run_campaign(spec, log=print)
    print(result.describe())
    if not result.ok:
        return 1
    if args.strict and result.archived:
        return 3
    return 0


def cmd_fuzz_minimize(args):
    from repro.fuzz.campaign import divergence_predicate, fuzz_config
    from repro.fuzz.minimize import minimize
    from repro.minic.parser import parse

    threads = sum(1 for _ in parse(_read(args.file)).funcs) - 1
    config = fuzz_config(max(threads, 1), max_steps=20_000)
    kinds = args.kinds.split(",")
    predicate = divergence_predicate(kinds, config, args.seed,
                                     drill=args.drill)
    try:
        result = minimize(_read(args.file), predicate,
                          max_tests=args.max_tests)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print(result.describe(), file=sys.stderr)
    print(result.source, end="")
    return 0


def cmd_fuzz_fix(args):
    from repro.fuzz.campaign import fuzz_config
    from repro.fuzz.fix import synthesize_fix
    from repro.minic.parser import parse

    threads = sum(1 for _ in parse(_read(args.file)).funcs) - 1
    config = fuzz_config(max(threads, 1))
    outcome = synthesize_fix(_read(args.file), config, args.seed)
    print(outcome.describe(), file=sys.stderr)
    if not outcome.verified:
        return 1
    print(outcome.fixed_source, end="")
    return 0


def cmd_fuzz_bench(args):
    from repro.bench import fuzzbench

    overrides = {}
    if args.programs is not None:
        overrides["n_programs"] = args.programs
    if args.workers is not None:
        overrides["workers"] = args.workers
    payload = fuzzbench.generate(smoke=args.smoke, corpus_dir=args.corpus,
                                 log=print, **overrides)
    print(fuzzbench.render(payload))
    problems = fuzzbench.validate(payload)
    for problem in problems:
        print("FUZZBENCH FAIL: " + problem)
    if args.out:
        fuzzbench.write_payload(payload, args.out)
        print("wrote %s" % args.out)
    if problems:
        return 1
    if args.strict and payload["campaign"]["archived"]:
        return 3
    return 0


def cmd_serve(args):
    from repro.service import KivatiDaemon, ServicePolicy

    warm_sources = []
    if args.warm_apps:
        from repro.workloads.catalog import workload_suite

        warm_sources = [w.source for w in workload_suite(scale=args.scale)]
    policy = ServicePolicy(
        workers=args.workers, start_method=args.start_method,
        heartbeat_s=args.heartbeat, rss_limit_kb=args.rss_limit_kb,
        max_jobs_per_worker=args.max_jobs_per_worker,
        default_deadline_s=args.deadline, max_retries=args.max_retries,
        poison_kills=args.poison_kills, verify=not args.no_verify,
        verify_backend=args.verify_backend, warm_sources=warm_sources)
    daemon = KivatiDaemon(args.socket, policy,
                          journal_root=args.journal_root)
    print("kivati serve: %d warm worker(s) on %s (SIGTERM drains)"
          % (args.workers, args.socket))
    sys.stdout.flush()
    return daemon.serve_forever()


def cmd_service(args):
    import json

    from repro.service import ServiceClient, ServiceUnavailable

    try:
        with ServiceClient(args.socket, timeout=args.timeout) as client:
            if args.service_command == "ping":
                response = client.ping()
            elif args.service_command == "stats":
                response = client.stats()
            elif args.service_command == "events":
                response = client.events(limit=args.limit)
            elif args.service_command == "drain":
                response = client.drain()
            else:  # run
                from repro.fleet.jobs import JobSpec

                config = KivatiConfig(
                    mode=Mode.BUG_FINDING if args.bug_finding
                    else Mode.PREVENTION, seed=args.seed)
                spec = JobSpec.for_config(args.job_id, "run",
                                          _read(args.file), config)
                response = client.submit(spec, deadline_s=args.deadline)
    except ServiceUnavailable as exc:
        print("service unavailable: %s" % exc, file=sys.stderr)
        return 1
    if getattr(args, "prom", False):
        from repro.obs.prom import render_flat

        values = dict(response.get("stats") or {})
        values["pending"] = response.get("pending", 0)
        values["draining"] = bool(response.get("draining"))
        pool = response.get("pool") or {}
        for key in ("workers", "spawned", "recycled"):
            values["pool_" + key] = pool.get(key, 0)
        sys.stdout.write(render_flat(values, prefix="kivati_service_"))
        return 0 if response.get("ok") else 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def cmd_service_bench(args):
    from repro.bench import servicebench

    rates = tuple(args.rates) if args.rates else servicebench.DEFAULT_RATES
    payload = servicebench.generate(
        workers=args.workers, rates=rates,
        requests_per_rate=args.requests, scale=args.scale, seed=args.seed,
        start_method=args.start_method, smoke=args.smoke)
    print(servicebench.render(payload))
    problems = servicebench.validate(payload, min_speedup=args.min_speedup,
                                     require_speedup=args.assert_speedup)
    for problem in problems:
        print("SERVICEBENCH FAIL: " + problem)
    if args.out:
        servicebench.write_payload(payload, args.out)
        print("wrote %s" % args.out)
    return 1 if problems else 0


def cmd_apps(args):
    from repro.workloads.catalog import workload_suite

    for workload in workload_suite():
        pp = ProtectedProgram(workload.source)
        print("%-9s threads=%d ARs=%d  %s"
              % (workload.name, workload.threads, pp.num_ars,
                 workload.description))
    return 0


def cmd_obs_report(args):
    from repro.obs import ObsPlane

    obs = ObsPlane(wall_time=args.wall)
    pp = ProtectedProgram(_read(args.file))
    config = KivatiConfig(
        mode=Mode.BUG_FINDING if args.bug_finding else Mode.PREVENTION,
        seed=args.seed, obs=obs)
    report = pp.run(config)
    if args.json:
        import json

        print(json.dumps(obs.snapshot(), indent=2, sort_keys=True))
        return 0
    print(report.summary())
    for violation in report.violations:
        print("violation: " + violation.describe())
    print(obs.profiler.hot_path_table(top=args.top))
    return 0


def cmd_obs_export(args):
    from repro.obs.spans import (export_chrome_trace, journal_trace_events,
                                 validate_chrome_trace)

    if args.journal:
        from repro.errors import JournalError
        from repro.journal.format import read_journal

        try:
            events = read_journal(args.journal).events
        except JournalError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    elif args.file:
        from repro.journal.replay import record_run
        from repro.obs import ObsPlane

        config = KivatiConfig(
            mode=Mode.BUG_FINDING if args.bug_finding else Mode.PREVENTION,
            seed=args.seed, obs=ObsPlane())
        _, recorder = record_run(ProtectedProgram(_read(args.file)), config)
        events = recorder.events
    else:
        print("error: give a program FILE or --journal PATH",
              file=sys.stderr)
        return 2
    trace_events = journal_trace_events(events)
    problems = validate_chrome_trace({"traceEvents": trace_events})
    written = export_chrome_trace(trace_events, args.out)
    print("trace: %d event(s), %d bytes -> %s"
          % (len(trace_events), written, args.out))
    for problem in problems:
        print("OBS EXPORT FAIL: " + problem)
    return 1 if problems else 0


def cmd_obs_diff(args):
    import json

    from repro.errors import ObsError
    from repro.obs import compare_artifacts

    def load(path):
        with open(path) as f:
            return json.load(f)

    try:
        report = compare_artifacts(load(args.base), load(args.new),
                                   rel_tol_scale=args.rel_tol_scale)
    except (OSError, ValueError, ObsError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.ok else 3


def cmd_obs_bench(args):
    from repro.bench import obsbench

    payload = obsbench.generate(scale=args.scale, rounds=args.rounds,
                                smoke=args.smoke)
    print(obsbench.render(payload))
    problems = obsbench.validate(payload)
    for problem in problems:
        print("OBSBENCH FAIL: " + problem)
    if args.out:
        obsbench.write_payload(payload, args.out)
        print("wrote %s" % args.out)
    return 1 if problems else 0


def cmd_bench_validate(args):
    from repro.bench import schema as bench_schema

    if args.all:
        report = bench_schema.validate_committed(args.root)
        for path in args.files:
            report[path] = bench_schema.validate_file(path)
        if not report:
            print("no committed BENCH_*.json artifacts under %s"
                  % args.root)
            return 1
    elif args.files:
        report = {path: bench_schema.validate_file(path)
                  for path in args.files}
    else:
        print("error: give artifact FILES, or --all for the committed set",
              file=sys.stderr)
        return 2
    status = 0
    for name in sorted(report):
        problems = report[name]
        if problems:
            status = 1
            print("%s: INVALID" % name)
            for problem in problems:
                print("  " + problem)
        else:
            print("%s: ok" % name)
    return status


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="kivati",
        description="Kivati reproduction: detect and prevent atomicity "
                    "violations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--cores", type=int, default=2)
        p.add_argument("--watchpoints", type=int, default=4)
        p.add_argument("--opt", default="optimized",
                       choices=[level.value for level in OptLevel])
        p.add_argument("--bug-finding", action="store_true")
        p.add_argument("--trace", action="store_true",
                       help="record and print an execution trace")

    p = sub.add_parser("annotate", help="print the annotated program")
    p.add_argument("file")
    p.add_argument("--interprocedural", action="store_true",
                   help="enable the Section 3.5 inter-procedural extension")
    p.add_argument("--dump-analysis", action="store_true",
                   help="print per-function locksets, guard verdicts and "
                        "AR prune classifications instead of the program")
    p.add_argument("--dump-footprints", action="store_true",
                   help="print per-function and per-AR may-read/may-write "
                        "footprints and the inter-AR conflict graph")
    p.add_argument("--json", action="store_true",
                   help="with --dump-analysis/--dump-footprints, emit JSON")
    p.set_defaults(fn=cmd_annotate)

    p = sub.add_parser("lint", help="static lock-discipline diagnostics")
    p.add_argument("files", nargs="*",
                   help="mini-C source files to lint")
    p.add_argument("--corpus", action="store_true",
                   help="also lint the built-in bug corpus and app models")
    p.add_argument("--json", action="store_true",
                   help="emit diagnostics as JSON keyed by input name")
    p.add_argument("--sarif", action="store_true",
                   help="emit diagnostics as a SARIF 2.1.0 document")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("run", help="run a program under Kivati")
    p.add_argument("file")
    add_common(p)
    p.add_argument("--journal", metavar="PATH",
                   help="record a crash-safe replayable journal to PATH")
    p.add_argument("--strict", action="store_true",
                   help="exit 3 if any atomicity violation is detected")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("vanilla", help="run a program uninstrumented")
    p.add_argument("file")
    add_common(p)
    p.set_defaults(fn=cmd_vanilla)

    p = sub.add_parser("bugs", help="run the bug-detection campaign")
    p.add_argument("ids", nargs="*")
    p.add_argument("--attempts", type=int, default=40)
    p.add_argument("--bug-finding", action="store_true")
    p.add_argument("--strict", action="store_true",
                   help="exit 3 if any bug is detected")
    p.set_defaults(fn=cmd_bugs)

    p = sub.add_parser("table", help="regenerate a table from the paper")
    p.add_argument("n", type=int)
    p.set_defaults(fn=cmd_table)

    p = sub.add_parser("figure7", help="regenerate Figure 7")
    p.set_defaults(fn=cmd_figure7)

    p = sub.add_parser("report", help="regenerate the full evaluation")
    p.add_argument("--scale", type=float, default=0.6)
    p.add_argument("--quick", action="store_true",
                   help="skip Table 6 and the ablations (the slow parts)")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan the shared measurement pass out over N fleet "
                        "workers (default 1: serial, byte-identical "
                        "output)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("apps", help="list the application models")
    p.set_defaults(fn=cmd_apps)

    p = sub.add_parser("chaos", help="run the fault-injection chaos suite")
    p.add_argument("file", nargs="?", default=None,
                   help="program to stress (default: built-in workload)")
    p.add_argument("--seeds", type=int, nargs="*",
                   help="seeds to run each schedule on (default: 1 2 3)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every injected fault")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("soak",
                       help="soak the app suite under overload + faults")
    p.add_argument("--seeds", type=int, nargs="*",
                   help="seeds per (app, multiplier) point (default: 0 1)")
    p.add_argument("--multipliers", type=int, nargs="*",
                   help="thread multipliers over the paper's counts "
                        "(default: 1 2 4)")
    p.add_argument("--scale", type=float, default=0.2,
                   help="per-thread work scale factor (default: 0.2)")
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized sweep: multipliers 1-2, reduced "
                        "per-thread work")
    p.add_argument("--recall", action="store_true",
                   help="also run the 11-bug detection campaign under "
                        "the pressure plane")
    p.set_defaults(fn=cmd_soak)

    p = sub.add_parser("journal",
                       help="inspect a recorded journal (torn-tolerant)")
    p.add_argument("journal", help="journal file written by run --journal")
    p.add_argument("--events", type=int, default=0, metavar="N",
                   help="also print the first N events")
    p.add_argument("--postmortem", action="store_true",
                   help="re-verify serializability offline; exit 1 on any "
                        "disagreement with the online detector")
    p.set_defaults(fn=cmd_journal)

    p = sub.add_parser(
        "check",
        help="streaming offline checker: re-derive every verdict from a "
             "journal without re-execution (corruption-tolerant)")
    p.add_argument("journal", nargs="?",
                   help="journal file (may be damaged)")
    p.add_argument("--strict", action="store_true",
                   help="exit 3 unless the journal is intact and every "
                        "verdict agrees (partial coverage fails)")
    p.add_argument("--json", action="store_true",
                   help="print the full machine-readable check payload")
    p.add_argument("--bench", action="store_true",
                   help="run the checker benchmark (BENCH_checker.json) "
                        "instead of checking a journal")
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized --bench run (timing gates relaxed)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the --bench artifact here")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("fleet",
                       help="multi-process sharded runs and training")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    def add_fleet_common(fp):
        fp.add_argument("--workers", type=int, default=2,
                        help="worker processes (0 = inline, default 2)")
        fp.add_argument("--start-method", default="spawn",
                        choices=["spawn", "fork", "forkserver"])
        fp.add_argument("--scale", type=float, default=0.4,
                        help="per-thread work scale factor")

    fp = fleet_sub.add_parser(
        "run", help="shard the 5-app suite over a worker pool")
    add_fleet_common(fp)
    fp.add_argument("--seeds", type=int, nargs="*", default=[3],
                    help="seeds per application (default: 3)")
    fp.add_argument("--bug-finding", action="store_true")
    fp.add_argument("--crash-drill", action="store_true",
                    help="kill one worker mid-job to exercise salvage + "
                         "retry")
    fp.add_argument("--bin-by-conflict", action="store_true",
                    help="order jobs by static conflict weight (heaviest "
                         "first); pure reordering, aggregates unchanged")
    fp.add_argument("--rounds", type=int, default=1,
                    help="run the batch N times, feeding each round's "
                         "violated ARs back into the conflict binning "
                         "(digest-pinned: rebinning never changes the "
                         "aggregate)")
    fp.add_argument("--no-verify", action="store_true",
                    help="skip supervisor-side replay verification")
    fp.add_argument("--check", action="store_true",
                    help="also run inline and assert identical aggregates")
    fp.set_defaults(fn=cmd_fleet_run)

    fp = fleet_sub.add_parser(
        "check",
        help="run the suite through the fleet, then offline-check every "
             "journal it produced (or sweep --journal-root)")
    add_fleet_common(fp)
    fp.add_argument("--seeds", type=int, nargs="*", default=[3],
                    help="seeds per application (default: 3)")
    fp.add_argument("--bug-finding", action="store_true")
    fp.add_argument("--journal-root", default=None, metavar="DIR",
                    help="skip the fleet run; check every *.journal under "
                         "DIR instead")
    fp.add_argument("--strict", action="store_true",
                    help="fail on partial coverage, not just disagreement")
    fp.set_defaults(fn=cmd_fleet_check)

    fp = fleet_sub.add_parser(
        "train", help="federated whitelist training over shards")
    add_fleet_common(fp)
    fp.add_argument("--app", default="NSS",
                    help="application model to train on (default: NSS)")
    fp.add_argument("--shards", type=int, default=2)
    fp.add_argument("--rounds", type=int, default=3)
    fp.add_argument("--seeds-per-round", type=int, default=4)
    fp.add_argument("--seed-base", type=int, default=100)
    fp.add_argument("--shard-dir", default=None,
                    help="write per-shard + merged whitelist files here")
    fp.add_argument("--out", default=None,
                    help="write the trained whitelist to this file")
    fp.add_argument("--check", action="store_true",
                    help="assert federated == serial training")
    fp.set_defaults(fn=cmd_fleet_train)

    fp = fleet_sub.add_parser(
        "bench", help="fleet throughput benchmark (BENCH_fleet.json)")
    fp.add_argument("--workers", type=int, nargs="*", default=None,
                    help="worker counts to sweep (default: 1 2 4)")
    fp.add_argument("--start-method", default="spawn",
                    choices=["spawn", "fork", "forkserver"])
    fp.add_argument("--scale", type=float, default=0.6,
                    help="per-thread work scale factor")
    fp.add_argument("--crash-drill", action="store_true",
                    help="include a worker kill + recovery in the "
                         "measured run")
    fp.add_argument("--smoke", action="store_true",
                    help="CI-sized: workers <= 2, reduced scale")
    fp.add_argument("--assert-speedup", action="store_true",
                    help="fail unless 4 workers reach >= 1.8x jobs/sec "
                         "(for multi-core hosts)")
    fp.add_argument("--out", default=None, metavar="PATH",
                    help="write the artifact JSON to PATH")
    fp.set_defaults(fn=cmd_fleet_bench)

    p = sub.add_parser(
        "conflict",
        help="conflict-footprint analysis tooling")
    conflict_sub = p.add_subparsers(dest="conflict_cmd", required=True)
    cp = conflict_sub.add_parser(
        "bench",
        help="conflict-aware scheduling benchmark (BENCH_conflict.json)")
    cp.add_argument("--scale", type=float, default=1.0,
                    help="per-thread work scale factor")
    cp.add_argument("--seeds", type=int, nargs="*", default=None,
                    help="seeds to sum over (default: 0 1 2 3)")
    cp.add_argument("--cores", type=int, default=2,
                    help="machine cores (oversubscribed vs app threads)")
    cp.add_argument("--smoke", action="store_true",
                    help="CI-sized: one seed, reduced scale, 3-bug "
                         "corpus slice, improvement gate relaxed")
    cp.add_argument("--out", default=None, metavar="PATH",
                    help="write the artifact JSON to PATH")
    cp.set_defaults(fn=cmd_conflict_bench)

    p = sub.add_parser("fuzz",
                       help="generative workload fuzzing of the detector")
    fuzz_sub = p.add_subparsers(dest="fuzz_cmd", required=True)

    zp = fuzz_sub.add_parser("gen", help="emit one generated mini-C program")
    zp.add_argument("--seed", type=int, default=0,
                    help="generator seed (also samples params)")
    zp.add_argument("--params", default=None, metavar="JSON",
                    help="explicit FuzzParams as a JSON object")
    zp.add_argument("--out", default=None, metavar="PATH")
    zp.set_defaults(fn=cmd_fuzz_gen)

    zp = fuzz_sub.add_parser(
        "run", help="run a fuzz campaign through the fleet")
    zp.add_argument("--programs", type=int, default=50)
    zp.add_argument("--base-seed", type=int, default=0)
    zp.add_argument("--workers", type=int, default=0,
                    help="fleet worker processes (0 = inline)")
    zp.add_argument("--drill-every", type=int, default=10,
                    help="journal-loss drill on every k-th program "
                         "(0 disables)")
    zp.add_argument("--corpus", default=None, metavar="DIR",
                    help="archive divergences into DIR")
    zp.add_argument("--chaos", default=None, metavar="SCHEDULE",
                    help="run under a builtin chaos schedule")
    zp.add_argument("--minimize-tests", type=int, default=250)
    zp.add_argument("--rounds", type=int, default=1,
                    help="split the batch into N fleet rounds, rebinning "
                         "each round with the violation history so far")
    zp.add_argument("--no-fix", action="store_true",
                    help="skip the fix-synthesis stage")
    zp.add_argument("--strict", action="store_true",
                    help="exit 3 when any divergence was archived")
    zp.set_defaults(fn=cmd_fuzz_run)

    zp = fuzz_sub.add_parser(
        "minimize", help="ddmin-shrink a diverging program")
    zp.add_argument("file", help="mini-C program exhibiting a divergence")
    zp.add_argument("--seed", type=int, required=True,
                    help="run seed the divergence was seen under")
    zp.add_argument("--kinds", default="reverify",
                    help="comma-separated divergence kinds to preserve")
    zp.add_argument("--drill", default=None,
                    help="journal-loss drill (e.g. drop-trigger)")
    zp.add_argument("--max-tests", type=int, default=400)
    zp.set_defaults(fn=cmd_fuzz_minimize)

    zp = fuzz_sub.add_parser(
        "fix", help="synthesize + replay-verify a fix for a violation")
    zp.add_argument("file", help="mini-C program with a confirmed violation")
    zp.add_argument("--seed", type=int, default=0)
    zp.set_defaults(fn=cmd_fuzz_fix)

    zp = fuzz_sub.add_parser(
        "bench", help="fuzz-campaign benchmark (BENCH_fuzz.json)")
    zp.add_argument("--smoke", action="store_true",
                    help="CI-sized campaign (10 programs, inline)")
    zp.add_argument("--programs", type=int, default=None,
                    help="override the campaign size")
    zp.add_argument("--workers", type=int, default=None,
                    help="override the fleet worker count")
    zp.add_argument("--corpus", default=None, metavar="DIR",
                    help="archive divergences into DIR")
    zp.add_argument("--strict", action="store_true",
                    help="exit 3 when any divergence was archived")
    zp.add_argument("--out", default=None, metavar="PATH",
                    help="write the artifact JSON to PATH")
    zp.set_defaults(fn=cmd_fuzz_bench)

    p = sub.add_parser("serve",
                       help="long-lived warm-worker detection daemon")
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="Unix-domain socket path to listen on")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--start-method", default="spawn",
                   choices=["spawn", "fork", "forkserver"])
    p.add_argument("--heartbeat", type=float, default=1.0,
                   help="idle-worker heartbeat interval in seconds")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="default per-request deadline in seconds")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries for a request whose worker died")
    p.add_argument("--poison-kills", type=int, default=2,
                   help="worker kills before a job is quarantined")
    p.add_argument("--rss-limit-kb", type=int, default=None,
                   help="recycle an idle worker above this RSS")
    p.add_argument("--max-jobs-per-worker", type=int, default=None,
                   help="recycle an idle worker after serving this many")
    p.add_argument("--no-verify", action="store_true",
                   help="disable post-response replay verification")
    p.add_argument("--verify-backend", default="replay",
                   choices=["replay", "checker"],
                   help="post-response verifier: full pinned replay, or "
                        "the streaming offline checker (no re-execution, "
                        "sheds less monitoring debt under load)")
    p.add_argument("--warm-apps", action="store_true",
                   help="pre-compile the 5-app suite in every worker")
    p.add_argument("--scale", type=float, default=0.4,
                   help="scale for --warm-apps pre-compilation")
    p.add_argument("--journal-root", default=None, metavar="DIR",
                   help="directory for worker journals (default: tmpdir)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("service", help="talk to a running kivati serve")
    service_sub = p.add_subparsers(dest="service_command", required=True)

    def add_service_common(sp):
        sp.add_argument("--socket", required=True, metavar="PATH")
        sp.add_argument("--timeout", type=float, default=60.0)

    for name, help_text in (("ping", "liveness probe"),
                            ("stats", "daemon stats + pool detail"),
                            ("drain", "ask the daemon to drain and exit")):
        sp = service_sub.add_parser(name, help=help_text)
        add_service_common(sp)
        if name == "stats":
            sp.add_argument("--prom", action="store_true",
                            help="emit Prometheus text exposition instead "
                                 "of JSON")
        sp.set_defaults(fn=cmd_service)

    sp = service_sub.add_parser("events", help="tail the service log")
    add_service_common(sp)
    sp.add_argument("--limit", type=int, default=100)
    sp.set_defaults(fn=cmd_service)

    sp = service_sub.add_parser("run",
                                help="submit one detection job")
    add_service_common(sp)
    sp.add_argument("file", help="mini-C program to run under Kivati")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--deadline", type=float, default=None,
                    help="per-request deadline (default: daemon policy)")
    sp.add_argument("--bug-finding", action="store_true")
    sp.add_argument("--job-id", default="cli-run")
    sp.set_defaults(fn=cmd_service)

    sp = service_sub.add_parser(
        "bench", help="sustained-traffic benchmark (BENCH_service.json)")
    sp.add_argument("--workers", type=int, default=2)
    sp.add_argument("--start-method", default="spawn",
                    choices=["spawn", "fork", "forkserver"])
    sp.add_argument("--rates", type=float, nargs="*", default=None,
                    help="Poisson arrival rates in req/s (default: 4 8 16)")
    sp.add_argument("--requests", type=int, default=30,
                    help="requests per rate (default: 30)")
    sp.add_argument("--scale", type=float, default=0.05,
                    help="app-suite scale for the determinism gate")
    sp.add_argument("--seed", type=int, default=7)
    sp.add_argument("--min-speedup", type=float, default=5.0,
                    help="required warm-vs-cold p50 speedup")
    sp.add_argument("--assert-speedup", action="store_true",
                    help="hold the full speedup gate even on single-CPU "
                         "hosts (otherwise relaxed there)")
    sp.add_argument("--smoke", action="store_true",
                    help="CI-sized: fewer requests and samples")
    sp.add_argument("--out", default=None, metavar="PATH",
                    help="write the artifact JSON to PATH")
    sp.set_defaults(fn=cmd_service_bench)

    p = sub.add_parser("obs",
                       help="observability plane: profiles, traces, "
                            "perf-regression diffs")
    obs_sub = p.add_subparsers(dest="obs_cmd", required=True)

    op = obs_sub.add_parser(
        "report", help="run a program with the obs plane and print the "
                       "VM hot-path profile")
    op.add_argument("file", help="mini-C program to profile")
    op.add_argument("--seed", type=int, default=0)
    op.add_argument("--bug-finding", action="store_true")
    op.add_argument("--wall", action="store_true",
                    help="also attribute host wall-clock time per opcode "
                         "(non-deterministic columns)")
    op.add_argument("--top", type=int, default=12,
                    help="opcodes to show in the hot-path table")
    op.add_argument("--json", action="store_true",
                    help="print the merged metrics snapshot as JSON")
    op.set_defaults(fn=cmd_obs_report)

    op = obs_sub.add_parser(
        "export", help="export an AR-lifecycle Chrome trace (Perfetto-"
                       "viewable) from a run or a recorded journal")
    op.add_argument("file", nargs="?", default=None,
                    help="mini-C program to run and trace")
    op.add_argument("--journal", default=None, metavar="PATH",
                    help="convert an existing journal instead of running")
    op.add_argument("--seed", type=int, default=0)
    op.add_argument("--bug-finding", action="store_true")
    op.add_argument("--out", required=True, metavar="PATH",
                    help="trace JSON output path")
    op.set_defaults(fn=cmd_obs_export)

    op = obs_sub.add_parser(
        "diff", help="perf-regression sentinel: diff two BENCH_*.json "
                     "artifacts (exit 3 on regression)")
    op.add_argument("base", help="baseline artifact JSON")
    op.add_argument("new", help="candidate artifact JSON")
    op.add_argument("--rel-tol-scale", type=float, default=1.0,
                    help="scale every relative tolerance (CI dry-runs on "
                         "noisy hosts pass 2.0)")
    op.add_argument("--json", action="store_true",
                    help="emit the report as JSON")
    op.set_defaults(fn=cmd_obs_diff)

    op = obs_sub.add_parser(
        "bench", help="obs overhead + transparency benchmark "
                      "(BENCH_obs.json)")
    op.add_argument("--scale", type=float, default=0.2,
                    help="per-thread work scale factor")
    op.add_argument("--rounds", type=int, default=10,
                    help="paired on/off timing rounds per app")
    op.add_argument("--smoke", action="store_true",
                    help="CI-sized: fewer rounds, 3-bug corpus slice, "
                         "overhead gate relaxed")
    op.add_argument("--out", default=None, metavar="PATH",
                    help="write the artifact JSON to PATH")
    op.set_defaults(fn=cmd_obs_bench)

    p = sub.add_parser("bench", help="benchmark-artifact tooling")
    bench_sub = p.add_subparsers(dest="bench_cmd", required=True)
    bp = bench_sub.add_parser(
        "validate", help="schema-check BENCH_*.json artifacts")
    bp.add_argument("files", nargs="*",
                    help="artifact files to validate")
    bp.add_argument("--all", action="store_true",
                    help="also validate every committed BENCH_*.json")
    bp.add_argument("--root", default=".",
                    help="repo root for --all (default: .)")
    bp.set_defaults(fn=cmd_bench_validate)

    p = sub.add_parser("replay",
                       help="replay a journaled run and check determinism")
    p.add_argument("file", help="the mini-C program that was recorded")
    p.add_argument("journal", help="journal file written by run --journal")
    p.add_argument("--no-source-check", action="store_true",
                   help="skip the source-hash match check")
    p.set_defaults(fn=cmd_replay)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
