"""Wire protocol of the detection service: length-prefixed JSON frames.

One frame on the wire is::

    <u32 big-endian payload length> <payload: UTF-8 canonical JSON>

Requests are objects with an ``op`` field (``submit``, ``ping``,
``stats``, ``events``, ``drain``); responses echo the request's
``request_id`` (when given) and carry either ``ok: true`` plus
op-specific fields or ``ok: false`` plus a structured ``error`` object
``{"kind": ..., "message": ...}`` with a stable machine-readable kind.

The framing layer is deliberately paranoid — it is the daemon's first
line of defense against hostile input. A garbage length prefix cannot
trigger a huge allocation (:data:`MAX_FRAME_BYTES` cap), a truncated or
undecodable payload raises :class:`repro.errors.ProtocolError` with a
stable kind instead of tearing down the reader, and a clean EOF between
frames reads as ``None`` (client hung up) rather than an error.
"""

import json
import socket
import struct

from repro.errors import ProtocolError

_HEADER = struct.Struct(">I")

#: Defensive cap on one frame's payload; a garbage length field must
#: not trigger a huge read (mirrors the journal format's cap).
MAX_FRAME_BYTES = 1 << 24

#: Stable error kinds a response's ``error.kind`` may carry.
ERROR_KINDS = (
    "malformed-frame",   # undecodable/oversized frame; connection closes
    "unknown-op",        # op not recognized
    "invalid-spec",      # submit payload is not a valid JobSpec
    "overloaded",        # admission control: queue above reject watermark
    "poison",            # job quarantined after killing too many workers
    "deadline",          # request deadline expired
    "draining",          # daemon is draining; no new work accepted
    "internal",          # unexpected daemon-side failure
)


def canonical_bytes(obj):
    """Deterministic JSON encoding of one frame payload."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def send_frame(sock, obj):
    """Frame and send one JSON object over ``sock``."""
    payload = canonical_bytes(obj)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError("frame-too-large",
                            "payload of %d bytes exceeds cap" % len(payload))
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock, n):
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionResetError, BrokenPipeError):
            chunk = b""
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise ProtocolError(
                "malformed-frame",
                "connection closed mid-frame (%d of %d bytes)"
                % (n - remaining, n))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    """Receive one frame; returns the decoded object, or None on a clean
    disconnect between frames. Raises ProtocolError on garbage."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError("malformed-frame",
                            "frame length %d exceeds cap" % length)
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("malformed-frame", "EOF after frame header")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed-frame",
                            "undecodable payload: %s" % exc)
    if not isinstance(obj, dict):
        raise ProtocolError("malformed-frame",
                            "frame payload is not an object")
    return obj


def error_response(kind, message, request_id=None):
    if kind not in ERROR_KINDS:
        raise ProtocolError("internal", "unknown error kind %r" % kind)
    resp = {"ok": False, "error": {"kind": kind, "message": message}}
    if request_id is not None:
        resp["request_id"] = request_id
    return resp


def ok_response(request_id=None, **fields):
    resp = {"ok": True}
    if request_id is not None:
        resp["request_id"] = request_id
    resp.update(fields)
    return resp


def connect(socket_path, timeout=None):
    """Open a client connection to a daemon socket."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    sock.connect(socket_path)
    return sock


__all__ = ["ERROR_KINDS", "MAX_FRAME_BYTES", "canonical_bytes", "connect",
           "error_response", "ok_response", "recv_frame", "send_frame"]
