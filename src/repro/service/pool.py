"""Warm worker pool for the detection service.

A :class:`WarmPool` owns N long-lived worker processes running
:func:`repro.fleet.worker.worker_main` — the same loop the fleet batch
plane uses, so service jobs and fleet jobs cannot drift — and keeps them
*warm*: at spawn each worker pre-imports the whole detection stack
(paid once, off the request path) and pre-compiles the configured
workload programs and whitelist files, so a request's latency is the
simulation itself, not interpreter + import + compile.

The pool's robustness duties are mechanical and local:

- **liveness bookkeeping** — every message a worker emits (claim, done,
  warmed, idle heartbeat) refreshes ``last_seen``, ``rss_kb`` and
  ``jobs_served`` on its handle;
- **health recycling** — an *idle* worker whose RSS crossed the ceiling
  or that served its jobs cap is retired gracefully (shutdown sentinel,
  bounded join, SIGTERM fallback) and replaced; a *stuck or dead* worker
  is recycled forcibly (SIGTERM first — the worker's handler closes its
  journal frame-clean — then SIGKILL after a grace period);
- **spawn hygiene** — replacement workers get fresh ids, their own
  journal dirs, and the same warm set.

What the pool deliberately does not know: deadlines, retries, poison
accounting, admission — that is the daemon dispatcher's job
(:mod:`repro.service.daemon`).
"""

import os
import queue as queue_mod
import time

from repro.errors import ConfigError
from repro.fleet.worker import worker_main


class PoolPolicy:
    """Knobs for worker lifecycle and warmth."""

    __slots__ = ("workers", "start_method", "heartbeat_s", "rss_limit_kb",
                 "max_jobs_per_worker", "collect_journals", "warm_sources",
                 "warm_whitelists", "join_timeout_s")

    def __init__(self, workers=2, start_method="spawn", heartbeat_s=1.0,
                 rss_limit_kb=None, max_jobs_per_worker=None,
                 collect_journals=True, warm_sources=(),
                 warm_whitelists=(), join_timeout_s=5.0):
        if workers < 1:
            raise ConfigError("service pool needs at least 1 worker")
        if start_method not in ("spawn", "fork", "forkserver"):
            raise ConfigError("unknown start method %r" % (start_method,))
        if rss_limit_kb is not None and rss_limit_kb < 1:
            raise ConfigError("rss_limit_kb must be positive")
        if max_jobs_per_worker is not None and max_jobs_per_worker < 1:
            raise ConfigError("max_jobs_per_worker must be >= 1")
        self.workers = workers
        self.start_method = start_method
        self.heartbeat_s = heartbeat_s
        self.rss_limit_kb = rss_limit_kb
        self.max_jobs_per_worker = max_jobs_per_worker
        self.collect_journals = collect_journals
        self.warm_sources = tuple(warm_sources)
        self.warm_whitelists = tuple(warm_whitelists)
        self.join_timeout_s = join_timeout_s


class WarmWorker:
    """Pool-side handle for one warm worker process."""

    __slots__ = ("worker_id", "process", "job_queue", "journal_dir",
                 "inflight", "dispatched_at", "last_seen", "jobs_served",
                 "rss_kb", "warmed")

    def __init__(self, worker_id, process, job_queue, journal_dir):
        self.worker_id = worker_id
        self.process = process
        self.job_queue = job_queue
        self.journal_dir = journal_dir
        self.inflight = None          # opaque request object or None
        self.dispatched_at = None
        self.last_seen = time.perf_counter()
        self.jobs_served = 0
        self.rss_kb = 0
        self.warmed = False

    @property
    def idle(self):
        return self.inflight is None

    def heartbeat_age(self):
        return time.perf_counter() - self.last_seen

    def describe(self):
        return ("%s pid=%s %s jobs=%d rss=%dKiB hb=%.1fs ago"
                % (self.worker_id, self.process.pid,
                   "idle" if self.idle else "busy", self.jobs_served,
                   self.rss_kb, self.heartbeat_age()))


class WarmPool:
    """N warm workers behind per-worker dispatch queues and one shared
    result queue; see the module docstring for the division of labor."""

    def __init__(self, policy, journal_root):
        self.policy = policy
        self.journal_root = journal_root
        self.workers = {}
        self._ctx = None
        self.result_queue = None
        self._next_id = 0
        self.workers_spawned = 0
        self.workers_recycled = 0
        self.started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        import multiprocessing as mp

        self._ctx = mp.get_context(self.policy.start_method)
        self.result_queue = self._ctx.Queue()
        for _ in range(self.policy.workers):
            self.spawn_worker()
        self.started = True

    def spawn_worker(self):
        worker_id = "sw%d" % self._next_id
        self._next_id += 1
        journal_dir = None
        if self.policy.collect_journals:
            journal_dir = os.path.join(self.journal_root, worker_id)
            os.makedirs(journal_dir, exist_ok=True)
        job_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, job_queue, self.result_queue, journal_dir,
                  self.policy.heartbeat_s),
            daemon=True)
        process.start()
        worker = WarmWorker(worker_id, process, job_queue, journal_dir)
        self.workers[worker_id] = worker
        self.workers_spawned += 1
        if self.policy.warm_sources or self.policy.warm_whitelists:
            job_queue.put({"op": "warm",
                           "sources": list(self.policy.warm_sources),
                           "whitelists": list(self.policy.warm_whitelists)})
        return worker

    def retire(self, worker, force=False):
        """Stop one worker: graceful sentinel for an idle worker, SIGTERM
        (journal closed frame-clean by the worker's handler) for a stuck
        one, SIGKILL only if it ignores both."""
        self.workers.pop(worker.worker_id, None)
        if worker.process.is_alive():
            if not force:
                worker.job_queue.put(None)
                worker.process.join(timeout=self.policy.join_timeout_s)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=self.policy.join_timeout_s)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
        worker.job_queue.close()

    def recycle(self, worker, force=False):
        """Retire ``worker`` and spawn its warm replacement."""
        self.retire(worker, force=force)
        self.workers_recycled += 1
        return self.spawn_worker()

    def stop(self):
        """Drain-order shutdown: sentinel every worker, bounded join,
        escalate to SIGTERM/SIGKILL for stragglers."""
        for worker in list(self.workers.values()):
            self.retire(worker, force=False)
        if self.result_queue is not None:
            self.result_queue.cancel_join_thread()
        self.started = False

    # ------------------------------------------------------------------
    # dispatch and message pump
    # ------------------------------------------------------------------

    def idle_workers(self):
        return [w for w in self.workers.values()
                if w.idle and w.process.is_alive()]

    def dispatch(self, worker, spec_dict, request):
        worker.inflight = request
        worker.dispatched_at = time.perf_counter()
        worker.job_queue.put(spec_dict)

    def poll(self, timeout):
        """Pump one message off the result queue; returns
        ``(tag, worker, body)`` or ``(None, None, None)`` on timeout.
        Messages from already-replaced workers resolve to worker=None
        and must be ignored by the caller."""
        try:
            tag, worker_id, body = self.result_queue.get(timeout=timeout)
        except queue_mod.Empty:
            return None, None, None
        worker = self.workers.get(worker_id)
        if worker is not None:
            worker.last_seen = time.perf_counter()
            if isinstance(body, dict):
                worker.rss_kb = body.get("rss_kb", worker.rss_kb)
                worker.jobs_served = body.get("jobs_served",
                                              worker.jobs_served)
            if tag == "warmed":
                worker.warmed = True
        return tag, worker, body

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def dead_workers(self):
        """Workers whose process exited (crash drill, poison, OOM-kill);
        their in-flight request — if any — needs supervisor handling."""
        return [w for w in self.workers.values()
                if not w.process.is_alive()]

    def unhealthy_idle_workers(self):
        """Idle workers due for recycling: RSS over the ceiling or jobs
        cap reached. Busy workers are never health-recycled — deadlines
        own the stuck case."""
        due = []
        for worker in self.workers.values():
            if not worker.idle or not worker.process.is_alive():
                continue
            if (self.policy.rss_limit_kb is not None
                    and worker.rss_kb > self.policy.rss_limit_kb):
                due.append((worker, "rss %dKiB > limit %dKiB"
                            % (worker.rss_kb, self.policy.rss_limit_kb)))
            elif (self.policy.max_jobs_per_worker is not None
                  and worker.jobs_served >= self.policy.max_jobs_per_worker):
                due.append((worker, "served %d jobs >= cap %d"
                            % (worker.jobs_served,
                               self.policy.max_jobs_per_worker)))
        return due

    def describe(self):
        lines = ["pool: %d worker(s), %d spawned, %d recycled"
                 % (len(self.workers), self.workers_spawned,
                    self.workers_recycled)]
        for worker in self.workers.values():
            lines.append("  " + worker.describe())
        return "\n".join(lines)


__all__ = ["PoolPolicy", "WarmPool", "WarmWorker"]
