"""Long-lived warm-worker detection service (`kivati serve`).

The fleet plane (:mod:`repro.fleet`) executes *batches*: a pool is
spawned, jobs run, the pool dies with the call. This package is the
*serving* story on top of the same workers: a daemon that keeps the pool
warm across requests (pre-imported interpreter, pre-compiled programs,
pre-read whitelists), speaks a JSON-framed protocol over a Unix-domain
socket, and is engineered to survive crashes, overload, hostile input,
and operator signals — see :mod:`repro.service.daemon` for the
robustness inventory and DESIGN.md §12 for the architecture.

Layers: protocol (framing) < pool (warm process lifecycle) < daemon
(deadlines, retries, quarantine, admission, drain) < client.
"""

from repro.service.client import (ServiceClient, ServiceUnavailable,
                                  wait_for_socket)
from repro.service.daemon import (KivatiDaemon, SERVICE_JOB_KINDS,
                                  ServicePolicy, ServiceStats)
from repro.service.pool import PoolPolicy, WarmPool
from repro.service.protocol import (ERROR_KINDS, MAX_FRAME_BYTES,
                                    recv_frame, send_frame)

__all__ = ["ERROR_KINDS", "KivatiDaemon", "MAX_FRAME_BYTES", "PoolPolicy",
           "SERVICE_JOB_KINDS", "ServiceClient", "ServicePolicy",
           "ServiceStats", "ServiceUnavailable", "WarmPool", "recv_frame",
           "send_frame", "wait_for_socket"]
