"""Client for the `kivati serve` daemon.

A thin, dependency-free wrapper over the frame protocol: one client
holds one connection, requests are synchronous (submit blocks until the
daemon answers or the socket times out). A :class:`ServiceUnavailable`
distinguishes "daemon not there / went away" from a structured error
*response* (which is returned, never raised — callers decide whether an
``error.kind`` of ``poison`` or ``deadline`` is exceptional).
"""

import time

from repro.errors import ServiceError
from repro.service.protocol import connect, recv_frame, send_frame


class ServiceUnavailable(ServiceError):
    """The daemon socket is absent, refused, or died mid-request."""


class ServiceClient:
    """Synchronous client; usable as a context manager."""

    def __init__(self, socket_path, timeout=60.0):
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _connection(self):
        if self._sock is None:
            try:
                self._sock = connect(self.socket_path, timeout=self.timeout)
            except OSError as exc:
                raise ServiceUnavailable(
                    "cannot connect to %s: %s" % (self.socket_path, exc))
        return self._sock

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def request(self, frame):
        """Send one request frame, return the response object."""
        sock = self._connection()
        try:
            send_frame(sock, frame)
            response = recv_frame(sock)
        except OSError as exc:
            self.close()
            raise ServiceUnavailable("daemon connection lost: %s" % exc)
        if response is None:
            self.close()
            raise ServiceUnavailable("daemon closed the connection")
        return response

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------

    def ping(self):
        return self.request({"op": "ping"})

    def stats(self):
        return self.request({"op": "stats"})

    def events(self, limit=100):
        return self.request({"op": "events", "limit": limit})

    def drain(self):
        return self.request({"op": "drain"})

    def submit(self, spec, deadline_s=None, request_id=None):
        """Submit one JobSpec (object or dict); returns the response."""
        spec_dict = spec if isinstance(spec, dict) else spec.as_dict()
        frame = {"op": "submit", "spec": spec_dict}
        if deadline_s is not None:
            frame["deadline_s"] = deadline_s
        if request_id is not None:
            frame["request_id"] = request_id
        return self.request(frame)


def wait_for_socket(socket_path, timeout=10.0, interval=0.05):
    """Block until a daemon answers pings at ``socket_path``.

    Returns the first successful ping response; raises
    :class:`ServiceUnavailable` if the deadline passes — used by tests
    and the CI smoke to avoid racing daemon startup.
    """
    deadline = time.perf_counter() + timeout
    last_error = None
    while time.perf_counter() < deadline:
        try:
            with ServiceClient(socket_path, timeout=interval * 4) as client:
                return client.ping()
        except ServiceError as exc:
            last_error = exc
            time.sleep(interval)
    raise ServiceUnavailable("no daemon at %s after %.1fs (%s)"
                             % (socket_path, timeout, last_error))


__all__ = ["ServiceClient", "ServiceUnavailable", "wait_for_socket"]
