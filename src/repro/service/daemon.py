"""`kivati serve`: the long-lived warm-worker detection daemon.

The daemon accepts JSON-framed requests over a Unix-domain socket
(:mod:`repro.service.protocol`) and executes ``JobSpec`` s on a
:class:`repro.service.pool.WarmPool`. Robustness is the design center —
every layer assumes the layer below it will fail:

- **deadlines** — each request carries a wall-clock deadline (default
  from policy); a live-but-stuck worker holding a request past its
  deadline is force-recycled (SIGTERM first, so its journal closes
  frame-clean) and the client gets a structured ``deadline`` error —
  never silence;
- **bounded retry with backoff** — a request whose worker *died* is
  retried on a fresh warm worker after an exponentially growing
  backoff, at most ``max_retries`` times, with the recoverable drills
  stripped exactly like fleet crash recovery; the dead worker's torn
  journal is salvaged via :func:`repro.journal.recovery.salvage` first;
- **poison-job quarantine** — a request that kills ``poison_kills``
  workers is answered with a structured ``poison`` error and its spec
  digest quarantined: resubmissions are rejected at admission without
  burning another worker;
- **admission control** — watermarks derived from
  :meth:`repro.pressure.PressurePolicy.fleet_watermarks`: replay
  verification runs on a dedicated verifier thread (never on the
  dispatch or response path) and is *shed* once its backlog — the
  monitoring debt — reaches the shed watermark; only when the pending
  queue reaches the reject watermark are new submissions refused
  (``overloaded``). Monitoring degrades before any request is slowed
  or dropped, the same ordering as in-process admission control;
- **hostile-input containment** — a malformed frame or an invalid spec
  is answered with a structured error and at worst costs that one
  connection; a client disconnect mid-request is absorbed (the job
  completes, the response is dropped, the daemon survives);
- **graceful drain** — SIGTERM/SIGINT stops accepting, finishes every
  in-flight and queued request, retires the pool (each worker closes
  its journals), removes the socket, and exits 0.

Every recovery decision (retry, salvage, deadline, recycle, poison
quarantine, drain) is appended to the in-memory **service log**, an
append-only sequence queryable over the wire (``events`` op) — the
chaos drill in :mod:`repro.bench.servicebench` asserts one retry record
per injected kill, so nothing recovers silently.
"""

import collections
import os
import socket
import threading
import time

from repro.errors import ConfigError, ProtocolError
from repro.fleet.jobs import JobSpec
from repro.fleet.worker import job_journal_path
from repro.journal.recovery import salvage
from repro.pressure.policy import PressurePolicy
from repro.service.protocol import (error_response, ok_response, recv_frame,
                                    send_frame)
from repro.service.pool import PoolPolicy, WarmPool

#: job kinds a service request may carry; ``suite`` payloads are live
#: pickled objects and cannot cross the JSON wire
SERVICE_JOB_KINDS = ("run", "train", "detect")


class ServicePolicy:
    """Every robustness knob of the daemon in one place."""

    __slots__ = ("workers", "start_method", "heartbeat_s", "rss_limit_kb",
                 "max_jobs_per_worker", "collect_journals", "warm_sources",
                 "warm_whitelists", "default_deadline_s", "max_retries",
                 "retry_backoff_s", "backoff_cap_s", "poison_kills",
                 "verify", "verify_backend", "pressure", "shed_depth",
                 "reject_depth", "poll_s")

    def __init__(self, workers=2, start_method="spawn", heartbeat_s=1.0,
                 rss_limit_kb=None, max_jobs_per_worker=None,
                 collect_journals=True, warm_sources=(), warm_whitelists=(),
                 default_deadline_s=30.0, max_retries=2,
                 retry_backoff_s=0.05, backoff_cap_s=1.0, poison_kills=2,
                 verify=True, verify_backend="replay", pressure=None,
                 poll_s=0.02):
        if default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be positive")
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if poison_kills < 1:
            raise ConfigError("poison_kills must be >= 1")
        if retry_backoff_s < 0 or backoff_cap_s < retry_backoff_s:
            raise ConfigError("need 0 <= retry_backoff_s <= backoff_cap_s")
        if verify_backend not in ("replay", "checker"):
            raise ConfigError("verify_backend must be 'replay' or 'checker'")
        self.workers = workers
        self.start_method = start_method
        self.heartbeat_s = heartbeat_s
        self.rss_limit_kb = rss_limit_kb
        self.max_jobs_per_worker = max_jobs_per_worker
        self.collect_journals = collect_journals
        self.warm_sources = tuple(warm_sources)
        self.warm_whitelists = tuple(warm_whitelists)
        self.default_deadline_s = default_deadline_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.poison_kills = poison_kills
        self.verify = verify
        #: "replay" re-executes the program pinned to the journal (the
        #: strongest check); "checker" streams the journal through the
        #: offline serializability checker — no re-execution, so each
        #: verification is far cheaper and the queue sheds less
        #: monitoring debt under load
        self.verify_backend = verify_backend
        self.pressure = pressure if pressure is not None else PressurePolicy()
        self.shed_depth, self.reject_depth = \
            self.pressure.fleet_watermarks(max(1, workers))
        self.poll_s = poll_s

    def pool_policy(self):
        return PoolPolicy(
            workers=self.workers, start_method=self.start_method,
            heartbeat_s=self.heartbeat_s, rss_limit_kb=self.rss_limit_kb,
            max_jobs_per_worker=self.max_jobs_per_worker,
            collect_journals=self.collect_journals,
            warm_sources=self.warm_sources,
            warm_whitelists=self.warm_whitelists)

    def backoff_for(self, attempt):
        """Exponential backoff before retry ``attempt`` (1-based)."""
        return min(self.backoff_cap_s,
                   self.retry_backoff_s * (2 ** max(0, attempt - 1)))


class ServiceStats:
    """Daemon-side accounting (service health, not job content)."""

    FIELDS = ("requests_accepted", "requests_completed", "requests_failed",
              "requests_rejected_overload", "requests_rejected_poison",
              "requests_rejected_draining", "requests_deadline_expired",
              "requests_invalid", "retries", "workers_crashed",
              "workers_recycled", "frames_salvaged", "verifications",
              "verifications_shed", "verification_failures",
              "malformed_frames", "unknown_ops", "client_disconnects",
              "poison_quarantined")

    __slots__ = FIELDS

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}


class Request:
    """One in-service request: spec + deadline + retry state + the
    rendezvous the client handler thread waits on."""

    __slots__ = ("request_id", "spec", "deadline_s", "accepted_at",
                 "attempt", "kills", "not_before", "done", "response",
                 "client_gone", "worker_id")

    def __init__(self, request_id, spec, deadline_s):
        self.request_id = request_id
        self.spec = spec
        self.deadline_s = deadline_s
        self.accepted_at = time.perf_counter()
        self.attempt = 0
        self.kills = 0
        self.not_before = 0.0
        self.done = threading.Event()
        self.response = None
        self.client_gone = False
        self.worker_id = None

    def expired(self, now):
        return now - self.accepted_at > self.deadline_s

    def dispatch_dict(self):
        """The spec to send for the current attempt: retries run with
        the recoverable drills stripped, like fleet crash recovery."""
        spec = self.spec if self.attempt == 0 \
            else self.spec.without_crash_drill()
        return spec.as_dict()


class KivatiDaemon:
    """The `kivati serve` daemon; see module docstring."""

    def __init__(self, socket_path, policy=None, journal_root=None):
        self.socket_path = socket_path
        self.policy = policy if policy is not None else ServicePolicy()
        self._journal_root = journal_root
        self.pool = None
        self.stats = ServiceStats()
        self.events = []              # the service log (append-only)
        self._event_seq = 0
        self._lock = threading.Lock()
        self._pending = collections.deque()
        self._quarantine = {}         # spec digest -> first poison event seq
        self._listener = None
        self._threads = []
        self._client_threads = []
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._started = False
        # monitoring debt: completed runs awaiting replay verification,
        # consumed by the verifier thread off the dispatch path
        self._verify_queue = collections.deque()
        self._verify_cond = threading.Condition()
        self._verify_stop = False
        self._verifier = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def journal_root(self):
        if self._journal_root is None:
            import tempfile

            self._journal_root = tempfile.mkdtemp(prefix="kivati-serve-")
        return self._journal_root

    def start(self):
        """Bind the socket, start the pool, dispatcher and accept loop."""
        if self._started:
            raise ConfigError("daemon already started")
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead daemon
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(64)
        self._listener.settimeout(0.1)
        self.pool = WarmPool(self.policy.pool_policy(), self.journal_root())
        self.pool.start()
        self._started = True
        for target, name in ((self._dispatch_loop, "kivati-dispatch"),
                             (self._accept_loop, "kivati-accept"),
                             (self._verify_loop, "kivati-verify")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        self._verifier = self._threads[-1]

    def serve_forever(self, install_signals=True):
        """CLI entry: start, drain on SIGTERM/SIGINT, exit clean.

        Returns 0 once the drain finished with every accepted request
        answered — the contract the CI drain test holds us to.
        """
        import signal as signal_mod

        # handlers go in BEFORE the socket exists: a SIGTERM that lands
        # the instant a client can reach us must already mean "drain"
        if install_signals:
            def _drain_signal(signum, frame):
                self.initiate_drain("signal %d" % signum)

            signal_mod.signal(signal_mod.SIGTERM, _drain_signal)
            signal_mod.signal(signal_mod.SIGINT, _drain_signal)
        self.start()
        self._drained.wait()
        return 0

    def initiate_drain(self, reason="requested"):
        """Stop accepting; in-flight and queued requests still finish."""
        if not self._draining.is_set():
            self._log_event("drain", reason=reason,
                            pending=len(self._pending))
            self._draining.set()

    def wait_drained(self, timeout=None):
        return self._drained.wait(timeout)

    def stop(self):
        """Programmatic drain + wait (tests and embedders)."""
        self.initiate_drain("stop()")
        self.wait_drained()

    @property
    def draining(self):
        return self._draining.is_set()

    # ------------------------------------------------------------------
    # service log
    # ------------------------------------------------------------------

    def _log_event(self, kind, **fields):
        with self._lock:
            self._event_seq += 1
            event = {"seq": self._event_seq, "kind": kind}
            event.update(fields)
            self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # accept loop + client handling
    # ------------------------------------------------------------------

    def _accept_loop(self):
        while not self._draining.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(target=self._client_loop,
                                      args=(conn,), daemon=True)
            thread.start()
            self._client_threads = [t for t in self._client_threads
                                    if t.is_alive()]
            self._client_threads.append(thread)
        try:
            self._listener.close()
        except OSError:
            pass

    def _client_loop(self, conn):
        conn.settimeout(None)
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except ProtocolError as exc:
                    # a client that desyncs the framing gets one
                    # structured error, then its connection is closed;
                    # the daemon itself is untouched
                    self.stats.malformed_frames += 1
                    self._try_send(conn, error_response(
                        "malformed-frame", str(exc)))
                    return
                if frame is None:
                    return
                response = self._handle_frame(frame)
                if not self._try_send(conn, response):
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _try_send(self, conn, response):
        try:
            send_frame(conn, response)
            return True
        except OSError:
            self.stats.client_disconnects += 1
            return False

    def _handle_frame(self, frame):
        op = frame.get("op")
        request_id = frame.get("request_id")
        if op == "ping":
            return ok_response(request_id, pong=True,
                               draining=self.draining)
        if op == "stats":
            with self._lock:
                pending = len(self._pending)
                quarantined = sorted(self._quarantine)
            return ok_response(
                request_id, stats=self.stats.as_dict(), pending=pending,
                draining=self.draining, quarantined=quarantined,
                pool={"workers": len(self.pool.workers),
                      "spawned": self.pool.workers_spawned,
                      "recycled": self.pool.workers_recycled,
                      "detail": [w.describe()
                                 for w in self.pool.workers.values()]})
        if op == "events":
            limit = int(frame.get("limit", 100))
            with self._lock:
                events = list(self.events[-limit:])
            return ok_response(request_id, events=events)
        if op == "drain":
            self.initiate_drain("drain op")
            return ok_response(request_id, draining=True)
        if op == "submit":
            return self._handle_submit(frame, request_id)
        self.stats.unknown_ops += 1
        return error_response("unknown-op", "unknown op %r" % (op,),
                              request_id)

    def _handle_submit(self, frame, request_id):
        if self.draining:
            self.stats.requests_rejected_draining += 1
            return error_response("draining", "daemon is draining",
                                  request_id)
        try:
            spec = JobSpec.from_dict(frame["spec"])
        except Exception as exc:
            self.stats.requests_invalid += 1
            return error_response("invalid-spec",
                                  "%s: %s" % (type(exc).__name__, exc),
                                  request_id)
        if spec.kind not in SERVICE_JOB_KINDS:
            self.stats.requests_invalid += 1
            return error_response(
                "invalid-spec", "job kind %r is not servable (one of %s)"
                % (spec.kind, ", ".join(SERVICE_JOB_KINDS)), request_id)
        digest = spec.without_crash_drill().digest()
        deadline_s = float(frame.get("deadline_s")
                           or self.policy.default_deadline_s)
        with self._lock:
            if digest in self._quarantine:
                self.stats.requests_rejected_poison += 1
                return error_response(
                    "poison", "job quarantined after killing %d worker(s) "
                    "(first at service log seq %d)"
                    % (self.policy.poison_kills, self._quarantine[digest]),
                    request_id)
            if len(self._pending) >= self.policy.reject_depth:
                self.stats.requests_rejected_overload += 1
                return error_response(
                    "overloaded", "queue depth %d >= reject watermark %d"
                    % (len(self._pending), self.policy.reject_depth),
                    request_id)
            request = Request(request_id or spec.job_id, spec, deadline_s)
            self._pending.append(request)
            self.stats.requests_accepted += 1
        self._log_event("accept", request_id=request.request_id,
                        job_id=spec.job_id, deadline_s=deadline_s)
        # wait for the dispatcher; small slack past the deadline so the
        # dispatcher's own deadline handling answers first
        request.done.wait(request.deadline_s + 10.0)
        if request.response is None:
            # backstop only — the dispatcher should have answered
            self.stats.requests_deadline_expired += 1
            request.client_gone = True
            return error_response("deadline",
                                  "no result within deadline", request_id)
        return request.response

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            now = time.perf_counter()
            self._expire_queued(now)
            self._dispatch_ready(now)
            tag, worker, body = self.pool.poll(self.policy.poll_s)
            if (tag == "done" and worker is not None
                    and worker.inflight is not None
                    and isinstance(body, dict)
                    and body.get("job_id") == worker.inflight.spec.job_id):
                request = worker.inflight
                worker.inflight = None
                self._complete_done(request, body)
            self._check_dead_workers()
            self._check_deadlines(time.perf_counter())
            self._recycle_unhealthy_idle()
            if self._draining.is_set():
                with self._lock:
                    idle_pending = not self._pending
                busy = any(w.inflight is not None
                           for w in self.pool.workers.values())
                if idle_pending and not busy:
                    break
        # give client handlers a bounded moment to flush the responses
        # just set before tearing the process down
        flush_deadline = time.perf_counter() + 2.0
        for thread in self._client_threads:
            thread.join(timeout=max(0.0,
                                    flush_deadline - time.perf_counter()))
        self.pool.stop()
        # drain is not done until the monitoring debt is paid: finish
        # every queued verification before declaring ourselves drained
        with self._verify_cond:
            self._verify_stop = True
            self._verify_cond.notify_all()
        if self._verifier is not None:
            self._verifier.join(timeout=60.0)
        try:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
        except OSError:
            pass
        self._drained.set()

    def _expire_queued(self, now):
        """Answer queued requests whose deadline passed before dispatch."""
        with self._lock:
            expired = [r for r in self._pending if r.expired(now)]
            for request in expired:
                self._pending.remove(request)
        for request in expired:
            self._fail_deadline(request, "expired in queue")

    def _dispatch_ready(self, now):
        idle = self.pool.idle_workers()
        if not idle:
            return
        with self._lock:
            ready = []
            for worker in idle:
                picked = None
                for request in self._pending:
                    if request.not_before <= now:
                        picked = request
                        break
                if picked is None:
                    break
                self._pending.remove(picked)
                ready.append((worker, picked))
        for worker, request in ready:
            request.worker_id = worker.worker_id
            self._log_event("dispatch", request_id=request.request_id,
                            worker_id=worker.worker_id,
                            attempt=request.attempt)
            self.pool.dispatch(worker, request.dispatch_dict(), request)

    def _complete_done(self, request, body):
        ok = bool(body.get("ok"))
        if ok:
            self.stats.requests_completed += 1
        else:
            self.stats.requests_failed += 1
        result = {
            "job_id": body.get("job_id"), "kind": body.get("kind"),
            "ok": ok, "error": body.get("error"),
            "payload": body.get("payload"),
            "elapsed_s": body.get("elapsed_s", 0.0),
            "worker_id": request.worker_id, "attempt": request.attempt,
        }
        # respond first, verify after: monitoring never adds client
        # latency; a verification failure lands in stats and the
        # service log, not in this (already correct-by-digest) response
        self._respond(request, ok_response(request.request_id,
                                           result=result))
        self._maybe_verify(request, body)

    def _maybe_verify(self, request, body):
        """Queue a completed run job's journal for replay verification —
        unless the monitoring debt already sits at the shed watermark.
        Verification runs on the verifier thread, never on the dispatch
        or response path: monitoring sheds before any request slows
        down, the same ordering the pressure plane uses in-process. A
        verification failure is a detection-integrity incident: it
        lands in stats and the service log (it cannot land in the
        response, which was already sent)."""
        if (not self.policy.verify or not body.get("ok")
                or request.spec.kind != "run"
                or not body.get("journal_path")
                or not os.path.exists(body["journal_path"])):
            return
        with self._verify_cond:
            if len(self._verify_queue) >= self.policy.shed_depth:
                self.stats.verifications_shed += 1
                return
            self._verify_queue.append((request, body))
            self._verify_cond.notify()

    def _verify_loop(self):
        from repro.fleet.worker import cached_program
        from repro.journal.checker import check_journal
        from repro.journal.replay import replay_run

        while True:
            with self._verify_cond:
                while not self._verify_queue and not self._verify_stop:
                    self._verify_cond.wait(timeout=0.2)
                if not self._verify_queue:
                    if self._verify_stop:
                        return
                    continue
                request, body = self._verify_queue.popleft()
            self.stats.verifications += 1
            try:
                if self.policy.verify_backend == "checker":
                    # no re-execution: stream the journal through the
                    # offline checker; the strong `agrees` claim demands
                    # an intact journal and identical verdict multisets
                    verified = check_journal(body["journal_path"]).agrees
                else:
                    replay = replay_run(cached_program(request.spec.source),
                                        body["journal_path"],
                                        drop_fault_points=("journal.crash",))
                    verified = replay.ok and replay.verdicts_match
            except Exception:
                verified = False
            if not verified:
                self.stats.verification_failures += 1
                self._log_event("verify-failure",
                                job_id=request.spec.job_id,
                                request_id=request.request_id,
                                journal_path=body["journal_path"])

    def _respond(self, request, response):
        self._log_event("respond", request_id=request.request_id,
                        ok=bool(response.get("ok")))
        request.response = response
        request.done.set()

    def _fail_deadline(self, request, detail):
        self.stats.requests_deadline_expired += 1
        self._log_event("deadline", request_id=request.request_id,
                        job_id=request.spec.job_id, attempt=request.attempt,
                        detail=detail)
        self._respond(request, error_response(
            "deadline", "deadline of %.3fs exceeded (%s)"
            % (request.deadline_s, detail), request.request_id))

    def _check_deadlines(self, now):
        """A live-but-stuck worker (fresh heartbeat, no result) past its
        request's deadline is force-recycled; the client gets a
        structured deadline error."""
        for worker in list(self.pool.workers.values()):
            request = worker.inflight
            if request is None or not request.expired(now):
                continue
            worker.inflight = None
            self._log_event("recycle", worker_id=worker.worker_id,
                            reason="deadline", job_id=request.spec.job_id)
            self.stats.workers_recycled += 1
            self.pool.recycle(worker, force=True)
            self._fail_deadline(request, "worker %s stuck"
                                % worker.worker_id)

    def _check_dead_workers(self):
        """A dead worker's torn journal is salvaged, its request retried
        with backoff on a fresh worker — or quarantined as poison once it
        has killed ``poison_kills`` workers."""
        for worker in self.pool.dead_workers():
            request = worker.inflight
            worker.inflight = None
            self.stats.workers_crashed += 1
            frames = 0
            torn = False
            if worker.journal_dir is not None and request is not None:
                path = job_journal_path(worker.journal_dir,
                                        request.spec.job_id)
                if os.path.exists(path):
                    salvaged = salvage(path)
                    frames = len(salvaged.events)
                    torn = salvaged.torn
                    self.stats.frames_salvaged += frames
            self._log_event(
                "recovery", worker_id=worker.worker_id,
                exitcode=worker.process.exitcode,
                job_id=request.spec.job_id if request else None,
                frames_salvaged=frames, torn=torn)
            self.stats.workers_recycled += 1
            self.pool.recycle(worker, force=True)
            if request is None:
                continue
            request.kills += 1
            digest = request.spec.without_crash_drill().digest()
            if request.kills >= self.policy.poison_kills:
                event = self._log_event(
                    "poison-quarantine", job_id=request.spec.job_id,
                    digest=digest, kills=request.kills)
                with self._lock:
                    self._quarantine[digest] = event["seq"]
                self.stats.poison_quarantined += 1
                self._respond(request, error_response(
                    "poison", "job killed %d worker(s); quarantined"
                    % request.kills, request.request_id))
            elif request.attempt < self.policy.max_retries:
                request.attempt += 1
                backoff = self.policy.backoff_for(request.attempt)
                request.not_before = time.perf_counter() + backoff
                self.stats.retries += 1
                self._log_event("retry", request_id=request.request_id,
                                job_id=request.spec.job_id,
                                attempt=request.attempt,
                                backoff_s=round(backoff, 4))
                with self._lock:
                    self._pending.append(request)
            else:
                self.stats.requests_failed += 1
                self._respond(request, error_response(
                    "internal", "worker died %d time(s); retries exhausted"
                    % request.kills, request.request_id))

    def _recycle_unhealthy_idle(self):
        for worker, reason in self.pool.unhealthy_idle_workers():
            self._log_event("recycle", worker_id=worker.worker_id,
                            reason=reason)
            self.stats.workers_recycled += 1
            self.pool.recycle(worker, force=False)


__all__ = ["KivatiDaemon", "Request", "SERVICE_JOB_KINDS", "ServicePolicy",
           "ServiceStats"]
