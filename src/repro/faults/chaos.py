"""Chaos suite: drive fault schedules through a contended program and
check the graceful-degradation invariants.

The contract under test (ISSUE 1, after Section 1 of the paper): under
*any* injected fault schedule the protected program

- always completes — no crash, no deadlock, no stuck thread (the
  suspension timeout and watchdog planes guarantee forward progress);
- is deterministic — the same (plan, seed) pair replays the exact same
  injected events, output, final time and statistics;
- degrades *visibly* — if the run diverges from the fault-free baseline
  on the same seed, at least one injected fault must be on record; a run
  in which nothing fired must be bit-identical to the baseline.

Divergence itself is allowed: a dropped trap legitimately loses a
prevention, timer jitter legitimately changes the interleaving. What is
never allowed is silent divergence.
"""

import os
import tempfile

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.faults.plan import FaultPlan, FaultSpec

#: Contended three-thread workload used by the built-in suite. `careful`
#: holds a long check-then-act AR on x; `mixer` runs a contending
#: read-modify-write AR on x, so its begins collide with careful's and
#: drive the suspension plane; `careless` writes x through a helper whose
#: single isolated store never forms an AR — a raw remote write that
#: lands inside careful's window and drives the trap/undo plane.
CHAOS_SRC = """
int x = 0;
int y = 0;

void blast(int v) {
    x = v;
}

void careful() {
    int i = 0;
    while (i < 6) {
        int t = x;
        sleep(2000);
        x = t + 1;
        i = i + 1;
    }
}

void careless() {
    int j = 0;
    while (j < 6) {
        sleep(700);
        y = y + 1;
        blast(50 + j);
        j = j + 1;
    }
}

void mixer() {
    int k = 0;
    while (k < 4) {
        sleep(1500);
        x = x + 10;
        k = k + 1;
    }
}

void main() {
    spawn careful();
    spawn careless();
    spawn mixer();
    join();
    output(x);
    output(y);
}
"""

#: Default seeds: three per schedule (the acceptance floor).
DEFAULT_SEEDS = (1, 2, 3)


class ChaosSchedule:
    """One named fault plan plus the evidence it is expected to leave.

    ``expect_stats`` lists KivatiStats counters whose sum over all seeds
    must be positive — proof the degradation plane engaged, not just that
    the fault fired. ``needs_whitelist_file`` makes the harness back the
    run with a real on-disk whitelist so the corruption point has
    opportunities to fire.
    """

    __slots__ = ("plan", "expect_stats", "needs_whitelist_file")

    def __init__(self, plan, expect_stats=(), needs_whitelist_file=False):
        self.plan = plan
        self.expect_stats = tuple(expect_stats)
        self.needs_whitelist_file = needs_whitelist_file

    @property
    def name(self):
        return self.plan.name


def builtin_schedules():
    """The built-in suite: every injection point, one schedule each."""
    return (
        ChaosSchedule(FaultPlan("drop-traps", [
            FaultSpec("machine.trap.drop", probability=0.7)])),
        ChaosSchedule(FaultPlan("duplicate-traps", [
            FaultSpec("machine.trap.duplicate", probability=1.0)]),
            expect_stats=("duplicate_traps_ignored",)),
        ChaosSchedule(FaultPlan("flaky-dr-slots", [
            FaultSpec("machine.dr.slot_fail", probability=1.0)]),
            expect_stats=("replica_resyncs",)),
        ChaosSchedule(FaultPlan("timer-jitter", [
            FaultSpec("machine.timer.jitter", probability=0.5,
                      param={"jitter_ns": 8000})])),
        ChaosSchedule(FaultPlan("crosscore-delay", [
            FaultSpec("kernel.crosscore.delay", probability=0.7)])),
        ChaosSchedule(FaultPlan("crosscore-lost", [
            FaultSpec("kernel.crosscore.lost", probability=0.7)]),
            expect_stats=("replica_resyncs",)),
        ChaosSchedule(FaultPlan("undo-failure", [
            FaultSpec("kernel.undo.fail", probability=1.0)]),
            expect_stats=("undo_faults_injected",)),
        ChaosSchedule(FaultPlan("lost-wakeups", [
            FaultSpec("kernel.wakeup.lost", probability=1.0)]),
            expect_stats=("suspend_timeouts",)),
        ChaosSchedule(FaultPlan("replica-corruption", [
            FaultSpec("runtime.replica.corrupt", probability=0.6)])),
        ChaosSchedule(FaultPlan("whitelist-corruption", [
            FaultSpec("runtime.whitelist.corrupt", probability=1.0)]),
            expect_stats=("whitelist_read_errors",),
            needs_whitelist_file=True),
    )


def default_config(**overrides):
    """BASE optimization level keeps every annotation in the kernel's
    face, which maximizes the surface the faults can hit."""
    kwargs = dict(opt=OptLevel.BASE, mode=Mode.PREVENTION)
    kwargs.update(overrides)
    return KivatiConfig(**kwargs)


class ChaosCase:
    """Outcome of one (plan, seed) chaos run against its baseline."""

    __slots__ = ("plan", "seed", "report", "baseline", "problems",
                 "postmortem")

    def __init__(self, plan, seed, report, baseline, problems,
                 postmortem=None):
        self.plan = plan
        self.seed = seed
        self.report = report
        self.baseline = baseline
        self.problems = problems
        #: PostmortemResult of the offline re-verification (None only when
        #: the journal plane was unavailable)
        self.postmortem = postmortem

    @property
    def ok(self):
        return not self.problems

    @property
    def fired(self):
        return len(self.report.injected)

    def describe(self):
        status = "ok" if self.ok else "FAIL(%s)" % "; ".join(self.problems)
        return "%-22s seed=%d fired=%-3d degradations=%-3d %s" % (
            self.plan.name, self.seed, self.fired,
            len(self.report.degradations), status)


def _injected_ids(report):
    return [f.as_tuple() for f in report.injected]


def run_chaos_case(program, plan, seed, config, baseline=None):
    """Run one schedule on one seed; verify completion, determinism,
    fault attribution and postmortem agreement. Returns a
    :class:`ChaosCase`."""
    from repro.journal.postmortem import reverify_report
    from repro.journal.recorder import JournalRecorder

    journal = JournalRecorder()
    replay_journal = JournalRecorder()
    faulty = program.run(config.copy(faults=plan, seed=seed,
                                     journal=journal))
    replay = program.run(config.copy(faults=plan, seed=seed,
                                     journal=replay_journal))
    if baseline is None:
        # journaled as well so the stats comparison in invariant 3 stays
        # like-for-like (journal_frames is a stats field)
        baseline = program.run(config.copy(faults=None, seed=seed,
                                           journal=JournalRecorder()))

    problems = []
    result = faulty.result

    # 1. forward progress: the run always completes
    if result.fault is not None:
        problems.append("machine fault: %s" % (result.fault,))
    if result.deadlocked:
        problems.append("deadlocked")

    # 2. determinism: same plan + seed => identical replay
    if _injected_ids(faulty) != _injected_ids(replay):
        problems.append("injected events differ across replays")
    if (result.output != replay.result.output
            or result.time_ns != replay.result.time_ns
            or result.final_globals != replay.result.final_globals):
        problems.append("program outcome differs across replays")
    if faulty.stats.as_dict() != replay.stats.as_dict():
        problems.append("stats differ across replays")
    if ([e.key() for e in journal.events]
            != [e.key() for e in replay_journal.events]):
        problems.append("journal event streams differ across replays")

    # 3. attribution: no fault fired => bit-identical to fault-free run
    if not faulty.injected:
        base = baseline.result
        if (result.output != base.output
                or result.final_globals != base.final_globals
                or result.time_ns != base.time_ns):
            problems.append("diverged from baseline with no fault fired")
        if faulty.stats.as_dict() != baseline.stats.as_dict():
            problems.append("stats diverged with no fault fired")

    # 4. postmortem: the offline serializability re-verifier must agree
    # with every online verdict, even under injected faults
    postmortem, report_matches = reverify_report(journal, faulty)
    if not postmortem.agrees:
        problems.append("postmortem disagreement (%d verdicts, %d anomalies)"
                        % (len(postmortem.disagreements),
                           len(postmortem.anomalies)))
    elif not report_matches:
        problems.append("postmortem verdicts do not match the run report")

    # 5. checker: the streaming offline checker is the third evaluator;
    # under injected faults it must still reproduce the reverify pass
    # verdict-for-verdict and reach the same conclusion
    from repro.journal.checker import check_events

    check = check_events(journal.events)
    if (check.verdicts != postmortem.offline
            or check.online != postmortem.online
            or check.agrees != postmortem.agrees):
        problems.append("checker diverged from reverify (%s: %d vs %d "
                        "verdicts)" % (check.status, len(check.verdicts),
                                       len(postmortem.offline)))

    # 6. pressure accounting: every slot leak the watchdog detected was
    # reclaimed, and every arbiter decision left a journal record (both
    # trivially 0 == 0 when the pressure plane is off)
    stats = faulty.stats
    if stats.slots_leaked != stats.slots_reclaimed:
        problems.append("slot accounting: %d leaked != %d reclaimed"
                        % (stats.slots_leaked, stats.slots_reclaimed))
    arbiter_events = sum(1 for e in journal.events if e.kind == "arbiter")
    arbiter_decisions = stats.arbiter_preemptions + stats.arbiter_denials
    if arbiter_events != arbiter_decisions:
        problems.append("arbiter decisions unjournaled: %d events for %d "
                        "decisions" % (arbiter_events, arbiter_decisions))

    return ChaosCase(plan, seed, faulty, baseline, problems, postmortem)


class ChaosReport:
    """Aggregate over the whole suite."""

    __slots__ = ("cases", "schedule_problems")

    def __init__(self, cases, schedule_problems):
        self.cases = cases
        self.schedule_problems = schedule_problems

    @property
    def ok(self):
        return (not self.schedule_problems
                and all(case.ok for case in self.cases))

    @property
    def failures(self):
        return ([case for case in self.cases if not case.ok],
                self.schedule_problems)

    def describe(self):
        lines = [case.describe() for case in self.cases]
        for problem in self.schedule_problems:
            lines.append("SCHEDULE FAIL: %s" % problem)
        lines.append("chaos: %d cases, %d failed, %d schedule problems"
                     % (len(self.cases),
                        sum(1 for c in self.cases if not c.ok),
                        len(self.schedule_problems)))
        return "\n".join(lines)


def run_chaos_suite(program=None, schedules=None, seeds=DEFAULT_SEEDS,
                    config=None, require_fires=True):
    """Run every schedule on every seed; returns a :class:`ChaosReport`.

    Per-schedule checks on top of the per-case invariants: each schedule
    must actually fire at least once across its seeds (disable with
    ``require_fires=False`` for arbitrary user programs that may never
    reach some injection points), and each of its ``expect_stats``
    counters must be positive in aggregate.
    """
    if program is None:
        from repro.core.session import ProtectedProgram
        program = ProtectedProgram(CHAOS_SRC)
    if schedules is None:
        schedules = builtin_schedules()
    base_config = config if config is not None else default_config()

    cases = []
    schedule_problems = []
    for schedule in schedules:
        cfg = base_config
        wl_path = None
        if schedule.needs_whitelist_file:
            fd, wl_path = tempfile.mkstemp(suffix=".whitelist")
            with os.fdopen(fd, "w") as f:
                f.write("# chaos whitelist\n")
            cfg = base_config.copy(whitelist_path=wl_path,
                                   whitelist_reread_ns=2000)
        try:
            total_fired = 0
            totals = {name: 0 for name in schedule.expect_stats}
            for seed in seeds:
                case = run_chaos_case(program, schedule.plan, seed, cfg)
                cases.append(case)
                total_fired += case.fired
                for name in schedule.expect_stats:
                    totals[name] += getattr(case.report.stats, name)
            if require_fires and total_fired == 0:
                schedule_problems.append(
                    "%s: never fired on seeds %r" % (schedule.name, seeds))
            for name, total in totals.items():
                if total == 0:
                    schedule_problems.append(
                        "%s: expected stat %r stayed zero"
                        % (schedule.name, name))
        finally:
            if wl_path is not None:
                os.unlink(wl_path)
    return ChaosReport(cases, schedule_problems)
