"""Deterministic, seed-driven fault injection.

Kivati's production pitch (Section 1) is that monitoring must never make
the protected program worse off than running unprotected: a buggy
interleaving can at most cost a 10 ms suspension, never a hang.  That
claim is only testable if the failure modes of the monitoring plane
itself — lost traps, broken debug-register slots, stale cross-core
state, failed undos, lost wake-ups, corrupted user-space metadata — can
be provoked on demand and *reproducibly*.

This module provides the injection plane:

- :data:`INJECTION_POINTS` names every site wired through the machine,
  kernel and runtime layers;
- :class:`FaultSpec` / :class:`FaultPlan` describe which points fire and
  how often (a *schedule*);
- :class:`FaultInjector` makes the per-opportunity decisions.  Decisions
  are a pure function of ``(seed, point, opportunity index)`` via an
  FNV-1a/avalanche hash, so the same seed always yields the same
  injected events, independent of Python's randomized string hashing and
  of wall-clock time.

Zero overhead when disabled: no injector object exists unless a plan is
configured (``KivatiConfig(faults=...)``), and every injection site is
guarded by a single ``is not None`` predicate.
"""

from repro.errors import FaultPlanError

#: Every named injection point, grouped by the layer that consults it.
INJECTION_POINTS = (
    # machine (simulated hardware)
    "machine.trap.drop",        # watchpoint trap lost in delivery
    "machine.trap.duplicate",   # trap handler invoked twice for one hit
    "machine.dr.slot_fail",     # one debug-register slot fails to arm on adopt
    "machine.timer.jitter",     # timer tick delayed by jitter_ns
    # kernel
    "kernel.crosscore.delay",   # lazy watchpoint propagation skipped this entry
    "kernel.crosscore.lost",    # core marks itself synced without copying state
    "kernel.undo.fail",         # rollback engine forced to report failure
    "kernel.wakeup.lost",       # wake of a suspended thread silently dropped
    # runtime (user-space library)
    "runtime.replica.corrupt",  # O1 replica lies: a needed crossing is skipped
    "runtime.whitelist.corrupt",  # whitelist re-read sees a corrupt/partial file
    # journal (durable incident record)
    "journal.crash",            # session dies at a journal frame boundary
)


def _fnv1a(text):
    """Stable 32-bit FNV-1a (``hash(str)`` is randomized per process)."""
    h = 0x811C9DC5
    for ch in text.encode("utf-8"):
        h = ((h ^ ch) * 0x01000193) & 0xFFFFFFFF
    return h


def _avalanche(h):
    h &= 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    return h ^ (h >> 16)


class FaultSpec:
    """How one injection point misbehaves under a plan.

    ``probability`` is evaluated independently per opportunity;
    ``max_fires`` caps the total number of injections (None = unbounded);
    ``start_after`` skips the first N opportunities so early startup can
    proceed cleanly; ``param`` carries point-specific knobs (e.g.
    ``jitter_ns`` for ``machine.timer.jitter``).
    """

    __slots__ = ("point", "probability", "max_fires", "start_after", "param")

    def __init__(self, point, probability=1.0, max_fires=None, start_after=0,
                 param=None):
        if point not in INJECTION_POINTS:
            raise FaultPlanError("unknown injection point %r (known: %s)"
                                 % (point, ", ".join(INJECTION_POINTS)))
        if not (0.0 <= probability <= 1.0):
            raise FaultPlanError("probability must be in [0, 1]")
        if max_fires is not None and max_fires < 0:
            raise FaultPlanError("max_fires must be >= 0")
        self.point = point
        self.probability = probability
        self.max_fires = max_fires
        self.start_after = start_after
        self.param = dict(param) if param else {}

    def __repr__(self):
        return "FaultSpec(%s, p=%.2f%s)" % (
            self.point, self.probability,
            "" if self.max_fires is None else ", max=%d" % self.max_fires)


class FaultPlan:
    """A named, immutable fault schedule: a set of FaultSpecs.

    Plans are pure descriptions — safe to share across runs and configs.
    Per-run decision state lives in :class:`FaultInjector`.
    """

    __slots__ = ("name", "specs")

    def __init__(self, name, specs):
        self.name = name
        self.specs = tuple(specs)
        seen = set()
        for spec in self.specs:
            if spec.point in seen:
                raise FaultPlanError("duplicate spec for %r in plan %r"
                                     % (spec.point, name))
            seen.add(spec.point)

    def points(self):
        return tuple(spec.point for spec in self.specs)

    def __repr__(self):
        return "FaultPlan(%r, %d points)" % (self.name, len(self.specs))


class InjectedFault:
    """Record of one fault that actually fired (flows into RunReport)."""

    __slots__ = ("point", "occurrence", "time_ns", "detail")

    def __init__(self, point, occurrence, time_ns, detail):
        self.point = point
        self.occurrence = occurrence
        self.time_ns = time_ns
        self.detail = detail

    def describe(self):
        extra = " ".join("%s=%s" % (k, v)
                         for k, v in sorted(self.detail.items()))
        return "%10.3fus %-26s #%d %s" % (
            self.time_ns / 1e3, self.point, self.occurrence, extra)

    def as_tuple(self):
        """Hashable identity used by the determinism checks."""
        return (self.point, self.occurrence, self.time_ns,
                tuple(sorted(self.detail.items())))

    def __repr__(self):
        return "InjectedFault(%s, #%d, t=%dns)" % (
            self.point, self.occurrence, self.time_ns)


class FaultInjector:
    """Per-run decision engine for a FaultPlan.

    One injector is created per protected run (the session owns it);
    its decisions depend only on the seed and the per-point opportunity
    counter, so re-running the same program with the same seed replays
    the exact same fault schedule.
    """

    __slots__ = ("plan", "seed", "_specs", "_hashes", "_seen", "_fired",
                 "injected")

    def __init__(self, plan, seed=0):
        self.plan = plan
        self.seed = seed
        self._specs = {spec.point: spec for spec in plan.specs}
        self._hashes = {spec.point: _fnv1a(spec.point)
                        for spec in plan.specs}
        self._seen = {}   # point -> opportunities observed
        self._fired = {}  # point -> injections performed
        self.injected = []

    def active(self, point):
        """Whether the plan schedules this point at all."""
        return point in self._specs

    def fires(self, point, now_ns=0, **detail):
        """Decide whether ``point`` misbehaves at this opportunity.

        Records an :class:`InjectedFault` (with ``detail``) when it does.
        """
        spec = self._specs.get(point)
        if spec is None:
            return False
        n = self._seen.get(point, 0)
        self._seen[point] = n + 1
        if n < spec.start_after:
            return False
        fired = self._fired.get(point, 0)
        if spec.max_fires is not None and fired >= spec.max_fires:
            return False
        if spec.probability < 1.0:
            h = _avalanche(self._hashes[point]
                           ^ ((self.seed * 0x9E3779B1) & 0xFFFFFFFF)
                           ^ ((n * 0x85EBCA6B) & 0xFFFFFFFF))
            if (h % 1_000_000) >= spec.probability * 1_000_000:
                return False
        self._fired[point] = fired + 1
        self.injected.append(InjectedFault(point, n, now_ns, detail))
        return True

    def param(self, point, key, default=None):
        spec = self._specs.get(point)
        if spec is None:
            return default
        return spec.param.get(key, default)

    def fired_count(self, point=None):
        if point is not None:
            return self._fired.get(point, 0)
        return sum(self._fired.values())

    def __repr__(self):
        return "FaultInjector(%r, seed=%d, fired=%d)" % (
            self.plan.name, self.seed, self.fired_count())
