"""Per-AR fail-open circuit breaker.

Production atomicity monitors degrade rather than dominate: if one
atomic region keeps hitting its 10 ms suspension timeout (a long-held AR
starving remote threads) or traps excessively (a heavily contended
variable paying a trap per remote access), the cheapest safe response is
to stop monitoring *that AR* for a while — the program runs unprotected
for that region, which is exactly what it would do without Kivati — and
to log the decision so a developer can whitelist or fix it.

The breaker is keyed by AR id.  Each trip opens the breaker for an
exponentially growing backoff window (``base_backoff_ns`` doubling up to
``max_backoff_ns``); while open, ``begin_atomic`` returns after the
user-space check without arming a watchpoint.  When the window expires
the breaker closes and monitoring resumes with fresh counters.
"""


class BreakerPolicy:
    """Tunable thresholds; immutable and shareable across runs."""

    __slots__ = ("timeout_threshold", "trap_threshold", "base_backoff_ns",
                 "max_backoff_ns")

    def __init__(self, timeout_threshold=3, trap_threshold=128,
                 base_backoff_ns=1_000_000, max_backoff_ns=64_000_000):
        self.timeout_threshold = timeout_threshold
        self.trap_threshold = trap_threshold
        self.base_backoff_ns = base_backoff_ns
        self.max_backoff_ns = max_backoff_ns

    def __repr__(self):
        return ("BreakerPolicy(timeouts=%d, traps=%d, backoff=%d..%dns)"
                % (self.timeout_threshold, self.trap_threshold,
                   self.base_backoff_ns, self.max_backoff_ns))


class _ArBreakerState:
    __slots__ = ("timeouts", "traps", "open_until_ns", "backoff_ns", "trips")

    def __init__(self):
        self.timeouts = 0
        self.traps = 0
        self.open_until_ns = None
        self.backoff_ns = None
        self.trips = 0


class CircuitBreaker:
    """Per-run breaker state over all AR ids (one per protected run)."""

    __slots__ = ("policy", "_states")

    def __init__(self, policy=None):
        self.policy = policy or BreakerPolicy()
        self._states = {}

    def _state(self, ar_id):
        state = self._states.get(ar_id)
        if state is None:
            state = _ArBreakerState()
            self._states[ar_id] = state
        return state

    def _trip(self, state, now_ns):
        policy = self.policy
        if state.backoff_ns is None:
            state.backoff_ns = policy.base_backoff_ns
        else:
            state.backoff_ns = min(state.backoff_ns * 2,
                                   policy.max_backoff_ns)
        state.open_until_ns = now_ns + state.backoff_ns
        state.timeouts = 0
        state.traps = 0
        state.trips += 1
        return state.backoff_ns

    def record_timeout(self, ar_id, now_ns):
        """Count one suspension timeout against ``ar_id``; returns the
        backoff in ns if this trip opened the breaker, else None."""
        state = self._state(ar_id)
        state.timeouts += 1
        if state.timeouts >= self.policy.timeout_threshold:
            return self._trip(state, now_ns)
        return None

    def record_trap(self, ar_id, now_ns):
        """Count one remote trap against ``ar_id``; returns the backoff
        in ns if this trip opened the breaker, else None."""
        state = self._state(ar_id)
        state.traps += 1
        if state.traps >= self.policy.trap_threshold:
            return self._trip(state, now_ns)
        return None

    def allows(self, ar_id, now_ns):
        """Fail-open gate consulted on every begin_atomic."""
        state = self._states.get(ar_id)
        if state is None or state.open_until_ns is None:
            return True
        if now_ns >= state.open_until_ns:
            state.open_until_ns = None  # close; backoff level is retained
            return True
        return False

    def open_ars(self, now_ns):
        """AR ids currently unmonitored (for reports/debugging)."""
        return sorted(
            ar_id for ar_id, state in self._states.items()
            if state.open_until_ns is not None and now_ns < state.open_until_ns
        )

    def trips(self):
        return sum(state.trips for state in self._states.values())
