"""Fault-injection plane and graceful-degradation policies.

See :mod:`repro.faults.plan` for the injection points and the
deterministic decision engine, :mod:`repro.faults.breaker` for the
per-AR fail-open circuit breaker, and :mod:`repro.faults.chaos` for the
chaos suite that asserts the degradation invariants end to end.
"""

from repro.faults.breaker import BreakerPolicy, CircuitBreaker
from repro.faults.plan import (
    INJECTION_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "INJECTION_POINTS",
    "InjectedFault",
]
