"""The Kivati user-space library (Section 3.4).

Implements the machine runtime interface. Every annotation first runs here
in user space; the library decides whether a kernel crossing is needed:

- whitelist checks always complete in user space;
- in the *null syscall* diagnostic configuration, every annotation crosses
  into a kernel that does nothing (isolates crossing cost, Table 3);
- without the first optimization, every annotation crosses;
- with the first optimization, the user-space replica of the AR table and
  watchpoint metadata lets begin/end/clear return without crossing unless
  a hardware register must change, a thread must be suspended/woken, or
  violation triggers must be evaluated.

In this simulation the "replica" and the kernel state are the same Python
objects (the paper keeps them consistent through a shared page); the
crossing decision — and therefore the cost model — follows exactly the
paper's rules for when the kernel must be entered.
"""

from repro.core.config import Mode
from repro.core.reports import DegradationLog
from repro.faults.breaker import BreakerPolicy, CircuitBreaker
from repro.kernel.kivati import KivatiKernel
from repro.pressure.plane import PressurePlane
from repro.pressure.policy import PressurePolicy
from repro.machine.runtime_iface import BaseRuntime
from repro.machine.threads import ThreadState
from repro.runtime.stats import KivatiStats
from repro.runtime.whitelist import Whitelist


class KivatiRuntime(BaseRuntime):
    """Instrumentation runtime implementing the full Kivati system."""

    wants_all_accesses = False

    def __init__(self, config, ar_table, log, sync_ar_ids=(), faults=None,
                 degrade=None, static_safe_ar_ids=(), journal=None,
                 footprints=None, func_footprints=None,
                 blocking_ar_ids=(), coarse_vars=()):
        if journal is not None and config.journal is None:
            # convenience: callers may hand the recorder here instead of
            # pre-binding it on the config
            config = config.copy(journal=journal)
        self.config = config
        self.ar_table = ar_table
        self.stats = KivatiStats()
        self.log = log
        self.faults = faults
        # ARs the lock-discipline analysis proved safe: skipped entirely
        # in user space, like the whitelist but decided before the run
        self.static_pruned = (frozenset(static_safe_ar_ids)
                              if config.static_prune else frozenset())
        self.degrade = degrade if degrade is not None else DegradationLog()
        whitelist_ids = set(config.whitelist)
        if config.opt.o4_syncvars:
            whitelist_ids.update(sync_ar_ids)
        self.whitelist = Whitelist(
            whitelist_ids,
            path=config.whitelist_path,
            reread_interval_ns=config.whitelist_reread_ns,
        )
        self.whitelist.faults = faults
        # counters from the startup read (no clock yet, so no event)
        self.stats.whitelist_read_errors = self.whitelist.read_errors
        self.stats.whitelist_malformed_lines = self.whitelist.malformed_lines
        if config.breaker is True:
            self.breaker = CircuitBreaker()
        elif isinstance(config.breaker, BreakerPolicy):
            self.breaker = CircuitBreaker(config.breaker)
        else:
            self.breaker = None
        # overload control plane: slot arbitration, AR quarantine,
        # admission control, adaptive suspension timeouts
        if config.pressure is True:
            self.pressure = PressurePlane(PressurePolicy())
        elif isinstance(config.pressure, PressurePolicy):
            self.pressure = PressurePlane(config.pressure)
        else:
            self.pressure = None
        self.kernel = KivatiKernel(config, ar_table, self.stats, log,
                                   faults=faults, degrade=self.degrade,
                                   breaker=self.breaker,
                                   pressure=self.pressure)
        self.machine = None
        self._pause_seq = 0
        self.trace = config.trace
        self.journal = config.journal
        # static conflict-footprint analysis products (repro.analysis
        # .footprint), consumed by the conflict-aware scheduler
        self.footprints = footprints or {}
        self.func_footprints = func_footprints or {}
        # ARs whose span contains a potentially blocking call (the W004
        # analysis): the conflict scheduler must not stall waiting for
        # such a window to close
        self.blocking_ar_ids = frozenset(blocking_ar_ids)
        # globals the footprint analysis tracks at array granularity
        # (element accesses collapse to the base name); the scheduler
        # treats conflicts witnessed only by these as phantoms
        self.coarse_vars = frozenset(coarse_vars)

    # ------------------------------------------------------------------

    def attach(self, machine):
        self.machine = machine
        self.kernel.attach(machine)
        if (self.config.conflict_sched
                and self.config.mode == Mode.PREVENTION
                and self.footprints):
            # conflict-aware scheduling only makes sense when Kivati is
            # *preventing*: bug-finding mode deliberately widens racy
            # windows, and deconflicting them would fight the pauses
            from repro.machine.conflictsched import ConflictPolicy

            machine.conflict_policy = ConflictPolicy(
                self.footprints, self.func_footprints, self.kernel,
                self.stats, blocking_ar_ids=self.blocking_ar_ids,
                coarse_vars=self.coarse_vars)

    def _costs(self):
        return self.machine.costs

    def _check_whitelist(self, core, ar_id):
        """User-space whitelist check; returns (whitelisted, cost)."""
        if self.whitelist.maybe_reread(core.clock):
            wl = self.whitelist
            if wl.read_errors != self.stats.whitelist_read_errors:
                self.stats.whitelist_read_errors = wl.read_errors
                self.kernel._record_degradation(
                    "whitelist-read-error", core.clock,
                    path=wl.path, errors=wl.read_errors)
            self.stats.whitelist_malformed_lines = wl.malformed_lines
        costs = self._costs()
        if ar_id in self.whitelist:
            self.stats.whitelist_hits += 1
            return True, costs.whitelist_check
        return False, costs.whitelist_check

    # ------------------------------------------------------------------
    # annotation entry points
    # ------------------------------------------------------------------

    def on_begin_atomic(self, core, thread, ar_id, addr):
        self.stats.begin_calls += 1
        costs = self._costs()
        if ar_id in self.static_pruned:
            # statically proven safe: no crossing, no arming, no kernel
            self.stats.static_prune_hits += 1
            return costs.whitelist_check
        whitelisted, cost = self._check_whitelist(core, ar_id)
        if whitelisted:
            return cost

        opt = self.config.opt
        if opt.null_syscall:
            # diagnostic: cross into the kernel, do nothing
            self.stats.begin_syscalls += 1
            self.machine.kernel_entry(core, thread)
            return cost + costs.syscall

        if self.pressure is not None and self.pressure.is_quarantined(ar_id):
            # quarantined AR: sampled monitoring (1-in-N entries) instead
            # of the breaker's all-or-nothing fail-open; the sampling
            # decision replaces the breaker check entirely
            decision = self.pressure.admit_quarantined(ar_id)
            self.kernel._journal(core.clock, thread.tid, "quarantine",
                                 action=decision, ar=ar_id)
            if decision == "skip":
                self.stats.quarantine_sampled_skips += 1
                return cost + costs.userlib_check
            self.stats.quarantine_monitored += 1
        elif self.pressure is not None:
            shed = self.pressure.shed_reason(
                len(self.kernel.suspensions),
                self.machine.sched_latency_ema)
            if shed is not None:
                # backpressure: overload watermark crossed — shed this
                # entry's *monitoring* (correctness is untouched; the
                # program simply runs this window unprotected)
                self.stats.admission_sheds += 1
                self.kernel._record_degradation(
                    "admission-shed", core.clock, tid=thread.tid,
                    ar=ar_id, reason=shed)
                self.kernel._journal(core.clock, thread.tid, "pressure",
                                     action="shed", ar=ar_id, reason=shed)
                return cost + costs.userlib_check
        if (self.breaker is not None
                and not (self.pressure is not None
                         and self.pressure.is_quarantined(ar_id))
                and not self.breaker.allows(ar_id, core.clock)):
            # fail-open: this AR tripped its circuit breaker and runs
            # unmonitored until the backoff window closes
            self.stats.breaker_skips += 1
            self.kernel._record_degradation("breaker-skip", core.clock,
                                            tid=thread.tid, ar=ar_id)
            return cost + costs.userlib_check

        info = self.ar_table[ar_id]
        out = self.kernel.begin_atomic(core, thread, info, addr)
        if self.trace is not None:
            self.trace.emit(core.clock, thread.tid, "begin", ar=ar_id,
                            addr=addr, var=info.var,
                            monitored=out.monitored, missed=out.missed,
                            suspended=out.suspended)
            if out.missed:
                self.trace.emit(core.clock, thread.tid, "miss", ar=ar_id)

        crossing = (not opt.o1_userspace) or out.needs_crossing
        if (crossing and self.faults is not None and self.faults.fires(
                "runtime.replica.corrupt", core.clock,
                tid=thread.tid, ar=ar_id, call="begin")):
            # corrupted O1 replica: the library wrongly concludes no
            # crossing is needed; lazy propagation plus the kernel-side
            # consistency check repair the cores on later entries
            crossing = False
        if crossing:
            self.stats.begin_syscalls += 1
            cost += costs.syscall
            self.machine.kernel_entry(core, thread)
        else:
            cost += costs.userlib_check

        # bug-finding mode: stall the local thread inside begin_atomic to
        # widen the atomic region (Section 2.3)
        if (self.config.mode == Mode.BUG_FINDING
                and out.monitored
                and thread.state == ThreadState.RUNNING
                and self._should_pause(thread)):
            self.stats.pauses += 1
            if self.trace is not None:
                self.trace.emit(core.clock, thread.tid, "pause", ar=ar_id,
                                ns=self.config.pause_ns)
            if self.journal is not None:
                self.journal.emit(core.clock, thread.tid, "pause", ar=ar_id,
                                  ns=self.config.pause_ns)
            self.machine.block_current(
                core, ThreadState.SLEEPING,
                wake_time=core.clock + cost + self.config.pause_ns,
            )
        return cost

    def _should_pause(self, thread):
        """Deterministic sampling decision, independent of the program's
        own PRNG stream so modes stay comparable."""
        prob = self.config.pause_probability
        if prob >= 1.0:
            return True
        if prob <= 0.0:
            return False
        self._pause_seq += 1
        h = ((thread.tid + 1) * 2654435761
             ^ (self._pause_seq * 40503)
             ^ (self.config.seed * 97)) & 0xFFFFFFFF
        h ^= h >> 16
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        h ^= h >> 13
        return (h % 1_000_000) < prob * 1_000_000

    def on_end_atomic(self, core, thread, ar_id, second_is_write):
        self.stats.end_calls += 1
        costs = self._costs()
        if ar_id in self.static_pruned:
            self.stats.static_prune_hits += 1
            return costs.whitelist_check
        whitelisted, cost = self._check_whitelist(core, ar_id)
        if whitelisted:
            return cost

        opt = self.config.opt
        if opt.null_syscall:
            self.stats.end_syscalls += 1
            self.machine.kernel_entry(core, thread)
            return cost + costs.syscall

        from repro.minic.ast import AccessKind

        second_kind = AccessKind.WRITE if second_is_write else AccessKind.READ
        out = self.kernel.end_atomic(core, thread, ar_id, second_kind)
        if self.trace is not None:
            self.trace.emit(core.clock, thread.tid, "end", ar=ar_id,
                            second=str(second_kind),
                            had_triggers=out.had_triggers)

        if not opt.o1_userspace:
            # without the replica, even a no-op end_atomic crosses
            crossing = True
        elif opt.o2_lazy_free:
            # with lazy freeing, only trigger evaluation / wakeups cross
            crossing = out.had_triggers or out.zombie or out.hw_changed
        else:
            crossing = out.needs_crossing
        if (crossing and self.faults is not None and self.faults.fires(
                "runtime.replica.corrupt", core.clock,
                tid=thread.tid, ar=ar_id, call="end")):
            crossing = False
        if crossing:
            self.stats.end_syscalls += 1
            cost += costs.syscall
            self.machine.kernel_entry(core, thread)
        else:
            cost += costs.userlib_check
        return cost

    def on_clear_ar(self, core, thread):
        self.stats.clear_calls += 1
        costs = self._costs()
        opt = self.config.opt
        if opt.null_syscall:
            self.stats.clear_syscalls += 1
            self.machine.kernel_entry(core, thread)
            return costs.syscall

        out = self.kernel.clear_ar(core, thread)
        crossing = (not opt.o1_userspace) or out.needs_crossing
        if crossing:
            self.stats.clear_syscalls += 1
            self.machine.kernel_entry(core, thread)
            return costs.syscall
        return costs.userlib_check

    def on_shadow_store(self, core, thread, ar_id, addr):
        # only present semantically when the third optimization is on;
        # otherwise the annotation pass would not have emitted it
        if not self.config.opt.o3_local_disable or self.config.opt.null_syscall:
            return 0
        self.stats.shadow_stores += 1
        self.kernel.shadow_store(thread, ar_id, addr)
        return self._costs().shadow_store

    # ------------------------------------------------------------------
    # trap and kernel-entry hooks
    # ------------------------------------------------------------------

    def on_watchpoint_trap(self, core, thread, after_pc, hit_slots, accesses):
        self.stats.traps += 1
        if self.trace is not None:
            self.trace.emit(core.clock, thread.tid, "trap",
                            after_pc=after_pc, slots=tuple(hit_slots))
        self.machine.kernel_entries += 1
        self.kernel.on_trap(core, thread, after_pc, hit_slots, accesses)
        return 0

    def on_kernel_entry(self, core, thread):
        self.kernel.on_kernel_entry(core)
        return 0

    def on_thread_exit(self, core, thread):
        # a thread that dies with active ARs releases them (the kernel
        # would reap them with the task)
        table = self.kernel.ar_tables.pop(thread.tid, None)
        if table:
            for ar in list(table.values()):
                self.kernel._detach_ar(ar, core, evaluate=False)
        return 0

    def on_run_end(self, machine):
        # surface ring-buffer evictions: a trace that silently dropped
        # events must say so in the stats and the run report
        if self.trace is not None:
            self.stats.trace_dropped_events = self.trace.dropped
        if self.journal is not None:
            self.stats.journal_frames = len(self.journal) + self.journal.dropped
        self.stats.degradations_dropped = self.degrade.dropped
        # end-of-run slot audit: a lazily-freed slot that aged past the
        # leak bound without any begin/trap reconciling it is a leaked
        # debug register (the O2 leak the watchdog exists to reclaim).
        # Recently lazily-freed slots are normal O2 operation, not leaks.
        if self.pressure is not None:
            # the watchdog gets a last pass first: slots that aged out
            # after the final kernel entry are its to reclaim, and only
            # what it still misses counts as leaked at exit
            self.kernel.shutdown_leak_sweep()
            age_bound = self.pressure.policy.leak_age_ns
            self.stats.quarantine_history_dropped = (
                self.pressure.history_dropped)
        else:
            age_bound = PressurePolicy().leak_age_ns
        now = machine.now()
        for slot in self.kernel.slots:
            if (slot.enabled and slot.lazily_freed
                    and slot.freed_at is not None
                    and now - slot.freed_at >= age_bound):
                self.stats.slots_leaked_at_exit += 1
