"""Run-time statistics needed by the paper's tables."""


class KivatiStats:
    """Counters accumulated over one protected run.

    Domain crossings (Table 4) are ``begin_syscalls + end_syscalls +
    clear_syscalls + traps``; the paper notes the system calls account for
    over 99.9% of entries.
    """

    FIELDS = (
        # annotation executions (user-space entry points)
        "begin_calls",
        "end_calls",
        "clear_calls",
        "shadow_stores",
        # kernel crossings
        "begin_syscalls",
        "end_syscalls",
        "clear_syscalls",
        # watchpoint activity
        "traps",
        "local_traps",
        "remote_traps",
        "stale_traps",
        # monitoring outcomes
        "monitored_ars",
        "missed_ars",
        "whitelist_hits",
        "static_prune_hits",
        "watchpoint_arms",
        # optimization activity
        "lazy_frees",
        "lazy_reconciles",
        # prevention activity
        "suspensions",
        "suspend_timeouts",
        "undos",
        "unable_to_reorder",
        "containments",
        "unresolved_pcs",
        # detection
        "violations",
        "unprevented_violations",
        # bug-finding mode
        "pauses",
        # graceful degradation (fail-open plane)
        "degradations",
        "breaker_trips",
        "breaker_skips",
        "watchdog_breaks",
        "replica_resyncs",
        "whitelist_read_errors",
        "whitelist_malformed_lines",
        "duplicate_traps_ignored",
        "undo_faults_injected",
        # observability of the observers: trace ring-buffer evictions and
        # journal frames produced (0 when the facility is not attached)
        "trace_dropped_events",
        "journal_frames",
        # overload control plane (repro.pressure)
        "slots_leaked",
        "slots_reclaimed",
        "slots_leaked_at_exit",
        "arbiter_preemptions",
        "arbiter_denials",
        "quarantined_ars",
        "quarantine_monitored",
        "quarantine_sampled_skips",
        "quarantine_releases",
        "quarantine_adaptations",
        "admission_sheds",
        "timeout_extensions",
        # bounded-log evictions (satellite of the pressure plane: long
        # soaks must not grow memory without bound, and must say when
        # they dropped records)
        "degradations_dropped",
        "quarantine_history_dropped",
        # conflict-aware scheduling (repro.machine.conflictsched): times
        # the policy picked a non-FIFO thread, times it deferred a
        # conflicting head, and times a deferral cap forced FIFO order
        "conflict_sched_decisions",
        "conflict_defers",
        "conflict_forced_fifo",
        # stall episodes judged failed (ended in forced FIFO, or
        # suspensions+undos rose while the core idled); each failure
        # shrinks the policy's adaptive stall budget by one
        "conflict_stall_failures",
    )

    __slots__ = FIELDS

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def crossings(self):
        """Total kernel domain crossings attributable to Kivati."""
        return (self.begin_syscalls + self.end_syscalls
                + self.clear_syscalls + self.traps)

    def total_ars_executed(self):
        """ARs whose begin_atomic reached the monitoring decision
        (monitored + missed); Table 8's denominator."""
        return self.monitored_ars + self.missed_ars

    def missed_fraction(self):
        total = self.total_ars_executed()
        if total == 0:
            return 0.0
        return self.missed_ars / total

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data):
        """Rebuild a stats object from :meth:`as_dict` output.

        Unknown keys raise — a worker built from newer code must not
        silently drop counters the aggregating supervisor does not know
        about.  Missing keys default to 0 so older payloads still load.
        """
        unknown = set(data) - set(cls.FIELDS)
        if unknown:
            raise ValueError("unknown stats fields: %s"
                             % ", ".join(sorted(unknown)))
        stats = cls()
        for name, value in data.items():
            setattr(stats, name, value)
        return stats

    def merge(self, other):
        """Accumulate ``other`` (a KivatiStats or an ``as_dict`` dict)
        into this object, field by field over ``FIELDS`` so a newly
        added counter can never silently skip aggregation.  Returns
        ``self`` for chaining."""
        if isinstance(other, dict):
            other = type(self).from_dict(other)
        for name in self.FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def __eq__(self, other):
        if not isinstance(other, KivatiStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self):
        return "KivatiStats(crossings=%d, traps=%d, violations=%d)" % (
            self.crossings(), self.traps, self.violations)
