"""User-space Kivati runtime library (Section 3.4).

``begin_atomic``/``end_atomic`` call into this library instead of dropping
straight into the kernel; the library replicates the AR table and
watchpoint metadata and avoids kernel crossings whenever no hardware
register change is needed.
"""

from repro.runtime.stats import KivatiStats
from repro.runtime.userlib import KivatiRuntime
from repro.runtime.whitelist import Whitelist

__all__ = ["KivatiRuntime", "KivatiStats", "Whitelist"]
