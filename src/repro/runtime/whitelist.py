"""The AR whitelist (Section 3.2).

"On application startup, Kivati loads an AR whitelist from a file that
contains a list of benign AR IDs. The contents of this file are stored in
memory and checked on every begin_atomic and end_atomic. ... The whitelist
file is periodically checked and re-read for updates during execution so
that a software developer can send patches to customers to update
whitelists for long running processes."
"""


class Whitelist:
    """In-memory whitelist, optionally backed by a file that is re-read
    periodically (in simulated time)."""

    def __init__(self, initial=(), path=None, reread_interval_ns=None):
        self.ids = set(initial)
        self.path = path
        self.reread_interval_ns = reread_interval_ns
        self._last_read_ns = 0
        if path is not None:
            self._read_file()

    def _read_file(self):
        try:
            with open(self.path) as f:
                for line in f:
                    line = line.split("#", 1)[0].strip()
                    if line:
                        self.ids.add(int(line))
        except FileNotFoundError:
            pass

    def maybe_reread(self, now_ns):
        """Re-read the backing file if the interval elapsed."""
        if self.path is None or self.reread_interval_ns is None:
            return False
        if now_ns - self._last_read_ns < self.reread_interval_ns:
            return False
        self._last_read_ns = now_ns
        self._read_file()
        return True

    def __contains__(self, ar_id):
        return ar_id in self.ids

    def add(self, ar_id):
        self.ids.add(ar_id)

    def update(self, ar_ids):
        self.ids.update(ar_ids)

    def __len__(self):
        return len(self.ids)

    @staticmethod
    def write_file(path, ar_ids, comment=None):
        """Write a whitelist file (one AR id per line)."""
        with open(path, "w") as f:
            if comment:
                f.write("# %s\n" % comment)
            for ar_id in sorted(ar_ids):
                f.write("%d\n" % ar_id)
