"""The AR whitelist (Section 3.2).

"On application startup, Kivati loads an AR whitelist from a file that
contains a list of benign AR IDs. The contents of this file are stored in
memory and checked on every begin_atomic and end_atomic. ... The whitelist
file is periodically checked and re-read for updates during execution so
that a software developer can send patches to customers to update
whitelists for long running processes."

Because the file is patched on customer machines while the protected
process runs, the reader must survive whatever it finds there: malformed
lines are skipped (never raised into the protected process), a failed
read keeps the previous in-memory set, and failed reads are retried with
bounded exponential backoff instead of hammering the file every check.
Writers use a temp-file + atomic rename so a concurrent re-reader never
observes a half-written file.
"""

import os


class Whitelist:
    """In-memory whitelist, optionally backed by a file that is re-read
    periodically (in simulated time)."""

    def __init__(self, initial=(), path=None, reread_interval_ns=None,
                 max_retries=5, retry_backoff_ns=None):
        self.ids = set(initial)
        self.path = path
        self.reread_interval_ns = reread_interval_ns
        self._last_read_ns = 0
        #: failed read attempts / unparseable lines skipped / backoff
        #: retries performed — surfaced into KivatiStats by the runtime
        self.read_errors = 0
        self.malformed_lines = 0
        self.retries = 0
        self.max_retries = max_retries
        if retry_backoff_ns is None:
            retry_backoff_ns = (reread_interval_ns // 8
                                if reread_interval_ns else 1_000_000)
        self.base_retry_backoff_ns = max(1, retry_backoff_ns)
        self._consecutive_errors = 0
        self._next_retry_ns = None
        #: optional repro.faults.FaultInjector (runtime.whitelist.corrupt)
        self.faults = None
        if path is not None:
            self._read_file()

    def _read_file(self, now_ns=0):
        """Attempt one read of the backing file; returns True on success.

        Any failure leaves ``self.ids`` untouched (the previous set keeps
        protecting the process) and malformed lines are skipped rather
        than raised — a half-written patch file must never kill the
        protected program.
        """
        if self.faults is not None and self.faults.fires(
                "runtime.whitelist.corrupt", now_ns, path=self.path):
            # injected corruption/partial write: modelled as an
            # unreadable file so the retry/backoff plane engages
            self._read_failed()
            return False
        try:
            with open(self.path) as f:
                data = f.read()
        except FileNotFoundError:
            # a missing whitelist is legal (nothing trained yet)
            self._consecutive_errors = 0
            return True
        except OSError:
            self._read_failed()
            return False
        for line in data.splitlines():
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                self.ids.add(int(line))
            except ValueError:
                # corrupt or half-written line: skip it, keep the rest
                self.malformed_lines += 1
        self._consecutive_errors = 0
        return True

    def _read_failed(self):
        self.read_errors += 1
        self._consecutive_errors += 1

    def maybe_reread(self, now_ns):
        """Re-read the backing file if the interval elapsed, or if a
        backed-off retry of a failed read is due. Returns True if a read
        was attempted."""
        if self.path is None or self.reread_interval_ns is None:
            return False
        if self._next_retry_ns is not None:
            if now_ns < self._next_retry_ns:
                return False
            self.retries += 1
        elif now_ns - self._last_read_ns < self.reread_interval_ns:
            return False
        self._last_read_ns = now_ns
        if self._read_file(now_ns):
            self._next_retry_ns = None
        elif self._consecutive_errors <= self.max_retries:
            # exponential backoff, bounded by max_retries attempts
            backoff = self.base_retry_backoff_ns << (
                self._consecutive_errors - 1)
            self._next_retry_ns = now_ns + backoff
        else:
            # retries exhausted: wait for the next regular interval
            self._next_retry_ns = None
        return True

    def __contains__(self, ar_id):
        return ar_id in self.ids

    def add(self, ar_id):
        self.ids.add(ar_id)

    def update(self, ar_ids):
        self.ids.update(ar_ids)

    def __len__(self):
        return len(self.ids)

    @staticmethod
    def write_file(path, ar_ids, comment=None):
        """Write a whitelist file (one AR id per line) atomically: a
        temp file is populated and renamed over the target so periodic
        re-readers never observe a half-written file."""
        tmp = "%s.tmp" % path
        with open(tmp, "w") as f:
            if comment:
                f.write("# %s\n" % comment)
            for ar_id in sorted(ar_ids):
                f.write("%d\n" % ar_id)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)


def read_whitelist_ids(path):
    """Tolerantly read one whitelist file without a Whitelist instance.

    Returns ``(ids, malformed_lines, ok)``: the parsed AR ids, how many
    unparseable lines were skipped, and whether the file could be read
    at all (a missing file is ok with an empty set — nothing trained
    yet).  The same survival rules as the in-process reader apply:
    malformed lines are skipped, never raised.
    """
    try:
        with open(path) as f:
            data = f.read()
    except FileNotFoundError:
        return set(), 0, True
    except OSError:
        return set(), 0, False
    ids = set()
    malformed = 0
    for line in data.splitlines():
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            ids.add(int(line))
        except ValueError:
            malformed += 1
    return ids, malformed, True


class WhitelistMergeResult:
    """Outcome of merging per-shard whitelist files."""

    __slots__ = ("ids", "sources", "malformed_lines", "unreadable")

    def __init__(self, ids, sources, malformed_lines, unreadable):
        self.ids = frozenset(ids)
        self.sources = tuple(sources)   # (path, ids_contributed) pairs
        self.malformed_lines = malformed_lines
        self.unreadable = tuple(unreadable)

    @property
    def ok(self):
        return not self.unreadable

    def __len__(self):
        return len(self.ids)


def merge_whitelist_files(out_path, shard_paths, comment=None,
                          initial=()):
    """Merge per-shard whitelist files into one atomic whitelist.

    The merged set is the union of every shard's benign-AR ids (plus
    ``initial``); order of ``shard_paths`` therefore cannot change the
    result.  Each shard is read with the tolerant reader (malformed
    lines skipped and counted, unreadable files recorded — never
    raised), and the output is written with the temp+rename discipline
    so a concurrent re-reader never observes a half-written merge.
    ``out_path=None`` merges in memory only.
    """
    ids = set(initial)
    sources = []
    malformed = 0
    unreadable = []
    for path in shard_paths:
        shard_ids, shard_malformed, ok = read_whitelist_ids(path)
        malformed += shard_malformed
        if not ok:
            unreadable.append(path)
            continue
        sources.append((path, len(shard_ids)))
        ids |= shard_ids
    if out_path is not None:
        Whitelist.write_file(out_path, ids, comment=comment)
    return WhitelistMergeResult(ids, sources, malformed, unreadable)
