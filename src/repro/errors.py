"""Exception hierarchy for the Kivati reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MiniCError(ReproError):
    """Base class for errors in the mini-C front end."""

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        if line is not None:
            message = "line %d:%d: %s" % (line, col if col is not None else 0, message)
        super().__init__(message)


class LexError(MiniCError):
    """Invalid character or malformed token in mini-C source."""


class ParseError(MiniCError):
    """Syntax error in mini-C source."""


class TypeError_(MiniCError):
    """Semantic / type error in mini-C source."""


class CompileError(ReproError):
    """Error lowering mini-C AST to bytecode."""


class AnalysisError(ReproError):
    """Error in the static annotator."""


class MachineError(ReproError):
    """Runtime fault raised by the virtual machine."""


class MemoryFault(MachineError):
    """Access to an unmapped or out-of-range address."""

    def __init__(self, address, message="memory fault"):
        self.address = address
        super().__init__("%s at address %d" % (message, address))


class DivideByZero(MachineError):
    """Integer division or modulo by zero."""


class StackOverflow(MachineError):
    """Thread stack exhausted."""


class DeadlockError(MachineError):
    """All live threads are blocked and no timer event can unblock them."""


class StepLimitExceeded(MachineError):
    """The machine executed more instructions than the configured limit."""


class KernelError(ReproError):
    """Invariant violation inside the simulated Kivati kernel component."""


class ConfigError(ReproError):
    """Invalid configuration value."""


class FaultPlanError(ConfigError):
    """Invalid fault-injection plan (unknown point, bad probability)."""


class WorkloadError(ReproError):
    """A workload or bug-corpus entry was requested that does not exist."""


class JournalError(ReproError):
    """Malformed journal data, payload, or writer misuse."""


class ObsError(ReproError):
    """Misuse of the observability plane (`repro.obs`): metric type or
    bucket-layout conflicts, malformed exported payloads."""


class ServiceError(ReproError):
    """Error in the long-lived detection service (`repro.service`)."""


class ProtocolError(ServiceError):
    """Malformed frame or request on the service wire protocol.

    Carries a stable machine-readable ``kind`` (e.g. ``malformed-frame``,
    ``frame-too-large``) so clients and tests can assert on the failure
    class, not on message text.
    """

    def __init__(self, kind, message):
        self.kind = kind
        super().__init__("%s: %s" % (kind, message))


class JournalCrash(ReproError):
    """Simulated process death at a journal frame boundary.

    Raised by the ``journal.crash`` injection point; carries how many
    complete frames reached the disk before the crash so recovery tests
    can assert no pre-crash frame was lost.
    """

    def __init__(self, frames_written, time_ns=0):
        self.frames_written = frames_written
        self.time_ns = time_ns
        super().__init__("simulated crash after %d journal frames"
                         % frames_written)
