"""Perf-regression sentinel over committed ``BENCH_*.json`` artifacts.

Every bench plane commits a JSON artifact carrying its performance and
correctness claims. This module diffs two such artifacts — typically
the committed one against a freshly generated one, or the artifacts of
two commits — against **per-metric tolerance rules** and reports every
regression, so CI can catch a perf cliff the functional suites would
never see.

Rules match flattened dotted paths (``warm_cold.speedup_p50``,
``series.0.jobs_per_sec``) with ``fnmatch`` globs and carry a
direction:

- ``higher`` — the metric must not drop more than ``rel_tol`` below the
  baseline (throughputs, speedups, rates);
- ``lower`` — it must not rise more than ``rel_tol`` above (latencies,
  overheads, elapsed times);
- ``bool`` — a truthy baseline must stay truthy (determinism flags,
  gate verdicts);
- ``ignore`` — informational only (counts, configuration echoes).

The first matching rule wins; schema-specific rules (keyed by the
artifact's ``schema`` field) are consulted before the generic defaults,
and anything unmatched is ignored — the sentinel is deliberately
conservative so it can run on every artifact without a per-schema
schema change. Timing tolerances default loose (25%) because CI hosts
are noisy; correctness booleans have no tolerance at all.
"""

from fnmatch import fnmatchcase

from repro.errors import ObsError


class Rule:
    """One tolerance rule: glob over flattened paths + direction."""

    __slots__ = ("pattern", "direction", "rel_tol")

    def __init__(self, pattern, direction, rel_tol=0.0):
        if direction not in ("higher", "lower", "bool", "ignore"):
            raise ObsError("unknown rule direction %r" % (direction,))
        self.pattern = pattern
        self.direction = direction
        self.rel_tol = rel_tol

    def matches(self, path):
        return fnmatchcase(path, self.pattern)


#: Generic rules applied to every artifact (after schema-specific ones).
DEFAULT_RULES = (
    # correctness flags: a truthy baseline claim must never flip off
    Rule("*deterministic*", "bool"),
    Rule("*.ok", "bool"),
    Rule("ok", "bool"),
    Rule("*digests_match*", "bool"),
    Rule("*identical*", "bool"),
    Rule("*verdicts_equal*", "bool"),
    Rule("*agree*", "bool"),
    # throughput-like: higher is better
    Rule("*per_sec*", "higher", 0.10),
    Rule("*speedup*", "higher", 0.10),
    Rule("*instrs_per_sec*", "higher", 0.10),
    Rule("*recall*", "higher", 0.0),
    Rule("*fixes.rate", "higher", 0.0),
    # latency/overhead-like: lower is better
    Rule("*overhead*", "lower", 0.25),
    Rule("*_p50", "lower", 0.25),
    Rule("*_p95", "lower", 0.25),
    Rule("*_p99", "lower", 0.25),
    Rule("*elapsed*", "lower", 0.25),
    # loss/corruption counters must not grow at all
    Rule("*lost*", "lower", 0.0),
    Rule("*crashes*", "lower", 0.0),
    Rule("*disagreements*", "lower", 0.0),
)

#: Schema-specific tightenings, consulted before DEFAULT_RULES.
SCHEMA_RULES = {
    "kivati-obsbench/v1": (
        # the tentpole budget: enabled-overhead fraction is a hard gate
        Rule("overhead.*.overhead_frac", "lower", 0.0),
    ),
    "kivati-checkerbench/v1": (
        Rule("scaling.slope", "lower", 0.10),
    ),
}


def flatten(payload, path=""):
    """Flatten nested dicts/lists to sorted (dotted-path, leaf) pairs;
    only numeric and boolean leaves are kept."""
    out = []
    if isinstance(payload, dict):
        for key in sorted(payload):
            sub = "%s.%s" % (path, key) if path else str(key)
            out.extend(flatten(payload[key], sub))
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            out.extend(flatten(value, "%s.%d" % (path, i)))
    elif isinstance(payload, bool) or isinstance(payload, (int, float)):
        out.append((path, payload))
    return out


def _rule_for(path, schema):
    for rule in SCHEMA_RULES.get(schema, ()):
        if rule.matches(path):
            return rule
    for rule in DEFAULT_RULES:
        if rule.matches(path):
            return rule
    return None


class RegressReport:
    """Outcome of one artifact comparison."""

    __slots__ = ("schema", "checked", "regressions", "improvements",
                 "missing", "added")

    def __init__(self, schema):
        self.schema = schema
        self.checked = 0
        self.regressions = []     # list of finding dicts
        self.improvements = []
        self.missing = []         # governed metrics absent from the new
        self.added = []           # governed metrics absent from the base

    @property
    def ok(self):
        return not self.regressions and not self.missing

    def describe(self):
        lines = ["regress: schema %s, %d governed metrics checked, "
                 "%d regression(s), %d improvement(s)"
                 % (self.schema, self.checked, len(self.regressions),
                    len(self.improvements))]
        for finding in self.regressions:
            lines.append("  REGRESSED %(path)s: %(base)s -> %(new)s "
                         "(%(direction)s, tol %(rel_tol).2f)" % finding)
        for path in self.missing:
            lines.append("  MISSING %s: governed metric absent from the "
                         "new artifact" % path)
        for finding in self.improvements:
            lines.append("  improved %(path)s: %(base)s -> %(new)s"
                         % finding)
        if self.added:
            lines.append("  new governed metrics: %s"
                         % ", ".join(self.added))
        return "\n".join(lines)

    def as_dict(self):
        return {
            "schema": self.schema,
            "checked": self.checked,
            "ok": self.ok,
            "regressions": list(self.regressions),
            "improvements": list(self.improvements),
            "missing": list(self.missing),
            "added": list(self.added),
        }


def compare_artifacts(base, new, rel_tol_scale=1.0):
    """Diff two bench artifacts; returns a :class:`RegressReport`.

    ``rel_tol_scale`` loosens (>1) or tightens (<1) every relative
    tolerance uniformly — CI dry-runs on noisy hosts pass ``2.0``.
    """
    if not isinstance(base, dict) or not isinstance(new, dict):
        raise ObsError("artifacts must be JSON objects")
    schema = base.get("schema")
    if schema is None:
        raise ObsError("baseline artifact has no schema field")
    if new.get("schema") != schema:
        raise ObsError("schema mismatch: baseline %r vs new %r"
                       % (schema, new.get("schema")))
    report = RegressReport(schema)
    base_leaves = dict(flatten(base))
    new_leaves = dict(flatten(new))
    for path in sorted(base_leaves):
        rule = _rule_for(path, schema)
        if rule is None or rule.direction == "ignore":
            continue
        if path not in new_leaves:
            report.missing.append(path)
            continue
        report.checked += 1
        base_value = base_leaves[path]
        new_value = new_leaves[path]
        finding = {"path": path, "base": base_value, "new": new_value,
                   "direction": rule.direction,
                   "rel_tol": rule.rel_tol * rel_tol_scale}
        if rule.direction == "bool":
            if bool(base_value) and not bool(new_value):
                report.regressions.append(finding)
            elif not bool(base_value) and bool(new_value):
                report.improvements.append(finding)
            continue
        tol = rule.rel_tol * rel_tol_scale
        # scale-free slack floor so near-zero baselines don't flag on
        # absolute noise
        slack = abs(base_value) * tol
        if rule.direction == "higher":
            if new_value < base_value - slack:
                report.regressions.append(finding)
            elif new_value > base_value + slack:
                report.improvements.append(finding)
        else:  # lower
            if new_value > base_value + slack:
                report.regressions.append(finding)
            elif new_value < base_value - slack:
                report.improvements.append(finding)
    for path in sorted(set(new_leaves) - set(base_leaves)):
        rule = _rule_for(path, schema)
        if rule is not None and rule.direction != "ignore":
            report.added.append(path)
    return report


__all__ = ["DEFAULT_RULES", "RegressReport", "Rule", "SCHEMA_RULES",
           "compare_artifacts", "flatten"]
