"""Sampling-free deterministic VM profiler.

Where a wall-clock sampling profiler would make run output depend on
host speed, this profiler counts discrete, fully deterministic events:

- per-opcode dispatch counts in ``Machine._execute`` — the hot-path
  evidence the dispatch-flattening ROADMAP item needs;
- watchpoint-membership check rates in ``Machine._check_watchpoints``
  (calls, accesses probed, calls that hit, slots hit) — the measured
  miss rate is what justifies a Bloom-style negative-lookup front line;
- suspension-queue depth at every kernel ``_suspend`` (distribution +
  peak), the kernel-side congestion signal.

Counts are identical for identical ``(config, seed)`` regardless of
host, process, or PYTHONHASHSEED, so they can be asserted in tests and
diffed between runs. An **optional wall-clock timing mode**
(``wall_time=True``) additionally attributes host nanoseconds to the
last-dispatched opcode; timing numbers are host-dependent and excluded
from deterministic exports unless explicitly requested.

When profiling is off, ``machine.profiler`` / ``kernel.profiler`` are
``None`` and every hook site is a single attribute-is-None predicate —
the same zero-overhead idiom the fault and journal planes use.
"""

from repro.obs.metrics import BUCKET_LAYOUTS, Histogram

#: suspension-queue depth buckets (shared with the metrics registry so
#: profiler output and registry histograms line up)
DEPTH_BOUNDS = BUCKET_LAYOUTS["depth"]


def _named(mapping):
    """Normalize an op-keyed mapping to opcode-name keys (hot-path hooks
    key by the Op member itself to skip the enum ``.value`` lookup)."""
    out = {}
    for op, value in mapping.items():
        if not value:
            continue  # machines pre-seed every opcode with 0
        name = getattr(op, "value", op)
        out[name] = out.get(name, 0) + value
    return out


class VMProfiler:
    """Deterministic event counters for one protected run."""

    __slots__ = ("op_counts", "op_wall_ns", "wall_time", "_last_op",
                 "pc_counts", "_instr_op_names",
                 "wp_checks", "wp_accesses", "wp_hit_checks",
                 "wp_hit_slots", "suspend_depth", "suspend_peak")

    def __init__(self, wall_time=False):
        # keyed by the Op member itself (or its string name) — keys are
        # normalized to names at export time.  Machines do not write
        # here on the hot path: they bump ``pc_counts[pc]`` (a flat list
        # indexed by program counter, installed by attach_program) and
        # the per-op view is aggregated lazily — Enum hashing is a
        # Python-level call and far too slow per dispatch.
        self.op_counts = {}       # op -> dispatch count
        self.op_wall_ns = {}      # op -> host ns (wall mode only)
        self.pc_counts = None     # list, dispatch count per pc
        self._instr_op_names = None  # list, opcode name per pc
        self.wall_time = wall_time
        self._last_op = None
        self.wp_checks = 0        # calls to _check_watchpoints
        self.wp_accesses = 0      # (addr, is_write) pairs probed
        self.wp_hit_checks = 0    # calls that returned >=1 slot
        self.wp_hit_slots = 0     # total slots hit
        self.suspend_depth = Histogram("kernel.suspend_depth", DEPTH_BOUNDS)
        self.suspend_peak = 0

    # ------------------------------------------------------------------
    # hook points (hot path — keep these tiny)
    # ------------------------------------------------------------------

    def attach_program(self, instrs):
        """Install (and return) the per-pc dispatch array for a machine
        about to run ``instrs``.  Any counts from a previously attached
        program are folded into ``op_counts`` first, so one profiler can
        observe several runs."""
        self._flush_pc_counts()
        self._instr_op_names = [instr.op.value for instr in instrs]
        self.pc_counts = [0] * len(instrs)
        return self.pc_counts

    def _flush_pc_counts(self):
        if self.pc_counts is not None:
            names = self._instr_op_names
            counts = self.op_counts
            for pc, n in enumerate(self.pc_counts):
                if n:
                    name = names[pc]
                    counts[name] = counts.get(name, 0) + n
            self.pc_counts = None
            self._instr_op_names = None

    def count_op(self, op):
        self._last_op = op
        counts = self.op_counts
        counts[op] = counts.get(op, 0) + 1

    def add_wall_ns(self, ns):
        op = self._last_op
        if op is not None:
            wall = self.op_wall_ns
            wall[op] = wall.get(op, 0) + ns

    def note_wp_check(self, accesses, hit_slots):
        self.wp_checks += 1
        self.wp_accesses += accesses
        if hit_slots:
            self.wp_hit_checks += 1
            self.wp_hit_slots += hit_slots

    def note_suspend(self, depth):
        self.suspend_depth.observe(depth)
        if depth > self.suspend_peak:
            self.suspend_peak = depth

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    @property
    def total_dispatches(self):
        total = sum(self.op_counts.values())
        if self.pc_counts is not None:
            total += sum(self.pc_counts)
        return total

    def named_op_counts(self):
        """Per-opcode dispatch counts keyed by opcode name, combining
        the live per-pc array with any flushed/manual counts."""
        out = _named(self.op_counts)
        if self.pc_counts is not None:
            names = self._instr_op_names
            for pc, n in enumerate(self.pc_counts):
                if n:
                    name = names[pc]
                    out[name] = out.get(name, 0) + n
        return out

    def named_op_wall_ns(self):
        """``op_wall_ns`` with keys normalized to opcode names."""
        return _named(self.op_wall_ns)

    @property
    def wp_hit_rate(self):
        return self.wp_hit_checks / self.wp_checks if self.wp_checks else 0.0

    def as_dict(self, include_wall=False):
        """Deterministic JSON-safe snapshot (sorted keys, no host time
        unless ``include_wall``)."""
        ops = self.named_op_counts()
        payload = {
            "ops": {name: ops[name] for name in sorted(ops)},
            "wp": {
                "checks": self.wp_checks,
                "accesses": self.wp_accesses,
                "hit_checks": self.wp_hit_checks,
                "hit_slots": self.wp_hit_slots,
            },
            "suspend_depth": {
                "bounds": list(self.suspend_depth.bounds),
                "counts": list(self.suspend_depth.counts),
                "sum": self.suspend_depth.sum,
                "count": self.suspend_depth.count,
                "peak": self.suspend_peak,
            },
        }
        if include_wall:
            wall = self.named_op_wall_ns()
            payload["wall_ns"] = {name: wall[name] for name in sorted(wall)}
        return payload

    def export_to(self, registry, prefix="kivati.vm."):
        """Push the deterministic counters into a metrics registry."""
        ops = self.named_op_counts()
        for name in sorted(ops):
            registry.counter("%sop.%s" % (prefix, name)).inc(ops[name])
        registry.counter(prefix + "wp.checks").inc(self.wp_checks)
        registry.counter(prefix + "wp.accesses").inc(self.wp_accesses)
        registry.counter(prefix + "wp.hit_checks").inc(self.wp_hit_checks)
        registry.counter(prefix + "wp.hit_slots").inc(self.wp_hit_slots)
        hist = registry.histogram("kivati.kernel.suspend_depth", "depth")
        for i, n in enumerate(self.suspend_depth.counts):
            hist.counts[i] += n
        hist.sum += self.suspend_depth.sum
        hist.count += self.suspend_depth.count
        registry.gauge("kivati.kernel.suspend_depth_peak").max(
            self.suspend_peak)

    def hot_path_table(self, top=12):
        """Render the per-app hot-path table: opcodes by dispatch share,
        cumulative share, and (in wall mode) host time share."""
        total = self.total_dispatches
        lines = ["hot path: %d dispatches, %d watchpoint checks "
                 "(%d accesses, hit rate %.4f)"
                 % (total, self.wp_checks, self.wp_accesses,
                    self.wp_hit_rate)]
        if self.suspend_depth.count:
            lines.append("  suspension queue: %d suspends, mean depth "
                         "%.2f, peak %d"
                         % (self.suspend_depth.count,
                            self.suspend_depth.sum
                            / self.suspend_depth.count,
                            self.suspend_peak))
        if not total:
            lines.append("  (no instructions dispatched)")
            return "\n".join(lines)
        op_counts = self.named_op_counts()
        op_wall = self.named_op_wall_ns()
        wall_total = sum(op_wall.values())
        header = "  %4s %-10s %12s %7s %7s" % ("rank", "op", "count",
                                               "%", "cum%")
        if wall_total:
            header += " %9s %7s" % ("wall_us", "wall%")
        lines.append(header)
        ranked = sorted(op_counts.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        cum = 0
        for rank, (name, count) in enumerate(ranked[:top], start=1):
            cum += count
            row = "  %4d %-10s %12d %6.2f%% %6.2f%%" % (
                rank, name, count, 100.0 * count / total,
                100.0 * cum / total)
            if wall_total:
                ns = op_wall.get(name, 0)
                row += " %9.1f %6.2f%%" % (ns / 1e3,
                                           100.0 * ns / wall_total)
            lines.append(row)
        if len(ranked) > top:
            rest = total - cum
            lines.append("  %4s %-10s %12d %6.2f%%"
                         % ("...", "(%d more)" % (len(ranked) - top),
                            rest, 100.0 * rest / total))
        return "\n".join(lines)


__all__ = ["DEPTH_BOUNDS", "VMProfiler"]
