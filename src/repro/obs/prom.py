"""Prometheus text-format exposition (version 0.0.4).

Renders a :class:`repro.obs.metrics.MetricsRegistry` payload — or any
flat name->number mapping, which is how `kivati service stats --prom`
exposes the daemon's ``ServiceStats`` — as the Prometheus text format.
Output is sorted by metric name and fully deterministic, so it can be
golden-pinned in tests.
"""


def sanitize_name(name):
    """Map a dotted/dashed metric name onto the Prometheus charset
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    out = []
    for i, ch in enumerate(name):
        if ch.isalnum() or ch == "_" or ch == ":":
            out.append(ch)
        else:
            out.append("_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "_" + text
    return text


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return "%d" % value


def render_metrics(payload, prefix=""):
    """Render a ``MetricsRegistry.to_dict()`` payload (or a registry —
    anything with ``to_dict``) as Prometheus text."""
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    lines = []
    for name in sorted(payload.get("counters", {})):
        prom = sanitize_name(prefix + name)
        lines.append("# TYPE %s counter" % prom)
        lines.append("%s %s" % (prom,
                                _format_value(payload["counters"][name])))
    for name in sorted(payload.get("gauges", {})):
        prom = sanitize_name(prefix + name)
        lines.append("# TYPE %s gauge" % prom)
        lines.append("%s %s" % (prom,
                                _format_value(payload["gauges"][name])))
    for name in sorted(payload.get("histograms", {})):
        data = payload["histograms"][name]
        prom = sanitize_name(prefix + name)
        lines.append("# TYPE %s histogram" % prom)
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append('%s_bucket{le="%s"} %d'
                         % (prom, _format_value(bound), cumulative))
        cumulative += data["counts"][len(data["bounds"])]
        lines.append('%s_bucket{le="+Inf"} %d' % (prom, cumulative))
        lines.append("%s_sum %s" % (prom, _format_value(data["sum"])))
        lines.append("%s_count %d" % (prom, data["count"]))
    return "\n".join(lines) + "\n" if lines else ""


def render_flat(values, prefix="kivati_", metric_type="gauge"):
    """Render a flat name->number mapping (e.g. the service daemon's
    stats response) as Prometheus gauges; non-numeric values are
    skipped."""
    lines = []
    for name in sorted(values):
        value = values[name]
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        prom = sanitize_name(prefix + name)
        lines.append("# TYPE %s %s" % (prom, metric_type))
        lines.append("%s %s" % (prom, _format_value(value)))
    return "\n".join(lines) + "\n" if lines else ""


__all__ = ["render_flat", "render_metrics", "sanitize_name"]
