"""Span tracing: journal/service/fleet lifecycles as Chrome trace JSON.

Three span sources, one output format — the Chrome trace-event JSON
array (``{"traceEvents": [...]}``) that Perfetto and ``chrome://tracing``
render directly:

- :func:`journal_trace_events` — AR-lifecycle spans derived **purely**
  from the incident journal: ``begin→suspend/wake/stall→end`` windows
  per thread, core-occupancy slices from ``sched`` frames, and instant
  markers for traps, violations, undos and degradations. Because the
  builder consumes the journal's monotonic sequence and simulated
  nanosecond clock (never wall time), a recorded run and its replay
  produce **identical span trees**, and the export is byte-deterministic
  across processes and PYTHONHASHSEED.
- :func:`service_trace_events` — request lifecycle
  (``accept→dispatch/retry→respond``) from the `kivati serve` daemon's
  append-only event log, using the log's own sequence numbers as a
  logical clock (the daemon does not timestamp events, by design).
- :func:`fleet_trace_events` — per-worker job attempt slices
  (``claim→run→done/crash/retry``) from the supervisor's attempt
  timeline, in wall-clock seconds relative to batch start.

Export with :func:`export_chrome_trace` / :func:`render_chrome_trace`:
canonical JSON (sorted keys, fixed separators), so identical inputs
yield identical bytes.
"""

import json

#: Synthetic pid lanes in the exported trace, one per span source.
PID_THREADS = 1
PID_CORES = 2
PID_SERVICE = 3
PID_FLEET = 4

#: journal kinds rendered as instant markers rather than spans
_INSTANT_KINDS = ("trap", "violation", "undo", "miss", "pause", "watchdog",
                  "degrade", "arm", "disarm", "trigger", "clear", "resync",
                  "arbiter", "quarantine", "pressure")


def _us(time_ns):
    # chrome trace timestamps are microseconds; exact division keeps the
    # full nanosecond resolution and reprs deterministically
    return time_ns / 1000.0


def _meta(pid, name):
    return {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": name}}


def _span(pid, tid, name, cat, start_us, end_us, args):
    # per-core clocks are not globally monotonic: a thread migrating
    # cores can close a window "before" it opened; clamp, don't reorder
    dur = end_us - start_us
    return {"ph": "X", "pid": pid, "tid": tid, "name": name, "cat": cat,
            "ts": start_us, "dur": dur if dur > 0 else 0.0, "args": args}


def _instant(pid, tid, name, cat, ts_us, args):
    return {"ph": "i", "s": "t", "pid": pid, "tid": tid, "name": name,
            "cat": cat, "ts": ts_us, "args": args}


def journal_trace_events(events):
    """Build trace events from an iterable of
    :class:`repro.journal.events.JournalEvent` (seq order assumed, as
    ``read_journal`` returns them)."""
    out = [_meta(PID_THREADS, "threads (AR lifecycle)"),
           _meta(PID_CORES, "cores (scheduler)")]
    open_ars = {}       # (tid, ar_id) -> (start_ns, payload)
    open_susp = {}      # tid -> (start_ns, payload)
    core_occupancy = {}  # core -> (start_ns, tid)
    last_ns = 0
    seen_tids = set()

    def close_ar(key, end_ns, extra=None):
        start_ns, payload = open_ars.pop(key)
        args = dict(payload)
        if extra:
            args.update(extra)
        out.append(_span(PID_THREADS, key[0], "AR %s" % (key[1],), "ar",
                         _us(start_ns), _us(end_ns), args))

    def close_susp(tid, end_ns, how):
        start_ns, payload = open_susp.pop(tid)
        args = dict(payload)
        args["closed_by"] = how
        out.append(_span(PID_THREADS, tid,
                         "suspended(%s)" % payload.get("reason", "?"),
                         "suspend", _us(start_ns), _us(end_ns), args))

    def close_core(core, end_ns):
        start_ns, tid = core_occupancy.pop(core)
        out.append(_span(PID_CORES, core, "tid %d" % tid, "sched",
                         _us(start_ns), _us(end_ns), {"tid": tid}))

    for event in events:
        kind = event.kind
        tid = event.tid
        time_ns = event.time_ns
        payload = event.payload
        if time_ns > last_ns:
            last_ns = time_ns
        if tid >= 0:
            seen_tids.add(tid)
        if kind == "begin":
            key = (tid, payload.get("ar"))
            if key in open_ars:       # re-begin: close the stale window
                close_ar(key, time_ns, {"reopened": True})
            open_ars[key] = (time_ns, payload)
        elif kind == "end":
            key = (tid, payload.get("ar"))
            if key in open_ars:
                close_ar(key, time_ns)
            else:
                out.append(_instant(PID_THREADS, tid, "end", "ar",
                                    _us(time_ns), dict(payload)))
        elif kind == "zombify":
            key = (tid, payload.get("ar"))
            if key in open_ars:
                close_ar(key, time_ns, {"zombified": True})
            else:
                out.append(_instant(PID_THREADS, tid, "zombify", "ar",
                                    _us(time_ns), dict(payload)))
        elif kind == "suspend":
            if tid in open_susp:
                close_susp(tid, time_ns, "re-suspend")
            open_susp[tid] = (time_ns, payload)
        elif kind in ("wake", "timeout"):
            if tid in open_susp:
                close_susp(tid, time_ns, kind)
            else:
                out.append(_instant(PID_THREADS, tid, kind, "suspend",
                                    _us(time_ns), dict(payload)))
        elif kind == "sched":
            core = payload.get("core", 0)
            if core in core_occupancy:
                close_core(core, time_ns)
            core_occupancy[core] = (time_ns, tid)
        elif kind in _INSTANT_KINDS:
            out.append(_instant(PID_THREADS, tid, kind, kind,
                                _us(time_ns), dict(payload)))
        elif kind in ("run-start", "run-end"):
            out.append(_instant(PID_THREADS, -1, kind, "run",
                                _us(time_ns), {}))
    # close whatever the stream left open, at the last seen timestamp
    for key in sorted(open_ars):
        close_ar(key, last_ns, {"unclosed": True})
    for tid in sorted(open_susp):
        close_susp(tid, last_ns, "stream-end")
    for core in sorted(core_occupancy):
        close_core(core, last_ns)
    for tid in sorted(seen_tids):
        out.append({"ph": "M", "pid": PID_THREADS, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": "tid %d" % tid}})
    return out


def service_trace_events(events):
    """Request-lifecycle spans from the daemon's service log.

    The log has no wall timestamps (events are ordered by ``seq``), so
    the sequence number itself is the logical clock: one log event = one
    microsecond. Spans run accept→respond per request id; retries,
    deadline expiries and recoveries show as instant markers on the
    request's lane."""
    out = [_meta(PID_SERVICE, "service requests")]
    lanes = {}          # request_id -> lane index
    open_reqs = {}      # request_id -> (start_seq, args)
    last_seq = 0

    def lane(request_id):
        if request_id not in lanes:
            lanes[request_id] = len(lanes)
        return lanes[request_id]

    for event in events:
        seq = event.get("seq", last_seq + 1)
        last_seq = max(last_seq, seq)
        kind = event.get("kind")
        request_id = event.get("request_id")
        if kind == "accept" and request_id is not None:
            open_reqs[request_id] = (seq, {
                "job_id": event.get("job_id"),
                "deadline_s": event.get("deadline_s"),
            })
        elif kind == "respond" and request_id in open_reqs:
            start_seq, args = open_reqs.pop(request_id)
            args["ok"] = event.get("ok")
            out.append(_span(PID_SERVICE, lane(request_id),
                             "request %s" % request_id, "request",
                             float(start_seq), float(seq), args))
        elif request_id is not None:
            out.append(_instant(PID_SERVICE, lane(request_id), kind or "?",
                                "request", float(seq),
                                {k: v for k, v in sorted(event.items())
                                 if k not in ("seq", "kind")}))
        else:
            out.append(_instant(PID_SERVICE, 0, kind or "?", "service",
                                float(seq),
                                {k: v for k, v in sorted(event.items())
                                 if k not in ("seq", "kind")}))
    for request_id in sorted(open_reqs):
        start_seq, args = open_reqs.pop(request_id)
        args["unresponded"] = True
        out.append(_span(PID_SERVICE, lane(request_id),
                         "request %s" % request_id, "request",
                         float(start_seq), float(last_seq), args))
    return out


def fleet_trace_events(timeline):
    """Per-worker job slices from the supervisor's attempt timeline
    (list of dicts with ``job_id``/``worker_id``/``attempt``/``start_s``/
    ``end_s``/``status``), one lane per worker, microsecond timestamps
    relative to batch start."""
    out = [_meta(PID_FLEET, "fleet workers")]
    worker_lane = {}
    for worker_id in sorted({entry["worker_id"] for entry in timeline}):
        worker_lane[worker_id] = len(worker_lane)
        out.append({"ph": "M", "pid": PID_FLEET,
                    "tid": worker_lane[worker_id], "name": "thread_name",
                    "args": {"name": "worker %s" % worker_id}})
    for entry in timeline:
        args = {"job_id": entry["job_id"], "attempt": entry["attempt"],
                "status": entry["status"]}
        name = "%s#%d" % (entry["job_id"], entry["attempt"])
        out.append(_span(PID_FLEET, worker_lane[entry["worker_id"]],
                         name, "job", entry["start_s"] * 1e6,
                         entry["end_s"] * 1e6, args))
    return out


def render_chrome_trace(trace_events):
    """Canonical Chrome trace JSON text for a list of trace events."""
    return json.dumps({"traceEvents": trace_events,
                       "displayTimeUnit": "ms"},
                      sort_keys=True, separators=(",", ":"))


def export_chrome_trace(trace_events, path):
    """Write canonical Chrome trace JSON; returns the byte count."""
    data = render_chrome_trace(trace_events)
    with open(path, "w") as f:
        f.write(data)
    return len(data)


def validate_chrome_trace(payload):
    """Structural check of an exported trace (used by CI's obs-smoke):
    returns a list of problems, empty when well-formed."""
    problems = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a traceEvents key"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append("event %d is not a dict" % i)
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append("event %d has unknown phase %r" % (i, ph))
            continue
        for key in ("pid", "tid", "name"):
            if key not in event:
                problems.append("event %d (%s) missing %s" % (i, ph, key))
        if ph == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append("event %d missing numeric ts" % i)
            if not isinstance(event.get("dur"), (int, float)) \
                    or event.get("dur", 0) < 0:
                problems.append("event %d missing non-negative dur" % i)
        if ph == "i" and not isinstance(event.get("ts"), (int, float)):
            problems.append("event %d missing numeric ts" % i)
    return problems


__all__ = ["PID_CORES", "PID_FLEET", "PID_SERVICE", "PID_THREADS",
           "export_chrome_trace", "fleet_trace_events",
           "journal_trace_events", "render_chrome_trace",
           "service_trace_events", "validate_chrome_trace"]
