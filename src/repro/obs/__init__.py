"""repro.obs — the unified observability plane (DESIGN.md §16).

One plane, four pieces:

- :mod:`repro.obs.metrics` — process-local metrics registry (counters,
  gauges, fixed-bucket histograms) with the ``KivatiStats``
  merge/round-trip discipline and zero-allocation no-op handles;
- :mod:`repro.obs.spans` — AR-lifecycle, service-request and fleet-job
  span tracing exported as Chrome trace-event JSON (Perfetto-viewable),
  byte-deterministic in logical-clock mode;
- :mod:`repro.obs.profiler` — sampling-free deterministic VM profiler
  (per-opcode dispatch counts, watchpoint check hit/miss rates,
  suspension-queue depths) with an optional wall-clock timing mode;
- :mod:`repro.obs.regress` — the perf-regression sentinel diffing two
  ``BENCH_*.json`` artifacts against per-metric tolerance rules;
- :mod:`repro.obs.prom` — Prometheus text-format exposition.

Wiring contract: ``KivatiConfig(obs=ObsPlane())`` attaches the plane to
a run. Observation never participates in simulation — it changes no
costs, no scheduling, no journal frames and no report payloads, so
verdicts and fleet/service digests are bit-identical with obs on or
off; with ``obs=None`` every hook site is a single attribute-is-None
predicate.
"""

from repro.obs.metrics import (BUCKET_LAYOUTS, MetricsRegistry,
                               NULL_METRIC, NULL_REGISTRY)
from repro.obs.profiler import VMProfiler
from repro.obs.regress import RegressReport, compare_artifacts


class ObsPlane:
    """Per-run observability bundle: metrics registry + VM profiler.

    ``snapshot()`` is the canonical export: the registry's own metrics
    plus the profiler's counters folded in, as a deterministic
    JSON-safe dict. It is idempotent — profiler counts live in the
    profiler and are merged at snapshot time, never double-ingested.
    """

    __slots__ = ("registry", "profiler")

    def __init__(self, wall_time=False, registry=None, profiler=None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.profiler = profiler if profiler is not None \
            else VMProfiler(wall_time=wall_time)

    def finalize_run(self, stats, result):
        """Fold one finished run's ``KivatiStats`` and machine result
        into the registry (called by ``ProtectedProgram.run``)."""
        registry = self.registry
        registry.ingest_stats(stats)
        registry.counter("kivati.run.count").inc()
        registry.counter("kivati.run.instructions").inc(result.instr_count)
        registry.counter("kivati.run.kernel_entries").inc(
            result.kernel_entries)
        registry.gauge("kivati.run.time_ns").max(result.time_ns)
        registry.gauge("kivati.run.threads").max(result.threads)

    def snapshot(self):
        """Deterministic merged metrics payload (registry + profiler)."""
        merged = MetricsRegistry().merge(self.registry)
        self.profiler.export_to(merged)
        return merged.to_dict()


__all__ = ["BUCKET_LAYOUTS", "MetricsRegistry", "NULL_METRIC",
           "NULL_REGISTRY", "ObsPlane", "RegressReport", "VMProfiler",
           "compare_artifacts"]
