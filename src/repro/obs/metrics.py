"""Process-local metrics registry for the observability plane.

Three metric kinds, mirroring the Prometheus data model but kept
deliberately small and deterministic:

- **counter** — monotonically increasing integer/float; ``merge`` sums.
- **gauge** — last-written value; ``merge`` keeps the maximum, so a
  merged registry reports high-watermarks (queue depth peaks, slot
  usage peaks) rather than an arbitrary worker's final sample.
- **histogram** — fixed-bucket distribution. Bucket bounds are chosen
  from the named deterministic layouts below (or passed explicitly) and
  are part of the metric's identity: merging histograms with different
  bounds is a hard :class:`~repro.errors.ObsError`, never a silent
  re-binning.

The registry follows the ``KivatiStats`` discipline the fleet plane
already relies on: ``to_dict`` / ``from_dict`` round-trip through
JSON-safe payloads (unknown keys raise), and ``merge`` is associative
and commutative so fleet workers can aggregate in any completion order
and still produce identical output. All iteration is over sorted names,
so exports are byte-stable under PYTHONHASHSEED.

When observability is off the hot path must pay nothing. The no-op
handles (:data:`NULL_METRIC`, :data:`NULL_REGISTRY`) are allocated once
at import time; a disabled call site holds the shared singleton and an
``is not None`` / ``registry.enabled`` predicate is the entire cost.
"""

import bisect

from repro.errors import ObsError

#: Named deterministic bucket layouts. These are part of the exported
#: artifact format — changing a layout changes byte output, so add new
#: names instead of editing existing ones.
BUCKET_LAYOUTS = {
    # simulated-nanosecond durations: 1us .. ~4.3s in powers of 4
    "ns": tuple(1_000 * (4 ** i) for i in range(12)),
    # small queue/chain depths (suspension queues, waits-for chains)
    "depth": tuple(range(1, 17)),
    # generic small counts (retries, attempts, undo lengths)
    "count": (0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
    # wall-clock microseconds for the optional timing mode
    "us": tuple(1 * (4 ** i) for i in range(12)),
}


class Counter:
    """Monotonic counter handle."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """Last-value (merge: max) gauge handle."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def max(self, value):
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram handle.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the overflow bucket (``> bounds[-1]``). Cumulative buckets are
    computed at exposition time, not stored.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name, bounds):
        bounds = tuple(bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObsError("histogram %r bounds must be strictly "
                           "increasing and non-empty: %r" % (name, bounds))
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value):
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _NullMetric:
    """Shared do-nothing handle: every mutator is a no-op.

    One instance (:data:`NULL_METRIC`) serves every disabled call site —
    requesting a metric from the null registry allocates nothing.
    """

    __slots__ = ()
    kind = "null"

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def max(self, value):
        pass

    def observe(self, value):
        pass


NULL_METRIC = _NullMetric()


class NullRegistry:
    """Disabled registry: hands out the shared no-op metric handle."""

    __slots__ = ()
    enabled = False

    def counter(self, name):
        return NULL_METRIC

    def gauge(self, name):
        return NULL_METRIC

    def histogram(self, name, bounds="count"):
        return NULL_METRIC

    def to_dict(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()


def _resolve_bounds(name, bounds):
    if isinstance(bounds, str):
        try:
            return BUCKET_LAYOUTS[bounds]
        except KeyError:
            raise ObsError("histogram %r: unknown bucket layout %r "
                           "(have %s)" % (name, bounds,
                                          sorted(BUCKET_LAYOUTS)))
    return tuple(bounds)


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name returns the existing handle; requesting it as a
    different kind (or a histogram with different bounds) raises — a
    metric's identity is fixed for the life of the registry.
    """

    __slots__ = ("_metrics",)
    enabled = True

    def __init__(self):
        self._metrics = {}

    def _get(self, name, kind, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ObsError("metric %r is a %s, requested as %s"
                           % (name, metric.kind, kind))
        return metric

    def counter(self, name):
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name):
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name, bounds="count"):
        bounds = _resolve_bounds(name, bounds)
        metric = self._get(name, "histogram",
                           lambda: Histogram(name, bounds))
        if metric.bounds != bounds:
            raise ObsError("histogram %r bounds conflict: %r vs %r"
                           % (name, metric.bounds, bounds))
        return metric

    def __len__(self):
        return len(self._metrics)

    def ingest_stats(self, stats, prefix="kivati.stats."):
        """Absorb a ``KivatiStats``-style object (``FIELDS`` + integer
        attributes) or a flat name->number dict as counters."""
        if hasattr(stats, "FIELDS"):
            items = [(name, getattr(stats, name)) for name in stats.FIELDS]
        else:
            items = sorted(stats.items())
        for name, value in items:
            self.counter(prefix + name).inc(value)

    # ------------------------------------------------------------------
    # round-trip + merge (the KivatiStats discipline)
    # ------------------------------------------------------------------

    def to_dict(self):
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.kind == "counter":
                counters[name] = metric.value
            elif metric.kind == "gauge":
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict):
            raise ObsError("metrics payload must be a dict, got %r"
                           % type(payload).__name__)
        unknown = set(payload) - {"counters", "gauges", "histograms"}
        if unknown:
            raise ObsError("unknown metrics payload keys: %s"
                           % sorted(unknown))
        registry = cls()
        for name, value in sorted(payload.get("counters", {}).items()):
            registry.counter(name).inc(value)
        for name, value in sorted(payload.get("gauges", {}).items()):
            registry.gauge(name).set(value)
        for name, data in sorted(payload.get("histograms", {}).items()):
            hist = registry.histogram(name, data["bounds"])
            counts = data["counts"]
            if len(counts) != len(hist.counts):
                raise ObsError("histogram %r has %d counts for %d buckets"
                               % (name, len(counts), len(hist.counts)))
            hist.counts = list(counts)
            hist.sum = data["sum"]
            hist.count = data["count"]
        return registry

    def merge(self, other):
        """Fold another registry (or its ``to_dict`` payload) into this
        one. Counters/histograms sum, gauges keep the maximum."""
        if isinstance(other, dict):
            other = MetricsRegistry.from_dict(other)
        for name in sorted(other._metrics):
            metric = other._metrics[name]
            if metric.kind == "counter":
                self.counter(name).inc(metric.value)
            elif metric.kind == "gauge":
                self.gauge(name).max(metric.value)
            else:
                hist = self.histogram(name, metric.bounds)
                for i, n in enumerate(metric.counts):
                    hist.counts[i] += n
                hist.sum += metric.sum
                hist.count += metric.count
        return self


__all__ = ["BUCKET_LAYOUTS", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "NULL_METRIC", "NULL_REGISTRY",
           "NullRegistry"]
