"""Spawn-safe fleet worker, shared by the fleet batch plane and the
long-lived detection service.

``worker_main`` is the entry point the supervisor passes to
``multiprocessing.Process`` — a module-level function so it survives the
``spawn`` start method (no closures, no lambdas, nothing that needs the
parent's memory image).  All work flows through :func:`execute_job`,
which is also what the supervisor calls directly for inline
(``workers=0``) execution, so the two paths cannot drift.

Workers are crash-transparent by design: a job whose spec carries a
``crash`` drill dies via ``os._exit`` the instant the ``journal.crash``
fault point fires — no cleanup, no result message, exactly like a
SIGKILL — leaving a torn on-disk journal for the supervisor to salvage.
A ``poison`` drill kills the worker on *every* attempt (hostile input
that no retry survives); a ``stall_s`` drill wedges the worker mid-job
with a fresh heartbeat, modeling a live-but-stuck process.

SIGTERM, by contrast, is a *managed* kill (supervisor timeout, pool
recycle, operator): the handler closes the active journal frame-clean
before exiting so salvage sees a clean tail whenever the signal lands
between frames.

Warm-worker support for ``repro.service``: a queue item of
``{"op": "warm", "sources": [...], "whitelists": [...]}`` pre-compiles
workload programs into the per-process cache and pre-reads whitelist
files, so the first real request pays neither import nor compile cost.
Every message a worker emits carries ``rss_kb`` and ``jobs_served`` so
the pool can recycle workers against an RSS ceiling or a jobs cap, and
an idle worker heartbeats every ``heartbeat_s`` seconds.
"""

import json
import os
import queue as queue_mod
import signal
import time

from repro.core.session import ProtectedProgram
from repro.core.training import observe_false_positives
from repro.errors import JournalCrash
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.jobs import JobSpec
from repro.journal.format import JournalWriter
from repro.journal.recorder import JournalRecorder
from repro.journal.snapshot import config_from_snapshot, source_digest

#: exit status a worker uses to die mid-job during a crash drill;
#: chosen to look like SIGKILL's shell status
CRASH_EXIT_STATUS = 137

#: exit status after a managed SIGTERM (128 + 15), journal closed clean
TERM_EXIT_STATUS = 143

#: per-process compiled-program cache: workers are long-lived, programs
#: are immutable, and annotation+compilation is pure per source text
_PROGRAM_CACHE = {}

#: journal writer of the in-flight run, closed frame-clean on SIGTERM
_ACTIVE_WRITER = None


def cached_program(source):
    key = source_digest(source)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = ProtectedProgram(source)
        _PROGRAM_CACHE[key] = program
    return program


def job_journal_path(journal_dir, job_id):
    return os.path.join(journal_dir, "job-%s.journal" % job_id)


def worker_rss_kb():
    """Max RSS of this process in KiB (0 where unavailable)."""
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, ValueError, OSError):
        return 0


def _worker_meta(jobs_served):
    return {"rss_kb": worker_rss_kb(), "jobs_served": jobs_served}


def _sigterm_handler(signum, frame):
    """Managed kill: close the in-flight journal frame-clean, then die.

    Python runs signal handlers between bytecodes, so any frame append
    in progress completes first — salvage of a SIGTERM'd worker sees a
    clean (untorn) tail whenever the write itself was not interrupted
    at the OS level.
    """
    writer = _ACTIVE_WRITER
    if writer is not None:
        try:
            writer.close()
        except Exception:
            pass
    os._exit(TERM_EXIT_STATUS)


def warm_worker(sources=(), whitelists=()):
    """Pre-compile programs and pre-read whitelist files; returns counts.

    Compilation is pure per source text, so warming is a correctness
    no-op — it only moves the cost off the first request's latency.
    """
    from repro.runtime.whitelist import read_whitelist_ids

    programs = 0
    for source in sources:
        cached_program(source)
        programs += 1
    whitelist_ids = 0
    for path in whitelists:
        try:
            whitelist_ids += len(read_whitelist_ids(path).ids)
        except OSError:
            pass  # a missing file warms nothing; runs re-read anyway
    return {"programs_warmed": programs, "whitelist_ids": whitelist_ids}


def _config_for(spec):
    """Rebuild the job's KivatiConfig, wiring in the crash drill."""
    config = config_from_snapshot(spec.snapshot).copy(seed=spec.seed)
    crash = spec.params.get("crash")
    if crash is not None:
        specs = [FaultSpec("journal.crash", probability=1.0, max_fires=1,
                           start_after=int(crash.get("at_frame", 0)),
                           param={"torn": int(crash.get("torn", 1))})]
        if config.faults is not None:
            specs.extend(s for s in config.faults.specs
                         if s.point != "journal.crash")
        config = config.copy(faults=FaultPlan("fleet-crash-drill", specs))
    return config


def _execute_run(spec, config, journal_dir):
    global _ACTIVE_WRITER

    journal_path = None
    writer = None
    if journal_dir is not None:
        journal_path = job_journal_path(journal_dir, spec.job_id)
        writer = JournalWriter(journal_path)
        config = config.copy(journal=JournalRecorder(writer=writer))
    _ACTIVE_WRITER = writer
    try:
        report = cached_program(spec.source).run(config)
    finally:
        _ACTIVE_WRITER = None
    return report.as_payload(), journal_path


def _execute_train(spec, config, journal_dir):
    program = cached_program(spec.source)
    whitelist = frozenset(spec.params.get("whitelist", ()))
    buggy = spec.params.get("buggy", ())
    new_by_seed = {}
    for seed in spec.params["seeds"]:
        new_by_seed[str(seed)] = list(observe_false_positives(
            program, config, seed, whitelist, buggy_ar_ids=buggy))
    union = sorted(set().union(*new_by_seed.values())
                   if new_by_seed else set())
    return {"new_by_seed": new_by_seed, "union": union,
            "seeds": list(spec.params["seeds"])}, None


def _execute_detect(spec, config, journal_dir):
    """Self-contained Table-6 campaign: rerun until a violation lands on
    one of the bug's victim variables (same protocol and seed stride as
    repro.workloads.driver.detect_bug)."""
    program = cached_program(spec.source)
    victims = set(spec.params["victim_vars"])
    max_attempts = int(spec.params.get("max_attempts", 40))
    seed_base = int(spec.params.get("seed_base", 0))
    total_ns = 0
    for attempt in range(max_attempts):
        report = program.run(config, seed=seed_base + attempt * 7919)
        total_ns += report.time_ns
        records = [r for r in report.violations if r.var in victims]
        if records:
            return {"bug_id": spec.params.get("bug_id"), "detected": True,
                    "attempts": attempt + 1, "time_ns": total_ns,
                    "prevented": all(r.prevented for r in records)}, None
    return {"bug_id": spec.params.get("bug_id"), "detected": False,
            "attempts": max_attempts, "time_ns": total_ns,
            "prevented": False}, None


def _execute_suite(spec, config, journal_dir):
    """One application's full measurement pass (``run_suite --jobs``).

    The payload carries live report objects (pickled by the queue) —
    this kind exists so the existing table benchmarks can fan out
    without changing what they compute.
    """
    from repro.bench.scale import bench_config
    from repro.core.config import Mode, OptLevel
    from repro.workloads.catalog import workload_suite

    name = spec.params["workload"]
    scale = spec.params.get("scale", 0.6)
    matches = [w for w in workload_suite(scale=scale) if w.name == name]
    if not matches:
        raise ValueError("unknown suite workload %r" % name)
    workload = matches[0]
    program = cached_program(workload.source)
    vanilla = program.run_vanilla(seed=spec.seed)
    if not workload.check_output(vanilla.output):
        raise AssertionError("vanilla run of %s produced wrong output"
                             % workload.name)
    reports = {}
    for level_value in spec.params["levels"]:
        for mode_value in spec.params["modes"]:
            run_config = bench_config(mode=Mode(mode_value),
                                      opt=OptLevel(level_value))
            report = program.run(run_config, seed=spec.seed)
            reports[(level_value, mode_value)] = report
    return {"workload": name, "vanilla": vanilla, "reports": reports}, None


def _execute_fuzz(spec, config, journal_dir):
    """One generated program through the full fuzz oracle.

    The detection run records to the job's on-disk journal (so the
    supervisor can replay-verify it and a diverging case can archive
    the schedule); the reverify / report / replay / conflict cross-checks
    run in-worker on the in-memory event stream.
    """
    global _ACTIVE_WRITER

    from repro.fuzz.oracle import cross_check

    program = cached_program(spec.source)
    journal_path = None
    writer = None
    if journal_dir is not None:
        journal_path = job_journal_path(journal_dir, spec.job_id)
        writer = JournalWriter(journal_path)
    recorder = JournalRecorder(writer=writer)
    _ACTIVE_WRITER = writer
    try:
        report = program.run(config.copy(journal=recorder))
    finally:
        _ACTIVE_WRITER = None
    check = cross_check(program, config, spec.seed,
                        drill=spec.params.get("drill"),
                        recorder=recorder, report=report)
    payload = check.as_payload()
    payload["program_id"] = spec.params.get("program_id")
    payload["gen_seed"] = spec.params.get("gen_seed")
    return payload, journal_path


_EXECUTORS = {
    "run": _execute_run,
    "train": _execute_train,
    "detect": _execute_detect,
    "suite": _execute_suite,
    "fuzz": _execute_fuzz,
}


def _error_result(job_id, kind, error):
    return {"job_id": job_id, "kind": kind, "ok": False, "error": error,
            "payload": None, "journal_path": None, "elapsed_s": 0.0}


def parse_spec(spec_dict):
    """Parse an untrusted job payload; returns ``(spec, error_result)``.

    Exactly one of the pair is None.  Hostile input — truncated JSON
    text, garbage bytes, a non-object payload, a dict that fails
    :meth:`JobSpec.from_dict` validation — yields a structured error
    result instead of an exception, so it can never burn the worker.
    """
    if isinstance(spec_dict, (bytes, bytearray)):
        try:
            spec_dict = spec_dict.decode("utf-8")
        except UnicodeDecodeError as exc:
            return None, _error_result("invalid", "invalid",
                                       "undecodable spec bytes: %s" % exc)
    if isinstance(spec_dict, str):
        try:
            spec_dict = json.loads(spec_dict)
        except json.JSONDecodeError as exc:
            return None, _error_result("invalid", "invalid",
                                       "malformed spec JSON: %s" % exc)
    if not isinstance(spec_dict, dict):
        return None, _error_result(
            "invalid", "invalid",
            "spec is %s, not an object" % type(spec_dict).__name__)
    job_id = spec_dict.get("job_id")
    job_id = str(job_id) if job_id else "invalid"
    kind = spec_dict.get("kind") or "invalid"
    try:
        return JobSpec.from_dict(spec_dict), None
    except Exception as exc:
        return None, _error_result(
            job_id, kind, "invalid JobSpec: %s: %s"
            % (type(exc).__name__, exc))


def execute_job(spec_dict, journal_dir=None):
    """Execute one job dict; returns a result dict.

    Shared by worker processes and the supervisor's inline mode.  A
    ``JournalCrash`` (crash drill) propagates to the caller — workers
    turn it into ``os._exit``, inline mode turns it into salvage+retry.
    Malformed specs return a structured error result (never raise).
    """
    spec, error = parse_spec(spec_dict)
    if error is not None:
        return error
    started = time.perf_counter()
    if spec.params.get("poison"):
        # hostile-input drill: kills the executing worker on *every*
        # attempt — retries cannot strip it; only quarantine ends it
        raise JournalCrash(0)
    stall = spec.params.get("stall_s")
    if stall:
        # live-but-stuck drill: the worker claimed the job (heartbeat
        # fresh) but produces no result until the stall elapses
        time.sleep(float(stall))
    config = _config_for(spec)
    try:
        payload, journal_path = _EXECUTORS[spec.kind](spec, config,
                                                      journal_dir)
        return {"job_id": spec.job_id, "kind": spec.kind, "ok": True,
                "error": None, "payload": payload,
                "journal_path": journal_path,
                "elapsed_s": time.perf_counter() - started}
    except JournalCrash:
        raise
    except Exception as exc:  # a broken job must not take the worker down
        return {"job_id": spec.job_id, "kind": spec.kind, "ok": False,
                "error": "%s: %s" % (type(exc).__name__, exc),
                "payload": None, "journal_path": None,
                "elapsed_s": time.perf_counter() - started}


def worker_main(worker_id, job_queue, result_queue, journal_dir,
                heartbeat_s=None):
    """Worker loop: claim, execute, report; ``None`` is the shutdown
    sentinel.  The claim message doubles as the heartbeat that lets the
    supervisor attribute a crashed worker's in-flight job; with
    ``heartbeat_s`` set, an idle worker also emits periodic ``hb``
    messages so the pool can watch liveness and RSS between jobs."""
    if journal_dir is not None:
        os.makedirs(journal_dir, exist_ok=True)
    signal.signal(signal.SIGTERM, _sigterm_handler)
    jobs_served = 0
    while True:
        try:
            item = job_queue.get(timeout=heartbeat_s)
        except queue_mod.Empty:
            result_queue.put(("hb", worker_id, _worker_meta(jobs_served)))
            continue
        if item is None:
            result_queue.put(("bye", worker_id, _worker_meta(jobs_served)))
            return
        if isinstance(item, dict) and item.get("op") == "warm":
            warmed = warm_worker(item.get("sources", ()),
                                 item.get("whitelists", ()))
            body = _worker_meta(jobs_served)
            body.update(warmed)
            result_queue.put(("warmed", worker_id, body))
            continue
        claim = _worker_meta(jobs_served)
        claim["job_id"] = (item.get("job_id")
                           if isinstance(item, dict) else None)
        result_queue.put(("claim", worker_id, claim))
        try:
            result = execute_job(item, journal_dir=journal_dir)
        except JournalCrash:
            # simulate the kill: no result, no cleanup, nonzero status;
            # the torn journal stays on disk for the supervisor
            os._exit(CRASH_EXIT_STATUS)
        jobs_served += 1
        result["worker_id"] = worker_id
        result.update(_worker_meta(jobs_served))
        result_queue.put(("done", worker_id, result))


__all__ = ["CRASH_EXIT_STATUS", "TERM_EXIT_STATUS", "cached_program",
           "execute_job", "job_journal_path", "parse_spec", "warm_worker",
           "worker_main", "worker_rss_kb"]
