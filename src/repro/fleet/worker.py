"""Spawn-safe fleet worker.

``worker_main`` is the entry point the supervisor passes to
``multiprocessing.Process`` — a module-level function so it survives the
``spawn`` start method (no closures, no lambdas, nothing that needs the
parent's memory image).  All work flows through :func:`execute_job`,
which is also what the supervisor calls directly for inline
(``workers=0``) execution, so the two paths cannot drift.

Workers are crash-transparent by design: a job whose spec carries a
``crash`` drill dies via ``os._exit`` the instant the ``journal.crash``
fault point fires — no cleanup, no result message, exactly like a
SIGKILL — leaving a torn on-disk journal for the supervisor to salvage.
"""

import os
import time

from repro.core.session import ProtectedProgram
from repro.core.training import observe_false_positives
from repro.errors import JournalCrash
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.jobs import JobSpec
from repro.journal.format import JournalWriter
from repro.journal.recorder import JournalRecorder
from repro.journal.snapshot import config_from_snapshot, source_digest

#: exit status a worker uses to die mid-job during a crash drill;
#: chosen to look like SIGKILL's shell status
CRASH_EXIT_STATUS = 137

#: per-process compiled-program cache: workers are long-lived, programs
#: are immutable, and annotation+compilation is pure per source text
_PROGRAM_CACHE = {}


def cached_program(source):
    key = source_digest(source)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = ProtectedProgram(source)
        _PROGRAM_CACHE[key] = program
    return program


def job_journal_path(journal_dir, job_id):
    return os.path.join(journal_dir, "job-%s.journal" % job_id)


def _config_for(spec):
    """Rebuild the job's KivatiConfig, wiring in the crash drill."""
    config = config_from_snapshot(spec.snapshot).copy(seed=spec.seed)
    crash = spec.params.get("crash")
    if crash is not None:
        specs = [FaultSpec("journal.crash", probability=1.0, max_fires=1,
                           start_after=int(crash.get("at_frame", 0)),
                           param={"torn": int(crash.get("torn", 1))})]
        if config.faults is not None:
            specs.extend(s for s in config.faults.specs
                         if s.point != "journal.crash")
        config = config.copy(faults=FaultPlan("fleet-crash-drill", specs))
    return config


def _execute_run(spec, config, journal_dir):
    journal_path = None
    if journal_dir is not None:
        journal_path = job_journal_path(journal_dir, spec.job_id)
        config = config.copy(
            journal=JournalRecorder(writer=JournalWriter(journal_path)))
    report = cached_program(spec.source).run(config)
    return report.as_payload(), journal_path


def _execute_train(spec, config, journal_dir):
    program = cached_program(spec.source)
    whitelist = frozenset(spec.params.get("whitelist", ()))
    buggy = spec.params.get("buggy", ())
    new_by_seed = {}
    for seed in spec.params["seeds"]:
        new_by_seed[str(seed)] = list(observe_false_positives(
            program, config, seed, whitelist, buggy_ar_ids=buggy))
    union = sorted(set().union(*new_by_seed.values())
                   if new_by_seed else set())
    return {"new_by_seed": new_by_seed, "union": union,
            "seeds": list(spec.params["seeds"])}, None


def _execute_detect(spec, config, journal_dir):
    """Self-contained Table-6 campaign: rerun until a violation lands on
    one of the bug's victim variables (same protocol and seed stride as
    repro.workloads.driver.detect_bug)."""
    program = cached_program(spec.source)
    victims = set(spec.params["victim_vars"])
    max_attempts = int(spec.params.get("max_attempts", 40))
    seed_base = int(spec.params.get("seed_base", 0))
    total_ns = 0
    for attempt in range(max_attempts):
        report = program.run(config, seed=seed_base + attempt * 7919)
        total_ns += report.time_ns
        records = [r for r in report.violations if r.var in victims]
        if records:
            return {"bug_id": spec.params.get("bug_id"), "detected": True,
                    "attempts": attempt + 1, "time_ns": total_ns,
                    "prevented": all(r.prevented for r in records)}, None
    return {"bug_id": spec.params.get("bug_id"), "detected": False,
            "attempts": max_attempts, "time_ns": total_ns,
            "prevented": False}, None


def _execute_suite(spec, config, journal_dir):
    """One application's full measurement pass (``run_suite --jobs``).

    The payload carries live report objects (pickled by the queue) —
    this kind exists so the existing table benchmarks can fan out
    without changing what they compute.
    """
    from repro.bench.scale import bench_config
    from repro.core.config import Mode, OptLevel
    from repro.workloads.catalog import workload_suite

    name = spec.params["workload"]
    scale = spec.params.get("scale", 0.6)
    matches = [w for w in workload_suite(scale=scale) if w.name == name]
    if not matches:
        raise ValueError("unknown suite workload %r" % name)
    workload = matches[0]
    program = cached_program(workload.source)
    vanilla = program.run_vanilla(seed=spec.seed)
    if not workload.check_output(vanilla.output):
        raise AssertionError("vanilla run of %s produced wrong output"
                             % workload.name)
    reports = {}
    for level_value in spec.params["levels"]:
        for mode_value in spec.params["modes"]:
            run_config = bench_config(mode=Mode(mode_value),
                                      opt=OptLevel(level_value))
            report = program.run(run_config, seed=spec.seed)
            reports[(level_value, mode_value)] = report
    return {"workload": name, "vanilla": vanilla, "reports": reports}, None


_EXECUTORS = {
    "run": _execute_run,
    "train": _execute_train,
    "detect": _execute_detect,
    "suite": _execute_suite,
}


def execute_job(spec_dict, journal_dir=None):
    """Execute one job dict; returns a result dict.

    Shared by worker processes and the supervisor's inline mode.  A
    ``JournalCrash`` (crash drill) propagates to the caller — workers
    turn it into ``os._exit``, inline mode turns it into salvage+retry.
    """
    spec = JobSpec.from_dict(spec_dict)
    started = time.perf_counter()
    config = _config_for(spec)
    try:
        payload, journal_path = _EXECUTORS[spec.kind](spec, config,
                                                      journal_dir)
        return {"job_id": spec.job_id, "kind": spec.kind, "ok": True,
                "error": None, "payload": payload,
                "journal_path": journal_path,
                "elapsed_s": time.perf_counter() - started}
    except JournalCrash:
        raise
    except Exception as exc:  # a broken job must not take the worker down
        return {"job_id": spec.job_id, "kind": spec.kind, "ok": False,
                "error": "%s: %s" % (type(exc).__name__, exc),
                "payload": None, "journal_path": None,
                "elapsed_s": time.perf_counter() - started}


def worker_main(worker_id, job_queue, result_queue, journal_dir):
    """Worker loop: claim, execute, report; ``None`` is the shutdown
    sentinel.  The claim message doubles as the heartbeat that lets the
    supervisor attribute a crashed worker's in-flight job."""
    if journal_dir is not None:
        os.makedirs(journal_dir, exist_ok=True)
    while True:
        spec_dict = job_queue.get()
        if spec_dict is None:
            result_queue.put(("bye", worker_id, None))
            return
        result_queue.put(("claim", worker_id, spec_dict["job_id"]))
        try:
            result = execute_job(spec_dict, journal_dir=journal_dir)
        except JournalCrash:
            # simulate the kill: no result, no cleanup, nonzero status;
            # the torn journal stays on disk for the supervisor
            os._exit(CRASH_EXIT_STATUS)
        result["worker_id"] = worker_id
        result_queue.put(("done", worker_id, result))


__all__ = ["CRASH_EXIT_STATUS", "cached_program", "execute_job",
           "job_journal_path", "worker_main"]
