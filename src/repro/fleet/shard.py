"""Federated whitelist training.

Training (Figure 7) is round-based: every seed in a round observes
false positives against the same *frozen* whitelist, and the union of
the round's new FPs is folded in synchronously between rounds
(:func:`repro.core.training.train_rounds`).  That makes each
observation a pure function of ``(seed, whitelist)``, so the round's
work can be partitioned across shards arbitrarily:

    union over shards of (new FPs per shard)
      == union over seeds of (new FPs per seed)       -- set algebra
      == the serial round's new-FP set                -- by definition

hence federated training over any shard count converges to exactly the
serial whitelist for the same seed schedule.  The property test in
``tests/fleet`` checks this end to end, and
:func:`repro.runtime.whitelist.merge_whitelist_files` performs the same
union at the file level for shards trained on different hosts.
"""

import os

from repro.core.training import TrainingResult, train_rounds
from repro.errors import ConfigError
from repro.fleet.jobs import train_shard_job
from repro.runtime.whitelist import Whitelist, merge_whitelist_files


def partition_round_robin(items, shards):
    """Deal ``items`` round-robin into ``shards`` non-empty-preserving
    buckets. Deterministic; with fewer items than shards the tail
    buckets are empty (and callers skip them)."""
    if shards < 1:
        raise ConfigError("shards must be >= 1")
    buckets = [[] for _ in range(shards)]
    for index, item in enumerate(items):
        buckets[index % shards].append(item)
    return buckets


class FederatedTrainingResult:
    """Outcome of a federated training campaign.

    ``result`` is a plain :class:`TrainingResult` (so Figure 7 tooling
    works unchanged); the federated extras record how the rounds were
    sharded and where per-shard whitelist files were written.
    """

    __slots__ = ("result", "shards", "rounds", "shard_new", "shard_files",
                 "fleet_stats")

    def __init__(self, result, shards, rounds, shard_new, shard_files,
                 fleet_stats):
        self.result = result
        self.shards = shards
        self.rounds = rounds
        #: shard_new[round][shard] = sorted new FPs that shard observed
        self.shard_new = shard_new
        self.shard_files = list(shard_files)
        self.fleet_stats = fleet_stats

    @property
    def whitelist(self):
        return self.result.whitelist

    @property
    def iterations(self):
        return self.result.iterations

    def describe(self):
        return ("federated training: %d round(s) x %d shard(s), "
                "new FPs per round %s, whitelist=%d"
                % (self.rounds, self.shards, self.result.iterations,
                   len(self.result.whitelist)))


def federated_train(supervisor, source, config, seed_rounds, shards=2,
                    buggy_ar_ids=(), initial_whitelist=(), shard_dir=None):
    """Train a whitelist round by round, farming each round's seeds out
    to ``shards`` parallel train jobs through ``supervisor``.

    Equivalent by construction to
    ``train_rounds(program, config, seed_rounds, ...)`` — see the module
    docstring.  When ``shard_dir`` is given, each shard's cumulative
    observations are also written as a whitelist file, and the merged
    file (via :func:`merge_whitelist_files`) equals the final whitelist.
    """
    whitelist = set(initial_whitelist)
    series = []
    shard_new = []
    per_shard_seen = [set() for _ in range(shards)]
    for round_index, seeds in enumerate(seed_rounds):
        buckets = partition_round_robin(list(seeds), shards)
        specs = [
            train_shard_job(
                "train-r%d-shard%d" % (round_index, shard_index),
                source, config, bucket, whitelist,
                buggy_ar_ids=buggy_ar_ids)
            for shard_index, bucket in enumerate(buckets) if bucket
        ]
        fleet_result = supervisor.run_jobs(specs)
        failed = [r for r in fleet_result.results.values() if not r.ok]
        if failed:
            raise RuntimeError("federated training round %d failed: %s"
                               % (round_index,
                                  "; ".join(str(r.error) for r in failed)))
        round_new = []
        new_this_round = set()
        for shard_index in range(shards):
            job_id = "train-r%d-shard%d" % (round_index, shard_index)
            result = fleet_result.results.get(job_id)
            new = sorted(result.payload["union"]) if result else []
            round_new.append(new)
            new_this_round.update(new)
            per_shard_seen[shard_index].update(new)
        shard_new.append(round_new)
        series.append(len(new_this_round))
        whitelist |= new_this_round
    shard_files = []
    if shard_dir is not None:
        os.makedirs(shard_dir, exist_ok=True)
        for shard_index, seen in enumerate(per_shard_seen):
            path = os.path.join(shard_dir, "shard-%d.whitelist" % shard_index)
            Whitelist.write_file(
                path, seen,
                comment="federated training shard %d" % shard_index)
            shard_files.append(path)
        merged_path = os.path.join(shard_dir, "merged.whitelist")
        merge_whitelist_files(merged_path, shard_files,
                              comment="federated merge of %d shards"
                              % shards, initial=initial_whitelist)
        shard_files.append(merged_path)
    result = TrainingResult(series, whitelist, config.mode)
    return FederatedTrainingResult(result, shards, len(series), shard_new,
                                   shard_files, None)


__all__ = ["FederatedTrainingResult", "federated_train",
           "partition_round_robin"]
