"""Conflict-aware fleet job binning (``fleet run --bin-by-conflict``).

Orders a batch of job specs by the static conflict weight of each
job's program (:func:`repro.analysis.conflict.conflict_weight`):
heaviest first, so the jobs most likely to burn time on suspensions
and undos start earliest (longest-processing-time order) and, with
more than one worker, the heaviest jobs land on distinct workers
instead of queueing behind each other.

Binning is a pure reordering: job payloads, digests and aggregates are
unchanged — :meth:`JobResult.digest` excludes scheduling metadata, so a
binned run must aggregate identically to the unbinned run (pinned by a
test).  ``history`` accepts the pressure arbiter's
``{ar_id: violation count}`` map so past violations sharpen the static
prediction.
"""


def job_conflict_weight(source, history=None, _cache={}):
    """Static conflict weight of one program (annotation is memoized by
    source text — a batch typically repeats the same 5 apps)."""
    from repro.analysis.annotate import annotate
    from repro.analysis.conflict import conflict_weight

    graph = _cache.get(source)
    if graph is None:
        graph = annotate(source).conflicts
        _cache[source] = graph
    return conflict_weight(graph, history=history)


def bin_jobs_by_conflict(specs, history=None):
    """Reorder ``specs`` heaviest-conflict-first (job_id tiebreak).

    Returns ``(ordered specs, {job_id: weight})``.
    """
    weights = {spec.job_id: job_conflict_weight(spec.source,
                                                history=history)
               for spec in specs}
    ordered = sorted(specs,
                     key=lambda s: (-weights[s.job_id], s.job_id))
    return ordered, weights


def violation_history(source, history=None):
    """Fold violated AR ids into the pressure arbiter's
    ``{ar_id: violation count}`` shape (``SlotArbiter.viol_counts``),
    accumulating into a copy of ``history``.

    ``source`` is either a :class:`repro.fleet.merge.FleetAggregate`
    (its ``violated_ars`` ``(job_id, ar_id)`` pairs are folded) or any
    iterable of AR ids (e.g. a fuzz payload's ``violated_ars`` list).
    """
    history = dict(history) if history else {}
    pairs = getattr(source, "violated_ars", None)
    ids = [ar for _job, ar in pairs] if pairs is not None else source
    for ar_id in ids:
        history[ar_id] = history.get(ar_id, 0) + 1
    return history


class BinnedRounds:
    """Outcome of :func:`run_binned_rounds`: per-round orders/digests,
    the accumulated violation history, and the last fleet result."""

    __slots__ = ("rounds", "history", "last")

    def __init__(self, rounds, history, last):
        self.rounds = rounds      # [{round, order, weights, digest, ...}]
        self.history = history    # final {ar_id: violation count}
        self.last = last          # FleetResult of the final round

    @property
    def digests(self):
        return [r["digest"] for r in self.rounds]

    @property
    def digests_agree(self):
        """The rebinning pin: every round runs the same seed-determined
        jobs in a (possibly) different order, so every aggregate digest
        must match the first round's."""
        return len(set(self.digests)) <= 1


def run_binned_rounds(supervisor, specs, rounds=2, history=None, log=None):
    """Run the same batch ``rounds`` times, rebinning between rounds
    with the violation history accumulated so far — the live feedback
    loop from the arbiter's priority signal back into fleet scheduling.

    Binning is a pure reordering and jobs are seed-deterministic, so
    rebinning must never change the aggregate: ``digests_agree`` on the
    returned :class:`BinnedRounds` is the equality pin.
    """
    log = log or (lambda message: None)
    history = dict(history) if history else {}
    outcome = []
    last = None
    for rnd in range(max(1, rounds)):
        ordered, weights = bin_jobs_by_conflict(specs, history=history)
        log("round %d binning (heaviest first): %s"
            % (rnd + 1, " ".join("%s=%d" % (s.job_id, weights[s.job_id])
                                 for s in ordered)))
        last = supervisor.run_jobs(ordered)
        aggregate = last.aggregate()
        history = violation_history(aggregate, history)
        outcome.append({
            "round": rnd + 1,
            "order": [s.job_id for s in ordered],
            "weights": weights,
            "digest": aggregate.digest(),
            "violated_ars": len(aggregate.violated_ars),
        })
    return BinnedRounds(outcome, history, last)


__all__ = ["BinnedRounds", "bin_jobs_by_conflict", "job_conflict_weight",
           "run_binned_rounds", "violation_history"]
