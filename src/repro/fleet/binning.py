"""Conflict-aware fleet job binning (``fleet run --bin-by-conflict``).

Orders a batch of job specs by the static conflict weight of each
job's program (:func:`repro.analysis.conflict.conflict_weight`):
heaviest first, so the jobs most likely to burn time on suspensions
and undos start earliest (longest-processing-time order) and, with
more than one worker, the heaviest jobs land on distinct workers
instead of queueing behind each other.

Binning is a pure reordering: job payloads, digests and aggregates are
unchanged — :meth:`JobResult.digest` excludes scheduling metadata, so a
binned run must aggregate identically to the unbinned run (pinned by a
test).  ``history`` accepts the pressure arbiter's
``{ar_id: violation count}`` map so past violations sharpen the static
prediction.
"""


def job_conflict_weight(source, history=None, _cache={}):
    """Static conflict weight of one program (annotation is memoized by
    source text — a batch typically repeats the same 5 apps)."""
    from repro.analysis.annotate import annotate
    from repro.analysis.conflict import conflict_weight

    graph = _cache.get(source)
    if graph is None:
        graph = annotate(source).conflicts
        _cache[source] = graph
    return conflict_weight(graph, history=history)


def bin_jobs_by_conflict(specs, history=None):
    """Reorder ``specs`` heaviest-conflict-first (job_id tiebreak).

    Returns ``(ordered specs, {job_id: weight})``.
    """
    weights = {spec.job_id: job_conflict_weight(spec.source,
                                                history=history)
               for spec in specs}
    ordered = sorted(specs,
                     key=lambda s: (-weights[s.job_id], s.job_id))
    return ordered, weights


__all__ = ["bin_jobs_by_conflict", "job_conflict_weight"]
