"""Job wire format for the fleet execution plane.

A :class:`JobSpec` is everything a worker in another process needs to
execute one unit of work: the mini-C source text, a config snapshot
(the same codec the journal's run-start header uses, so fleet jobs and
journals stay mutually replayable), a seed, and kind-specific params.
Specs and results cross the process boundary as plain dicts of JSON
types only — no live objects — so the same job can be executed inline,
on a forked worker, on a spawned worker, or re-read from disk, with
byte-identical payloads.

Job kinds:

- ``run``     one protected run; payload = RunReport.as_payload()
- ``train``   one federated-training shard: each seed runs with the
              round's *frozen* whitelist; payload = new FPs per seed
- ``detect``  one Table-6-style detection campaign for one corpus bug
- ``suite``   one application's full (opt level x mode) measurement
              pass for ``run_suite --jobs``; payload carries pickled
              report objects and is intentionally not JSON/digestable
- ``fuzz``    one generated program through the fuzz oracle: online
              detector vs journal reverify vs conflict-sched
              transparency vs pinned replay; payload =
              CrossCheck.as_payload() plus program identity
"""

import hashlib
import json

from repro.errors import ConfigError
from repro.journal.snapshot import config_snapshot

JOB_KINDS = ("run", "train", "detect", "suite", "fuzz")


def canonical_json(obj):
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_of(obj):
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


class JobSpec:
    """One unit of fleet work, serializable as a plain dict."""

    __slots__ = ("job_id", "kind", "source", "snapshot", "seed", "params")

    def __init__(self, job_id, kind, source, snapshot, seed=0, params=None):
        if kind not in JOB_KINDS:
            raise ConfigError("unknown job kind %r (known: %s)"
                              % (kind, ", ".join(JOB_KINDS)))
        if not job_id or "/" in str(job_id):
            raise ConfigError("job_id must be a non-empty path-safe string")
        self.job_id = str(job_id)
        self.kind = kind
        self.source = source
        self.snapshot = dict(snapshot)
        self.seed = seed
        self.params = dict(params) if params else {}

    @classmethod
    def for_config(cls, job_id, kind, source, config, seed=None,
                   params=None):
        """Build a spec from a live KivatiConfig via the snapshot codec.

        Per-run mutable objects (trace, journal recorder, injector) are
        not snapshotted — the worker attaches fresh ones.
        """
        return cls(job_id, kind, source, config_snapshot(config),
                   seed=config.seed if seed is None else seed,
                   params=params)

    def as_dict(self):
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "source": self.source,
            "snapshot": self.snapshot,
            "seed": self.seed,
            "params": self.params,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["job_id"], data["kind"], data["source"],
                   data["snapshot"], seed=data.get("seed", 0),
                   params=data.get("params"))

    #: drill params stripped on retry; ``poison`` is deliberately NOT
    #: here — it models hostile input that kills workers on every
    #: attempt and only quarantine ends it
    RETRY_STRIPPED_DRILLS = ("crash", "stall_s")

    def without_crash_drill(self):
        """The same spec minus any recoverable drill (worker-kill
        ``crash``, live-but-stuck ``stall_s``) — retries of a crashed or
        timed-out job must outlive the recorded incident, exactly like
        recovery strips ``journal.crash`` before re-execution."""
        if not any(k in self.params for k in self.RETRY_STRIPPED_DRILLS):
            return self
        params = {k: v for k, v in self.params.items()
                  if k not in self.RETRY_STRIPPED_DRILLS}
        return JobSpec(self.job_id, self.kind, self.source, self.snapshot,
                       seed=self.seed, params=params)

    def digest(self):
        return digest_of(self.as_dict())

    def __repr__(self):
        return "JobSpec(%s, %s, seed=%d)" % (self.job_id, self.kind,
                                             self.seed)


class JobResult:
    """Outcome of one job, aggregation-ready.

    ``payload`` content is a pure function of the spec for ``ok``
    results; scheduling metadata (worker id, attempt, wall time) lives
    in separate fields and is excluded from :meth:`digest` so results
    merge identically regardless of which worker ran the job, how often
    it was retried, or in what order jobs completed.
    """

    __slots__ = ("job_id", "kind", "ok", "error", "payload", "worker_id",
                 "attempt", "elapsed_s", "journal_path", "verified",
                 "verify_shed")

    def __init__(self, job_id, kind, ok, payload, error=None, worker_id=None,
                 attempt=0, elapsed_s=0.0, journal_path=None, verified=None,
                 verify_shed=False):
        self.job_id = job_id
        self.kind = kind
        self.ok = ok
        self.error = error
        self.payload = payload
        self.worker_id = worker_id
        self.attempt = attempt
        self.elapsed_s = elapsed_s
        self.journal_path = journal_path
        #: True/False once the supervisor replay-verified the job's
        #: journal; None when verification was off, shed, or impossible
        self.verified = verified
        self.verify_shed = verify_shed

    def as_dict(self):
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "ok": self.ok,
            "error": self.error,
            "payload": self.payload,
            "worker_id": self.worker_id,
            "attempt": self.attempt,
            "elapsed_s": self.elapsed_s,
            "journal_path": self.journal_path,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["job_id"], data["kind"], data["ok"], data["payload"],
                   error=data.get("error"), worker_id=data.get("worker_id"),
                   attempt=data.get("attempt", 0),
                   elapsed_s=data.get("elapsed_s", 0.0),
                   journal_path=data.get("journal_path"))

    def digest(self):
        """Scheduling-independent identity of this result (JSON payloads
        only; ``suite`` jobs carry objects and are not digested)."""
        return digest_of({"job_id": self.job_id, "kind": self.kind,
                          "ok": self.ok, "payload": self.payload})

    def __repr__(self):
        return "JobResult(%s, %s)" % (
            self.job_id, "ok" if self.ok else "FAILED: %s" % self.error)


# ----------------------------------------------------------------------
# spec builders
# ----------------------------------------------------------------------

def app_run_jobs(config, workloads=None, seeds=(3,), scale=0.6,
                 prefix="run"):
    """One ``run`` job per (application, seed) over the 5-app suite."""
    from repro.workloads.catalog import workload_suite

    if workloads is None:
        workloads = workload_suite(scale=scale)
    specs = []
    for workload in workloads:
        for seed in seeds:
            specs.append(JobSpec.for_config(
                "%s-%s-s%d" % (prefix, workload.name.replace(" ", ""), seed),
                "run", workload.source, config, seed=seed,
                params={"workload": workload.name}))
    return specs


def detect_jobs(config, bug_ids=None, max_attempts=40, seed_base=0):
    """One ``detect`` job per corpus bug (the Table 6 campaign as fleet
    work). Jobs are self-contained: the bug source and victim variables
    ride in the spec, so workers need no corpus import."""
    from repro.workloads.bugs import BUGS

    if bug_ids is None:
        bug_ids = tuple(BUGS)
    specs = []
    for bug_id in bug_ids:
        bug = BUGS[bug_id]
        specs.append(JobSpec.for_config(
            "detect-%s" % bug_id, "detect", bug.source, config,
            params={"bug_id": bug_id,
                    "victim_vars": sorted(bug.victim_vars),
                    "max_attempts": max_attempts,
                    "seed_base": seed_base}))
    return specs


def train_shard_job(job_id, source, config, seeds, whitelist,
                    buggy_ar_ids=()):
    """One federated-training shard: observe new false positives on
    ``seeds`` with the round's frozen ``whitelist``."""
    return JobSpec.for_config(
        job_id, "train", source, config,
        params={"seeds": list(seeds),
                "whitelist": sorted(whitelist),
                "buggy": sorted(buggy_ar_ids)})


__all__ = ["JOB_KINDS", "JobResult", "JobSpec", "app_run_jobs",
           "canonical_json", "detect_jobs", "digest_of", "train_shard_job"]
