"""Fleet supervisor: dispatch, crash recovery, backpressure, aggregation.

The supervisor owns a pool of spawn-safe worker processes (one job
outstanding per worker, per-worker dispatch queues, one shared result
queue) and guarantees:

- **zero lost jobs** — a job is accounted for exactly once: as a
  completed result, a bounded-retry failure, or an admission rejection;
- **crash tolerance** — a worker that dies mid-job (detected by
  exitcode/heartbeat) has its torn journal salvaged via
  :func:`repro.journal.recovery.salvage`, the salvage journaled as a
  :class:`FleetRecovery` record, and the job retried on a fresh worker
  with bounded retries (crash drills are stripped from the retry the
  same way recovery strips ``journal.crash``);
- **determinism** — results are keyed by job id and merged in sorted
  order, so aggregates are identical for any worker count and any
  completion order;
- **backpressure** — queue-depth watermarks derived from
  :meth:`repro.pressure.PressurePolicy.fleet_watermarks` shed the
  supervisor's own monitoring (per-job replay verification) before they
  shed jobs, mirroring the in-process admission-control ordering.
"""

import os
import queue as queue_mod
import tempfile
import time

from repro.errors import ConfigError, JournalCrash
from repro.fleet.jobs import JobResult, JobSpec
from repro.fleet.merge import aggregate_results, worker_utilization
from repro.fleet.worker import execute_job, job_journal_path, worker_main
from repro.journal.recovery import salvage
from repro.pressure.policy import PressurePolicy


def _new_usage():
    """Per-worker accounting row: dispatch/claim counts and busy time."""
    return {"jobs": 0, "attempts": 0, "claims": 0, "busy_s": 0.0}


def _note_window(row, timeline, spec, attempt, worker_id, begun, started,
                 status, completed=False):
    """Close one job-attempt window: accrue the worker's busy time and
    append a timeline entry (times relative to batch start)."""
    now = time.perf_counter()
    row["busy_s"] += now - begun
    if completed:
        row["jobs"] += 1
    timeline.append({
        "job_id": spec.job_id,
        "worker_id": worker_id,
        "attempt": attempt,
        "start_s": round(begun - started, 6),
        "end_s": round(now - started, 6),
        "status": status,
    })


class FleetPolicy:
    """Supervisor knobs; watermarks derive from a PressurePolicy."""

    __slots__ = ("max_retries", "verify", "collect_journals", "pressure",
                 "shed_depth", "reject_depth", "start_method", "poll_s",
                 "job_timeout_s")

    def __init__(self, workers=2, max_retries=2, verify=True,
                 collect_journals=True, pressure=None, start_method="spawn",
                 poll_s=0.05, job_timeout_s=None):
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if start_method not in ("spawn", "fork", "forkserver"):
            raise ConfigError("unknown start method %r" % (start_method,))
        self.max_retries = max_retries
        self.verify = verify
        self.collect_journals = collect_journals
        self.pressure = pressure if pressure is not None else PressurePolicy()
        self.shed_depth, self.reject_depth = \
            self.pressure.fleet_watermarks(max(1, workers))
        self.start_method = start_method
        self.poll_s = poll_s
        #: optional wall-clock bound per job attempt; a worker that
        #: exceeds it is terminated and handled like a crash
        self.job_timeout_s = job_timeout_s


class FleetStats:
    """Supervisor-side accounting (fleet health, not job content)."""

    FIELDS = ("jobs_submitted", "jobs_completed", "jobs_failed",
              "jobs_rejected", "jobs_retried", "workers_spawned",
              "workers_crashed", "workers_timed_out", "verifications",
              "verification_failures", "verifications_shed",
              "frames_salvaged")

    __slots__ = FIELDS

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self):
        return ("FleetStats(done=%d, failed=%d, retried=%d, crashed=%d)"
                % (self.jobs_completed, self.jobs_failed, self.jobs_retried,
                   self.workers_crashed))


class FleetRecovery:
    """Journaled record of one crashed-worker salvage decision."""

    __slots__ = ("job_id", "worker_id", "attempt", "exitcode", "reason",
                 "frames_salvaged", "torn", "consistent", "action",
                 "journal_path")

    def __init__(self, job_id, worker_id, attempt, exitcode, reason,
                 frames_salvaged, torn, consistent, action, journal_path):
        self.job_id = job_id
        self.worker_id = worker_id
        self.attempt = attempt
        self.exitcode = exitcode
        self.reason = reason            # "crash" or "timeout"
        self.frames_salvaged = frames_salvaged
        self.torn = torn
        self.consistent = consistent
        self.action = action            # "retried" or "failed"
        self.journal_path = journal_path

    def describe(self):
        return ("worker %s %s on job %s (attempt %d, exit %s): salvaged "
                "%d frames%s%s -> %s"
                % (self.worker_id, self.reason, self.job_id, self.attempt,
                   self.exitcode, self.frames_salvaged,
                   ", torn" if self.torn else "",
                   "" if self.consistent else ", INCONSISTENT",
                   self.action))

    def __repr__(self):
        return "FleetRecovery(%s, %s)" % (self.job_id, self.action)


class FleetRejection:
    """A job shed at admission (queue depth above the reject
    watermark). Rejections are returned, never silently dropped."""

    __slots__ = ("spec", "depth", "reason")

    def __init__(self, spec, depth, reason):
        self.spec = spec
        self.depth = depth
        self.reason = reason


class FleetResult:
    """Everything one batch produced, aggregation-ready.

    ``worker_usage`` and ``timeline`` are scheduling metadata (per-worker
    busy time, dispatch counts, and per-attempt job windows relative to
    batch start) — surfaced in summaries and span exports but excluded
    from aggregate digests, which must stay worker-count independent.
    """

    __slots__ = ("results", "recoveries", "rejections", "stats",
                 "elapsed_s", "workers", "completion_order",
                 "worker_usage", "timeline")

    def __init__(self, results, recoveries, rejections, stats, elapsed_s,
                 workers, completion_order, worker_usage=None,
                 timeline=None):
        self.results = results            # job_id -> JobResult
        self.recoveries = list(recoveries)
        self.rejections = list(rejections)
        self.stats = stats
        self.elapsed_s = elapsed_s
        self.workers = workers
        self.completion_order = list(completion_order)
        self.worker_usage = dict(worker_usage or {})
        self.timeline = list(timeline or [])

    @property
    def ok(self):
        return (all(r.ok for r in self.results.values())
                and not self.rejections
                and self.stats.verification_failures == 0)

    @property
    def jobs_per_sec(self):
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.results) / self.elapsed_s

    def aggregate(self):
        return aggregate_results(self.results, elapsed_s=self.elapsed_s,
                                 worker_usage=self.worker_usage)

    def utilization(self):
        """Per-worker busy fraction / job counts for this batch."""
        return worker_utilization(self.worker_usage, self.elapsed_s)

    def describe(self):
        lines = ["fleet: %d jobs on %d worker(s) in %.2fs (%.2f jobs/s)%s"
                 % (len(self.results), self.workers, self.elapsed_s,
                    self.jobs_per_sec, "" if self.ok else " [PROBLEMS]")]
        stats = self.stats
        lines.append("  completed=%d failed=%d retried=%d rejected=%d "
                     "crashed_workers=%d verified=%d (shed %d, failed %d)"
                     % (stats.jobs_completed, stats.jobs_failed,
                        stats.jobs_retried, stats.jobs_rejected,
                        stats.workers_crashed, stats.verifications,
                        stats.verifications_shed,
                        stats.verification_failures))
        for worker_id, row in sorted(self.utilization().items()):
            lines.append("  worker %s: %d job(s) in %d dispatch(es), "
                         "busy %.2fs (%.0f%% of batch)%s"
                         % (worker_id, row["jobs"], row["attempts"],
                            row["busy_s"], 100.0 * row["busy_frac"],
                            (", %d claim(s)" % row["claims"])
                            if row.get("claims") else ""))
        for recovery in self.recoveries:
            lines.append("  recovery: " + recovery.describe())
        return "\n".join(lines)


class _Worker:
    """Supervisor-side handle for one worker process."""

    __slots__ = ("worker_id", "process", "job_queue", "journal_dir",
                 "inflight", "dispatched_at")

    def __init__(self, worker_id, process, job_queue, journal_dir):
        self.worker_id = worker_id
        self.process = process
        self.job_queue = job_queue
        self.journal_dir = journal_dir
        self.inflight = None        # (JobSpec, attempt) or None
        self.dispatched_at = None


class FleetSupervisor:
    """Dispatches job batches over a spawn-safe worker pool.

    ``workers=0`` executes inline in this process (no multiprocessing):
    same job semantics, same salvage+retry handling for crash drills,
    fully deterministic — the reference the multi-process path is tested
    against.
    """

    def __init__(self, workers=2, policy=None, journal_root=None):
        if workers < 0:
            raise ConfigError("workers must be >= 0")
        self.workers = workers
        self.policy = policy if policy is not None else FleetPolicy(
            workers=workers)
        self._journal_root = journal_root
        self._owns_journal_root = journal_root is None

    def journal_root(self):
        if self._journal_root is None:
            self._journal_root = tempfile.mkdtemp(prefix="kivati-fleet-")
        return self._journal_root

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run_jobs(self, specs, reject_overflow=False):
        """Execute a batch; returns a :class:`FleetResult`.

        With ``reject_overflow`` the admission-control reject watermark
        applies at submission (service posture: a caller pushing an
        unbounded batch gets explicit rejections back); without it the
        whole batch is accepted and backpressure only sheds supervisor
        monitoring (batch posture — jobs are never dropped).
        """
        specs = [spec if isinstance(spec, JobSpec) else JobSpec.from_dict(spec)
                 for spec in specs]
        seen = set()
        for spec in specs:
            if spec.job_id in seen:
                raise ConfigError("duplicate job_id %r" % spec.job_id)
            seen.add(spec.job_id)
        stats = FleetStats()
        admitted = []
        rejections = []
        for spec in specs:
            depth = len(admitted)
            if reject_overflow and depth >= self.policy.reject_depth:
                rejections.append(FleetRejection(
                    spec, depth, "queue depth %d >= reject watermark %d"
                    % (depth, self.policy.reject_depth)))
                stats.jobs_rejected += 1
                continue
            admitted.append(spec)
        stats.jobs_submitted = len(admitted)
        started = time.perf_counter()
        if self.workers == 0:
            results, recoveries, order, usage, timeline = \
                self._run_inline(admitted, stats, started)
        else:
            results, recoveries, order, usage, timeline = \
                self._run_pool(admitted, stats, started)
        elapsed = time.perf_counter() - started
        return FleetResult(results, recoveries, rejections, stats, elapsed,
                           self.workers, order, worker_usage=usage,
                           timeline=timeline)

    # ------------------------------------------------------------------
    # inline execution (workers=0)
    # ------------------------------------------------------------------

    def _run_inline(self, specs, stats, started):
        results = {}
        recoveries = []
        order = []
        usage = {"inline": _new_usage()}
        timeline = []
        journal_dir = os.path.join(self.journal_root(), "inline")
        os.makedirs(journal_dir, exist_ok=True)
        pending = [(spec, 0) for spec in specs]
        pending.reverse()  # treat as stack; deterministic order
        while pending:
            spec, attempt = pending.pop()
            use_dir = journal_dir if self.policy.collect_journals else None
            usage["inline"]["attempts"] += 1
            begun = time.perf_counter()
            try:
                raw = execute_job(spec.as_dict(), journal_dir=use_dir)
            except JournalCrash:
                _note_window(usage["inline"], timeline, spec, attempt,
                             "inline", begun, started, "crash")
                recovery, retry = self._handle_crash(
                    spec, attempt, worker_id="inline", exitcode=None,
                    reason="crash",
                    journal_dir=use_dir, stats=stats, results=results)
                recoveries.append(recovery)
                if retry is not None:
                    pending.append(retry)
                continue
            result = self._record_result(raw, spec, attempt, "inline",
                                         stats, backlog=len(pending))
            _note_window(usage["inline"], timeline, spec, attempt,
                         "inline", begun, started,
                         "ok" if result.ok else "failed",
                         completed=True)
            results[spec.job_id] = result
            order.append(spec.job_id)
        return results, recoveries, order, usage, timeline

    # ------------------------------------------------------------------
    # multi-process execution
    # ------------------------------------------------------------------

    def _run_pool(self, specs, stats, started):
        import multiprocessing as mp

        ctx = mp.get_context(self.policy.start_method)
        result_queue = ctx.Queue()
        workers = {}
        usage = {}
        timeline = []
        next_id = [0]

        def spawn_worker():
            worker_id = "w%d" % next_id[0]
            next_id[0] += 1
            journal_dir = os.path.join(self.journal_root(), worker_id)
            os.makedirs(journal_dir, exist_ok=True)
            job_queue = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, job_queue, result_queue,
                      journal_dir if self.policy.collect_journals else None),
                daemon=True)
            process.start()
            workers[worker_id] = _Worker(worker_id, process, job_queue,
                                         journal_dir)
            usage[worker_id] = _new_usage()
            stats.workers_spawned += 1
            return worker_id

        for _ in range(self.workers):
            spawn_worker()

        results = {}
        recoveries = []
        order = []
        pending = list(reversed([(spec, 0) for spec in specs]))

        def dispatch():
            for worker in workers.values():
                if not pending:
                    return
                if worker.inflight is None and worker.process.is_alive():
                    spec, attempt = pending.pop()
                    worker.inflight = (spec, attempt)
                    worker.dispatched_at = time.perf_counter()
                    usage[worker.worker_id]["attempts"] += 1
                    worker.job_queue.put(spec.as_dict())

        def handle_dead(worker, reason):
            spec, attempt = worker.inflight
            worker.inflight = None
            _note_window(usage[worker.worker_id], timeline, spec, attempt,
                         worker.worker_id, worker.dispatched_at, started,
                         reason)
            stats.workers_crashed += 1
            use_dir = (worker.journal_dir if self.policy.collect_journals
                       else None)
            recovery, retry = self._handle_crash(
                spec, attempt, worker_id=worker.worker_id,
                exitcode=worker.process.exitcode, reason=reason,
                journal_dir=use_dir, stats=stats, results=results)
            recoveries.append(recovery)
            if retry is not None:
                pending.append(retry)
            del workers[worker.worker_id]
            spawn_worker()

        try:
            while pending or any(w.inflight is not None
                                 for w in workers.values()):
                dispatch()
                try:
                    tag, worker_id, body = result_queue.get(
                        timeout=self.policy.poll_s)
                except queue_mod.Empty:
                    for worker in list(workers.values()):
                        if worker.inflight is None:
                            continue
                        if not worker.process.is_alive():
                            handle_dead(worker, "crash")
                        elif (self.policy.job_timeout_s is not None
                              and time.perf_counter() - worker.dispatched_at
                              > self.policy.job_timeout_s):
                            worker.process.terminate()
                            worker.process.join(timeout=5.0)
                            stats.workers_timed_out += 1
                            handle_dead(worker, "timeout")
                    continue
                if tag == "claim":
                    row = usage.get(worker_id)
                    if row is not None:
                        row["claims"] += 1
                    continue
                if tag == "bye":
                    continue
                worker = workers.get(worker_id)
                if worker is None or worker.inflight is None:
                    continue  # stale message from a replaced worker
                spec, attempt = worker.inflight
                if body["job_id"] != spec.job_id:
                    continue
                worker.inflight = None
                result = self._record_result(
                    body, spec, attempt, worker_id, stats,
                    backlog=len(pending))
                _note_window(usage[worker_id], timeline, spec, attempt,
                             worker_id, worker.dispatched_at, started,
                             "ok" if result.ok else "failed",
                             completed=True)
                results[spec.job_id] = result
                order.append(spec.job_id)
        finally:
            for worker in workers.values():
                if worker.process.is_alive():
                    worker.job_queue.put(None)
            deadline = time.perf_counter() + 5.0
            for worker in workers.values():
                worker.process.join(
                    timeout=max(0.1, deadline - time.perf_counter()))
                if worker.process.is_alive():
                    worker.process.terminate()
            result_queue.cancel_join_thread()
        return results, recoveries, order, usage, timeline

    # ------------------------------------------------------------------
    # shared handling
    # ------------------------------------------------------------------

    def _handle_crash(self, spec, attempt, worker_id, exitcode, reason,
                      journal_dir, stats, results):
        """Salvage a crashed attempt's journal and decide retry/fail.

        Returns ``(FleetRecovery, retry_or_None)``; when retries are
        exhausted the job is recorded as a failed result — accounted
        for, never lost.
        """
        frames = 0
        torn = False
        consistent = True
        journal_path = None
        if journal_dir is not None:
            journal_path = job_journal_path(journal_dir, spec.job_id)
            if os.path.exists(journal_path):
                salvaged = salvage(journal_path)
                frames = len(salvaged.events)
                torn = salvaged.torn
                consistent = (salvaged.state is None
                              or salvaged.state.consistent)
                stats.frames_salvaged += frames
        if attempt < self.policy.max_retries:
            action = "retried"
            stats.jobs_retried += 1
            retry = (spec.without_crash_drill(), attempt + 1)
        else:
            action = "failed"
            stats.jobs_failed += 1
            results[spec.job_id] = JobResult(
                spec.job_id, spec.kind, False, None,
                error="worker %s after %d attempts" % (reason, attempt + 1),
                worker_id=worker_id, attempt=attempt,
                journal_path=journal_path)
            retry = None
        return (FleetRecovery(spec.job_id, worker_id, attempt, exitcode,
                              reason, frames, torn, consistent, action,
                              journal_path),
                retry)

    def _record_result(self, raw, spec, attempt, worker_id, stats,
                       backlog=0):
        result = JobResult.from_dict(raw)
        result.worker_id = worker_id
        result.attempt = attempt
        if result.ok:
            stats.jobs_completed += 1
        else:
            stats.jobs_failed += 1
        self._maybe_verify(result, spec, stats, backlog)
        return result

    def _maybe_verify(self, result, spec, stats, backlog):
        """Replay-verify a completed run or fuzz job's journal, unless
        the pending backlog sits above the shed watermark — monitoring
        is shed before jobs, reusing the pressure plane's ordering."""
        if (not self.policy.verify or not result.ok
                or result.journal_path is None
                or spec.kind not in ("run", "fuzz")):
            return
        if backlog >= self.policy.shed_depth:
            result.verify_shed = True
            stats.verifications_shed += 1
            return
        from repro.fleet.worker import cached_program
        from repro.journal.replay import replay_run

        stats.verifications += 1
        try:
            replay = replay_run(cached_program(spec.source),
                                result.journal_path,
                                drop_fault_points=("journal.crash",))
            result.verified = replay.ok and replay.verdicts_match
        except Exception:
            result.verified = False
        if not result.verified:
            stats.verification_failures += 1


__all__ = ["FleetPolicy", "FleetRecovery", "FleetRejection", "FleetResult",
           "FleetStats", "FleetSupervisor"]
