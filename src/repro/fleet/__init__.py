"""Fleet execution plane: multi-process sharded Kivati runs.

The paper assumes fleet-style operation — whitelists "learned over
training runs" and re-read periodically (§6) — and every run in this
repo (bug corpus, chaos sweeps, training, soak, the nine tables) is one
deterministic simulated execution, i.e. an embarrassingly shardable job.
``repro.fleet`` turns the single-process sessions into a sharded
service:

- :mod:`repro.fleet.jobs` — serializable :class:`JobSpec`/:class:`JobResult`
  wire format (config snapshots ride the journal's snapshot codec);
- :mod:`repro.fleet.worker` — spawn-safe worker loop with a per-process
  compiled-program cache and per-job on-disk journals;
- :mod:`repro.fleet.supervisor` — dispatch, heartbeat/exitcode crash
  detection, torn-journal salvage + bounded retry, queue-depth
  backpressure reusing :class:`repro.pressure.PressurePolicy` signals;
- :mod:`repro.fleet.merge` — deterministic result aggregation (keyed by
  job id, independent of completion order);
- :mod:`repro.fleet.shard` — federated whitelist training: per-shard
  observations with a frozen per-round whitelist, merged into a
  whitelist provably equal to serial training on the same seeds.
"""

from repro.fleet.binning import (BinnedRounds, bin_jobs_by_conflict,
                                 job_conflict_weight, run_binned_rounds,
                                 violation_history)
from repro.fleet.jobs import JobSpec, JobResult, app_run_jobs, detect_jobs
from repro.fleet.merge import FleetAggregate, aggregate_results
from repro.fleet.shard import (FederatedTrainingResult, federated_train,
                               partition_round_robin)
from repro.fleet.supervisor import (FleetPolicy, FleetRecovery, FleetResult,
                                    FleetStats, FleetSupervisor)

__all__ = [
    "BinnedRounds",
    "FederatedTrainingResult",
    "FleetAggregate",
    "FleetPolicy",
    "FleetRecovery",
    "FleetResult",
    "FleetStats",
    "FleetSupervisor",
    "JobResult",
    "JobSpec",
    "aggregate_results",
    "app_run_jobs",
    "bin_jobs_by_conflict",
    "detect_jobs",
    "job_conflict_weight",
    "federated_train",
    "partition_round_robin",
    "run_binned_rounds",
    "violation_history",
]
