"""Deterministic aggregation of fleet job results.

The merge is keyed by job id and folds results in sorted-key order, so
the aggregate is a pure function of the result *set* — independent of
worker count, retry history and completion order.  Per-worker
``KivatiStats`` counter dicts merge losslessly via
:meth:`repro.runtime.stats.KivatiStats.merge` (field-introspected, so a
newly added counter cannot silently skip aggregation), and train-shard
payloads union into one whitelist.
"""

from repro.fleet.jobs import digest_of
from repro.runtime.stats import KivatiStats


def merge_stats(stat_dicts):
    """Fold per-worker ``KivatiStats.as_dict`` payloads into one
    fleet-wide KivatiStats."""
    total = KivatiStats()
    for data in stat_dicts:
        total.merge(data)
    return total


def worker_utilization(worker_usage, elapsed_s):
    """Per-worker utilization summary from supervisor usage rows.

    Returns ``worker_id -> {jobs, attempts, claims, busy_s, busy_frac}``
    where ``busy_frac`` is the fraction of the batch's wall clock the
    worker spent executing job attempts (idle fraction is its
    complement).  Scheduling metadata only — never part of digests.
    """
    out = {}
    for worker_id, row in sorted((worker_usage or {}).items()):
        busy = row.get("busy_s", 0.0)
        out[worker_id] = {
            "jobs": row.get("jobs", 0),
            "attempts": row.get("attempts", 0),
            "claims": row.get("claims", 0),
            "busy_s": round(busy, 4),
            "busy_frac": round(busy / elapsed_s, 4) if elapsed_s else 0.0,
        }
    return out


class FleetAggregate:
    """Order-independent summary of a fleet run's results.

    ``utilization`` (per-worker busy fractions, when the caller passed
    scheduling metadata) rides along for reporting but is excluded from
    ``digest()`` — the digest is a pure function of the result set.
    """

    __slots__ = ("jobs", "failed_jobs", "stats", "time_ns", "violations",
                 "violated_ars", "outputs", "whitelist", "detections",
                 "deadlocks", "utilization")

    def __init__(self, jobs, failed_jobs, stats, time_ns, violations,
                 violated_ars, outputs, whitelist, detections, deadlocks,
                 utilization=None):
        self.jobs = jobs                  # job ids aggregated, sorted
        self.failed_jobs = failed_jobs    # job_id -> error, sorted items
        self.stats = stats                # merged KivatiStats
        self.time_ns = time_ns            # total simulated time
        self.violations = violations      # sorted (job_id, record tuple)
        self.violated_ars = violated_ars  # sorted (job_id, ar_id)
        self.outputs = outputs            # job_id -> output list
        self.whitelist = whitelist        # union of train-shard FPs
        self.detections = detections      # job_id -> detect payload
        self.deadlocks = deadlocks        # job ids that deadlocked
        self.utilization = utilization    # worker_id -> usage (or None)

    @property
    def ok(self):
        return not self.failed_jobs

    def digest(self):
        """Identity of the aggregate for cross-worker-count determinism
        checks (JSON-able content only; scheduling metadata excluded)."""
        return digest_of({
            "jobs": self.jobs,
            "failed": sorted(self.failed_jobs),
            "stats": self.stats.as_dict(),
            "time_ns": self.time_ns,
            "violations": [[j, list(v)] for j, v in self.violations],
            "outputs": {j: list(o) for j, o in self.outputs.items()},
            "whitelist": sorted(self.whitelist),
            "detections": self.detections,
        })

    def summary(self):
        text = ("fleet aggregate: %d jobs (%d failed), simulated %.3fms, "
                "crossings=%d traps=%d violations=%d (unique ARs %d)"
                % (len(self.jobs), len(self.failed_jobs),
                   self.time_ns / 1e6, self.stats.crossings(),
                   self.stats.traps, self.stats.violations,
                   len({(j, ar) for j, ar in self.violated_ars})))
        if self.whitelist:
            text += " trained_whitelist=%d" % len(self.whitelist)
        if self.detections:
            found = sum(1 for p in self.detections.values() if p["detected"])
            text += " detected=%d/%d" % (found, len(self.detections))
        if self.deadlocks:
            text += " DEADLOCKS=%s" % ",".join(self.deadlocks)
        if self.utilization:
            busy = ["%s=%d%%" % (w, round(100 * row["busy_frac"]))
                    for w, row in sorted(self.utilization.items())]
            text += " utilization[%s]" % ",".join(busy)
        return text


def aggregate_results(results, elapsed_s=None, worker_usage=None):
    """Merge a ``job_id -> JobResult`` mapping (or iterable of results)
    into a :class:`FleetAggregate`.

    ``elapsed_s``/``worker_usage`` (as collected by the supervisor)
    attach per-worker utilization to the aggregate for reporting; they
    never influence the digest."""
    if isinstance(results, dict):
        ordered = [results[job_id] for job_id in sorted(results)]
    else:
        ordered = sorted(results, key=lambda r: r.job_id)
    jobs = []
    failed = {}
    stats = KivatiStats()
    time_ns = 0
    violations = []
    violated = []
    outputs = {}
    whitelist = set()
    detections = {}
    deadlocks = []
    for result in ordered:
        jobs.append(result.job_id)
        if not result.ok:
            failed[result.job_id] = result.error
            continue
        payload = result.payload
        if result.kind == "run":
            stats.merge(payload["stats"])
            time_ns += payload["time_ns"]
            outputs[result.job_id] = payload["output"]
            violations.extend((result.job_id, tuple(v))
                              for v in payload["violations"])
            violated.extend((result.job_id, ar)
                            for ar in payload["violated_ars"])
            if payload["deadlocked"]:
                deadlocks.append(result.job_id)
        elif result.kind == "train":
            whitelist.update(payload["union"])
        elif result.kind == "detect":
            detections[result.job_id] = payload
            time_ns += payload["time_ns"]
    utilization = (worker_utilization(worker_usage, elapsed_s)
                   if worker_usage else None)
    return FleetAggregate(jobs, dict(sorted(failed.items())), stats,
                          time_ns, sorted(violations), sorted(violated),
                          outputs, frozenset(whitelist), detections,
                          deadlocks, utilization=utilization)


__all__ = ["FleetAggregate", "aggregate_results", "merge_stats",
           "worker_utilization"]
