"""The Kivati kernel component (Sections 3.2 and 3.3).

Holds the two data structures the paper adds to the kernel — per-thread AR
tables and watchpoint metadata — plus the trap handler, the rollback
(undo) engine for trap-after hardware, remote-thread suspension with the
10 ms timeout, and lazy cross-core watchpoint propagation.
"""

from repro.kernel.kivati import KivatiKernel
from repro.kernel.state import ActiveAR, KernelSlot, Suspension, Trigger

__all__ = ["ActiveAR", "KernelSlot", "KivatiKernel", "Suspension", "Trigger"]
