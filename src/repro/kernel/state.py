"""Kernel data structures: watchpoint metadata and per-thread AR tables."""

from repro.minic.ast import AccessKind


class Trigger:
    """One recorded watchpoint trap caused by a remote access."""

    __slots__ = ("tid", "kinds", "pc", "location", "time", "undone")

    def __init__(self, tid, kinds, pc, location, time, undone):
        self.tid = tid
        self.kinds = tuple(kinds)  # AccessKind values the access performed
        self.pc = pc
        self.location = location
        self.time = time
        self.undone = undone

    def __repr__(self):
        return "Trigger(tid=%d, %s, pc=%s, undone=%s)" % (
            self.tid, "/".join(str(k) for k in self.kinds), self.pc,
            self.undone)


class Suspension:
    """A remote thread suspended on a watchpoint slot."""

    __slots__ = ("tid", "reason", "timeout_event")

    REASON_TRAP = "trap"
    REASON_BEGIN = "begin"

    def __init__(self, tid, reason, timeout_event):
        self.tid = tid
        self.reason = reason
        self.timeout_event = timeout_event


class ActiveAR:
    """A begin_atomic'd atomic region awaiting its end_atomic."""

    __slots__ = ("info", "tid", "addr", "depth", "begin_time", "slot_index",
                 "pending_capture")

    def __init__(self, info, tid, addr, depth, begin_time, slot_index,
                 pending_capture):
        self.info = info
        self.tid = tid
        self.addr = addr
        self.depth = depth
        self.begin_time = begin_time
        self.slot_index = slot_index
        self.pending_capture = pending_capture

    @property
    def ar_id(self):
        return self.info.ar_id

    def __repr__(self):
        return "ActiveAR(ar=%d, tid=%d, addr=%d, slot=%s)" % (
            self.ar_id, self.tid, self.addr, self.slot_index)


class ZombieAR:
    """An AR whose watchpoint timed out before end_atomic executed.

    Its triggers are preserved so the late end_atomic can still record the
    violation "but note that it was not prevented" (Section 2.2).
    """

    __slots__ = ("info", "tid", "addr", "triggers", "begin_time")

    def __init__(self, info, tid, addr, triggers, begin_time):
        self.info = info
        self.tid = tid
        self.addr = addr
        self.triggers = list(triggers)
        self.begin_time = begin_time


class KernelSlot:
    """Kernel-side (logical) metadata for one hardware watchpoint slot."""

    __slots__ = ("index", "enabled", "addr", "size", "watch_read",
                 "watch_write", "ars", "triggers", "suspended",
                 "lazily_freed", "captured_value", "owner_tid",
                 "containment_owner", "suppressed_tids", "gen",
                 "freed_at", "last_use_ns")

    def __init__(self, index):
        self.index = index
        # monotone arming generation: incremented every time the slot is
        # (re)armed for a fresh address, never reset by free().  Journal
        # events carry (slot, gen) so offline replay/postmortem tools can
        # attribute triggers to AR windows exactly as the online kernel
        # did, without relying on cross-core timestamps.
        self.gen = 0
        self.enabled = False
        self.addr = 0
        self.size = 1
        self.watch_read = False
        self.watch_write = False
        self.ars = []
        self.triggers = []
        self.suspended = []
        self.lazily_freed = False
        self.captured_value = None
        self.owner_tid = None
        self.containment_owner = None
        self.suppressed_tids = None
        # when the slot entered the lazily-freed state (None while armed
        # or free); the slot-leak watchdog ages lazily-freed slots
        # against this
        self.freed_at = None
        # last time an AR armed/joined the slot or a trap was attributed
        # to it; the arbiter's LRU tiebreak orders victims by this
        self.last_use_ns = 0

    def free(self):
        self.enabled = False
        self.addr = 0
        self.size = 1
        self.watch_read = False
        self.watch_write = False
        self.ars = []
        self.triggers = []
        self.suspended = []
        self.lazily_freed = False
        self.captured_value = None
        self.owner_tid = None
        self.containment_owner = None
        self.suppressed_tids = None
        self.freed_at = None

    @property
    def is_available(self):
        return not self.enabled or self.lazily_freed

    def matches(self, addr, is_write, tid):
        """Hardware-compatible matching (DebugRegisterFile duck type)."""
        if not self.enabled:
            return False
        if not (self.addr <= addr < self.addr + self.size):
            return False
        if is_write and not self.watch_write:
            return False
        if not is_write and not self.watch_read:
            return False
        if self.suppressed_tids is not None and tid in self.suppressed_tids:
            return False
        return True

    def recompute_kinds(self, o3_enabled):
        """Set hardware kinds to the most aggressive union over the ARs
        using this slot (Section 3.2). Returns True if anything changed."""
        watch_read = False
        watch_write = False
        for ar in self.ars:
            watch_read = watch_read or ar.info.watch_read
            watch_write = watch_write or ar.info.watch_write
            if ar.pending_capture:
                # base-mode first-write capture needs a local write trap
                watch_write = True
        suppressed = None
        if o3_enabled and self.ars and not any(ar.pending_capture
                                               for ar in self.ars):
            suppressed = frozenset(ar.tid for ar in self.ars)
        changed = (watch_read != self.watch_read
                   or watch_write != self.watch_write
                   or suppressed != self.suppressed_tids)
        self.watch_read = watch_read
        self.watch_write = watch_write
        self.suppressed_tids = suppressed
        return changed

    def __repr__(self):
        if not self.enabled:
            return "KernelSlot(%d, free)" % self.index
        kinds = ("R" if self.watch_read else "") + ("W" if self.watch_write else "")
        return "KernelSlot(%d, addr=%d, %s, ars=%d%s)" % (
            self.index, self.addr, kinds, len(self.ars),
            ", lazy" if self.lazily_freed else "")


__all__ = ["AccessKind", "ActiveAR", "KernelSlot", "Suspension", "Trigger",
           "ZombieAR"]
