"""The rollback engine (Section 3.3).

x86 watchpoint traps arrive after the triggering instruction has
committed, so preventing a violation requires undoing the remote access
and re-executing it after the ARs complete:

- the program counter is moved back using the pre-processed memory map
  (the trap handler only sees the after-PC), with the subroutine-call
  special case resolved through the return address on the stack;
- a remote *write* is undone by restoring the value recorded after the
  first local access of the AR;
- a remote *read* into a register is left stale (re-execution overwrites
  it); a remote read copied into *another memory location* is contained
  by arming a spare watchpoint on the leaked location;
- instruction side effects (the frame pushed by a call) are also undone.

Atomic read-modify-write macro-ops (lock/unlock/cas/atomic_add) are
detected but not reordered (see DESIGN.md): the engine reports failure and
the kernel logs that it was unable to reorder the access.
"""

from repro.compiler.bytecode import Op, SYNC_OPS
from repro.minic.ast import AccessKind


class UndoOutcome:
    """Result of an undo attempt."""

    __slots__ = ("ok", "kinds", "pc", "needs_containment_addr")

    def __init__(self, ok, kinds=(), pc=None, needs_containment_addr=None):
        self.ok = ok
        self.kinds = tuple(kinds)
        self.pc = pc
        self.needs_containment_addr = needs_containment_addr


def classify_access_kinds(instr, thread, slot_addr):
    """Disassemble the faulting instruction to determine what kinds of
    access it made to ``slot_addr`` (the kernel-side disassembly step)."""
    op = instr.op
    kinds = []
    if op is Op.LD:
        # a load is a read of the watched address no matter what register
        # state is visible to the kernel at classification time; gating on
        # thread.regs produced an empty classification (i.e. "no access")
        # for suspended threads whose register file was swapped out
        kinds.append(AccessKind.READ)
    elif op is Op.ST or op is Op.STPARAM:
        kinds.append(AccessKind.WRITE)
    elif op is Op.CPY:
        if thread.regs[instr.b] == slot_addr:
            kinds.append(AccessKind.READ)
        if thread.regs[instr.a] == slot_addr:
            kinds.append(AccessKind.WRITE)
        if not kinds:
            kinds.append(AccessKind.READ)
    elif op is Op.CALLIND:
        kinds.append(AccessKind.READ)
    elif op in (Op.LOCK, Op.CAS, Op.AADD):
        kinds.extend((AccessKind.READ, AccessKind.WRITE))
    elif op is Op.UNLOCK:
        kinds.append(AccessKind.WRITE)
    else:
        kinds.append(AccessKind.READ)
    return tuple(kinds)


def undo_remote_access(machine, thread, faulting_pc, slot):
    """Undo the committed effects of the instruction at ``faulting_pc``.

    Returns an UndoOutcome. On success the thread's pc points back at the
    faulting instruction, memory effects on the watched address are rolled
    back, and ``needs_containment_addr`` is set if a value was leaked to
    another memory location that must be guarded.
    """
    instr = machine.program.instrs[faulting_pc]
    op = instr.op
    kinds = classify_access_kinds(instr, thread, slot.addr)

    if op in SYNC_OPS:
        return UndoOutcome(False, kinds)

    containment = None
    if op is Op.LD:
        # destination register holds a stale value; re-execution fixes it
        pass
    elif op is Op.ST or op is Op.STPARAM:
        if slot.captured_value is not None:
            machine.write_raw(slot.addr, slot.captured_value)
    elif op is Op.CPY:
        dst = thread.regs[instr.a]
        src = thread.regs[instr.b]
        if dst == slot.addr:
            # the write side hit the watchpoint: roll it back
            if slot.captured_value is not None:
                machine.write_raw(slot.addr, slot.captured_value)
        if src == slot.addr and dst != slot.addr:
            # the read side hit: the watched value leaked into memory at
            # dst and must be contained until re-execution
            containment = dst
    elif op is Op.CALLIND:
        # the call committed: unwind the frame it pushed
        if thread.frames:
            frame = thread.frames.pop()
            thread.regs = frame.saved_regs
            thread.sp = frame.saved_sp
            thread.fp = frame.saved_fp
    else:
        return UndoOutcome(False, kinds)

    thread.pc = faulting_pc
    return UndoOutcome(True, kinds, pc=faulting_pc,
                       needs_containment_addr=containment)
