"""The Kivati kernel component.

Implements Sections 3.2 (detection) and 3.3 (prevention): the begin/end/
clear system call handlers, the watchpoint trap handler with the rollback
engine, remote-thread suspension with the 10 ms timeout, preferential
wakeup, lazy cross-core watchpoint propagation, and the bookkeeping needed
by the user-space optimizations (lazily-freed slots, shadow captures).
"""

from repro.analysis.watchtype import is_unserializable
from repro.core.reports import DegradationLog, DegradationRecord, ViolationRecord
from repro.kernel.state import ActiveAR, KernelSlot, Suspension, Trigger, ZombieAR
from repro.kernel.undo import classify_access_kinds, undo_remote_access
from repro.machine.threads import ThreadState
from repro.minic.ast import AccessKind
from repro.compiler.bytecode import Op, SYNC_OPS


def _sorted_kinds(kinds):
    """Canonical order for a set of AccessKinds.

    Enum sets iterate in id-hash order, which differs between *processes*;
    anything recorded from a set (trigger kinds, the violation's
    remote_kind) must be sorted or replaying a journal in a fresh process
    can disagree with the recording run.
    """
    return tuple(sorted(kinds, key=lambda k: k.value))


class BeginOutcome:
    __slots__ = ("hw_changed", "suspended", "monitored", "attached", "missed")

    def __init__(self):
        self.hw_changed = False
        self.suspended = False
        self.monitored = False
        self.attached = False
        self.missed = False

    @property
    def needs_crossing(self):
        return self.hw_changed or self.suspended


class EndOutcome:
    __slots__ = ("hw_changed", "had_triggers", "found", "zombie")

    def __init__(self):
        self.hw_changed = False
        self.had_triggers = False
        self.found = False
        self.zombie = False

    @property
    def needs_crossing(self):
        return self.hw_changed or self.had_triggers or self.zombie


class ClearOutcome:
    __slots__ = ("hw_changed", "cleared")

    def __init__(self):
        self.hw_changed = False
        self.cleared = 0

    @property
    def needs_crossing(self):
        return self.hw_changed or self.cleared > 0


class KivatiKernel:
    """Kernel-side Kivati state machine."""

    def __init__(self, config, ar_table, stats, log, faults=None,
                 degrade=None, breaker=None, pressure=None):
        self.config = config
        self.ar_table = ar_table
        self.stats = stats
        self.log = log
        self.machine = None
        self.slots = [KernelSlot(i) for i in range(config.num_watchpoints)]
        self.epoch = 0
        self.ar_tables = {}      # tid -> {ar_id -> ActiveAR}
        self.zombies = {}        # (tid, ar_id) -> ZombieAR
        self.suspensions = {}    # tid -> Suspension (+ slot index inside)
        self.susp_slot = {}      # tid -> slot index
        self.sync_waiters = []   # (epoch, tid)
        # robustness plane: fault injector, degradation event log and the
        # per-AR fail-open circuit breaker (all optional)
        self.faults = faults
        self.degrade = degrade if degrade is not None else DegradationLog()
        self.breaker = breaker
        # optional repro.pressure.PressurePlane (overload control:
        # slot arbitration, AR quarantine, backpressure)
        self.pressure = pressure
        self._next_leak_scan = 0
        # optional repro.journal.JournalRecorder (durable incident record)
        self.journal = config.journal
        # optional repro.obs.VMProfiler: suspension-queue depth samples;
        # observational only, gated on a single is-None predicate
        self.profiler = (config.obs.profiler
                         if getattr(config, "obs", None) is not None
                         else None)

    def attach(self, machine):
        self.machine = machine

    def _journal(self, time_ns, tid, kind, **details):
        if self.journal is not None:
            self.journal.emit(time_ns, tid, kind, **details)

    # ------------------------------------------------------------------
    # graceful degradation bookkeeping
    # ------------------------------------------------------------------

    def _record_degradation(self, kind, time_ns, tid=None, **detail):
        self.stats.degradations += 1
        self.degrade.add(DegradationRecord(kind, time_ns, tid, **detail))
        if self.config.trace is not None:
            # the degradation kind travels as "what": emit()'s third
            # positional is already named kind
            self.config.trace.emit(time_ns, tid if tid is not None else -1,
                                   "degrade", what=kind, **detail)
        self._journal(time_ns, tid if tid is not None else -1, "degrade",
                      what=kind, **detail)

    def _record_breaker_trip(self, ar_id, tid, now, backoff_ns):
        self.stats.breaker_trips += 1
        self._record_degradation("breaker-open", now, tid=tid, ar=ar_id,
                                 backoff_ns=backoff_ns)

    # ------------------------------------------------------------------
    # overload control plane (repro.pressure)
    # ------------------------------------------------------------------

    def _note_ar_pressure(self, ar_id, tid, now):
        """A breaker trip or suspension timeout hit ``ar_id``: feed the
        quarantine state machine and journal whatever it decides."""
        if self.pressure is None:
            return
        action = self.pressure.note_pressure(ar_id, now)
        if action is None:
            return
        self._quarantine_action(action, ar_id, tid, now)

    def _quarantine_action(self, action, ar_id, tid, now):
        what, n = action
        if what == "enter":
            self.stats.quarantined_ars += 1
            self._record_degradation("quarantine-enter", now, tid=tid,
                                     ar=ar_id, n=n)
        elif what == "release":
            self.stats.quarantine_releases += 1
        else:
            self.stats.quarantine_adaptations += 1
        self._journal(now, tid if tid is not None else -1, "quarantine",
                      action=what, ar=ar_id, n=n)

    def _arbitrate_slot(self, core, tid, info, now):
        """All watchpoint registers are busy: let the arbiter decide
        whether the incoming AR outranks a current tenant. Returns the
        freed slot on preemption, None on denial."""
        plane = self.pressure
        incoming = plane.priority(info.ar_id)
        victim, victim_prio = plane.choose_victim(self.slots)
        if victim is None or incoming <= victim_prio:
            self.stats.arbiter_denials += 1
            plane.note(now, "arbiter", "deny", ar=info.ar_id,
                       prio=incoming)
            self._record_degradation("arbiter-deny", now, tid=tid,
                                     ar=info.ar_id, prio=incoming)
            self._journal(now, tid, "arbiter", action="deny",
                          ar=info.ar_id, prio=incoming,
                          victim_prio=victim_prio)
            return None
        self.stats.arbiter_preemptions += 1
        victim_ars = [ar.ar_id for ar in victim.ars]
        plane.note(now, "arbiter", "preempt", ar=info.ar_id,
                   prio=incoming, slot=victim.index)
        self._record_degradation("arbiter-preempt", now, tid=tid,
                                 ar=info.ar_id, prio=incoming,
                                 victim_slot=victim.index,
                                 victim_ars=tuple(victim_ars),
                                 victim_prio=victim_prio)
        self._journal(now, tid, "arbiter", action="preempt",
                      ar=info.ar_id, prio=incoming, slot=victim.index,
                      gen=victim.gen, victim_ars=tuple(victim_ars),
                      victim_prio=victim_prio)
        # the victims degrade to fail-open zombies: detection of their
        # in-flight windows survives (flagged unprevented), but this is
        # the plane's choice, not the ARs' failure — no breaker or
        # quarantine strike is charged
        self._zombify_and_free(victim, now, core=core, feed=False)
        return victim

    def _scan_for_leaks(self, core):
        """Slot-leak watchdog: a lazily-freed slot (O2) is reclaimed on
        the next begin_atomic or trap — but a slot whose variable never
        sees demand again stays armed forever, burning a debug register.
        Periodically reclaim any lazily-freed slot past the age bound."""
        now = core.clock
        if now < self._next_leak_scan:
            return
        self._next_leak_scan = now + self.pressure.policy.leak_scan_ns
        self._reclaim_leaks(now, core)

    def shutdown_leak_sweep(self):
        """Final watchdog pass at run end: the periodic scan only runs on
        kernel entry, so a slot that ages past the bound *after* the last
        syscall on its core would otherwise stay leaked forever."""
        if self.pressure is not None:
            self._reclaim_leaks(self.machine.now(), None)

    def _reclaim_leaks(self, now, core):
        policy = self.pressure.policy
        for slot in self.slots:
            if (slot.enabled and slot.lazily_freed
                    and slot.freed_at is not None
                    and now - slot.freed_at >= policy.leak_age_ns):
                self.stats.slots_leaked += 1
                self.stats.slots_reclaimed += 1
                self.pressure.note(now, "watchdog", "leak-reclaim",
                                   slot=slot.index)
                self._journal(now, -1, "pressure", action="leak-reclaim",
                              slot=slot.index, gen=slot.gen,
                              age_ns=now - slot.freed_at)
                self._free_slot(slot, core)

    # ------------------------------------------------------------------
    # cross-core propagation (Section 3.2)
    # ------------------------------------------------------------------

    IPI_COST = 800  # ns charged to the initiating core per eager sync

    def _bump_epoch(self, core=None):
        self.epoch += 1
        if core is not None:
            core.dr.adopt(self.slots, self.epoch, faults=self.faults)
        if self.config.opt is not None and getattr(self.config,
                                                   "eager_crosscore", False):
            # ablation: interrupt every other core right away (the paper
            # explicitly avoids this; the cost shows why)
            for other in self.machine.cores:
                if other.dr.synced_epoch < self.epoch:
                    other.dr.adopt(self.slots, self.epoch, faults=self.faults)
            if core is not None:
                core.clock += self.IPI_COST

    def on_kernel_entry(self, core):
        fi = self.faults
        if core.dr.synced_epoch < self.epoch:
            if fi is not None and fi.fires("kernel.crosscore.delay",
                                           core.clock, core=core.index):
                # propagation delayed this entry; the next kernel entry
                # on this core retries
                pass
            elif fi is not None and fi.fires("kernel.crosscore.lost",
                                             core.clock, core=core.index):
                # the update is lost: the core believes it synced but
                # kept stale registers; only the consistency check on a
                # later entry can repair it
                core.dr.synced_epoch = self.epoch
            else:
                core.dr.adopt(self.slots, self.epoch, faults=fi)
        elif fi is not None and not core.dr.consistent_with(self.slots):
            # degradation policy: the core's debug registers drifted from
            # the kernel's logical state (failed slot arm, lost
            # propagation) — re-adopt and log the repair
            core.dr.adopt(self.slots, self.epoch)
            self.stats.replica_resyncs += 1
            self._record_degradation("replica-resync", core.clock,
                                     core=core.index)
            if self.config.trace is not None:
                self.config.trace.emit(core.clock, -1, "resync",
                                       core=core.index)
            self._journal(core.clock, -1, "resync", core=core.index)
        if self.pressure is not None:
            self._scan_for_leaks(core)
        if self.sync_waiters:
            self._check_sync_waiters()

    def _check_sync_waiters(self):
        remaining = []
        for epoch, tid in self.sync_waiters:
            if self._all_busy_cores_synced(epoch):
                self.machine.wake_thread(tid)
            else:
                remaining.append((epoch, tid))
        self.sync_waiters = remaining

    def _all_busy_cores_synced(self, epoch):
        for core in self.machine.cores:
            if core.thread is not None and core.dr.synced_epoch < epoch:
                return False
        return True

    def _maybe_block_for_sync(self, core, thread):
        """Block the begin_atomic'ing thread until all busy cores have
        adopted the new watchpoint state (Section 3.2)."""
        if getattr(self.config, "eager_crosscore", False):
            return False  # the IPI already synchronized everyone
        if self._all_busy_cores_synced(self.epoch):
            return False
        self.sync_waiters.append((self.epoch, thread.tid))
        self.machine.block_current(core, ThreadState.BLOCKED_WPSYNC)
        return True

    # ------------------------------------------------------------------
    # slot helpers
    # ------------------------------------------------------------------

    def _slot_watching(self, addr):
        for slot in self.slots:
            if slot.enabled and slot.addr <= addr < slot.addr + slot.size:
                return slot
        return None

    def _find_free_slot(self, core):
        for slot in self.slots:
            if not slot.enabled:
                return slot, False
        for slot in self.slots:
            if slot.lazily_freed:
                self.stats.lazy_reconciles += 1
                self._free_slot(slot, core)
                return slot, True
        return None, False

    def _free_slot(self, slot, core):
        """Disable a slot, waking suspended threads (trap-suspended threads
        are preferentially scheduled before begin-blocked ones)."""
        to_wake = sorted(
            slot.suspended,
            key=lambda s: 0 if s.reason == Suspension.REASON_TRAP else 1,
        )
        self._journal(core.clock if core is not None else self.machine.now(),
                      slot.owner_tid if slot.owner_tid is not None else -1,
                      "disarm", slot=slot.index, gen=slot.gen,
                      addr=slot.addr)
        slot.free()
        self._bump_epoch(core)
        for susp in to_wake:
            self._resume_suspended(susp, core)

    def _resume_suspended(self, susp, core):
        if self.faults is not None and self.faults.fires(
                "kernel.wakeup.lost",
                core.clock if core is not None else self.machine.now(),
                tid=susp.tid):
            # the wake-up is lost: leave the suspension record and its
            # timeout event intact so the timeout plane (or a later
            # watchdog pass) recovers the thread instead of hanging it
            return
        if susp.timeout_event is not None:
            self.machine.cancel_event(susp.timeout_event)
        self.suspensions.pop(susp.tid, None)
        self.susp_slot.pop(susp.tid, None)
        self.machine.wake_thread(susp.tid)
        if self.config.trace is not None:
            self.config.trace.emit(
                core.clock if core is not None else 0, susp.tid, "wake",
                reason=susp.reason)
        self._journal(core.clock if core is not None else self.machine.now(),
                      susp.tid, "wake", reason=susp.reason)
        self._release_containments(susp.tid, core)

    def _release_containments(self, tid, core):
        for slot in self.slots:
            if slot.containment_owner == tid:
                self._free_slot(slot, core)

    def _suspend(self, core, thread, slot, reason, retry_instr):
        # adaptive timeout: under scheduler overload a suspended thread
        # may not get a core within the nominal window, so every timeout
        # would fire spuriously; stretch with the measured latency EMA
        mult = 1
        if self.pressure is not None:
            mult = self.pressure.timeout_multiplier(
                self.machine.sched_latency_ema)
            if mult > 1:
                self.stats.timeout_extensions += 1
        timeout = core.clock + self.config.suspend_timeout_ns * mult
        tid = thread.tid
        event = self.machine.schedule_event(
            timeout, lambda m, t=tid: self._on_timeout(t)
        )
        susp = Suspension(thread.tid, reason, event)
        slot.suspended.append(susp)
        self.suspensions[thread.tid] = susp
        self.susp_slot[thread.tid] = slot.index
        self.stats.suspensions += 1
        if self.profiler is not None:
            self.profiler.note_suspend(len(self.suspensions))
        if self.config.trace is not None:
            self.config.trace.emit(core.clock, thread.tid, "suspend",
                                   reason=reason, slot=slot.index,
                                   addr=slot.addr)
        if self.pressure is not None:
            # the multiplier only rides along on pressure-enabled runs so
            # journals recorded before this plane existed replay unchanged
            self._journal(core.clock, thread.tid, "suspend", reason=reason,
                          slot=slot.index, gen=slot.gen, addr=slot.addr,
                          tmult=mult)
        else:
            self._journal(core.clock, thread.tid, "suspend", reason=reason,
                          slot=slot.index, gen=slot.gen, addr=slot.addr)
        self.machine.block_current(core, ThreadState.SUSPENDED,
                                   retry_instr=retry_instr)
        # suspension watchdog: two ARs suspending each other's threads
        # form a waits-for cycle that nothing but the 10 ms timeout would
        # break; detect it now and break it immediately
        if self.config.watchdog and len(self.suspensions) > 1:
            cycle = self._find_suspension_cycle(tid)
            if cycle is not None:
                self._watchdog_break(tid, cycle, core)

    def _find_suspension_cycle(self, start_tid):
        """Follow the waits-for chain (a suspended thread waits on the
        owner of the slot it is suspended on); returns the tid chain if
        it loops back to ``start_tid``, else None."""
        chain = [start_tid]
        seen = {start_tid}
        tid = start_tid
        while True:
            slot_index = self.susp_slot.get(tid)
            if slot_index is None:
                return None  # waits on a running thread: no cycle
            owner = self.slots[slot_index].owner_tid
            if owner is None or (owner in seen and owner != start_tid):
                return None
            if owner == start_tid:
                return chain
            seen.add(owner)
            chain.append(owner)
            tid = owner

    def _watchdog_break(self, tid, cycle, core):
        """Break a suspension cycle by force-releasing its newest member
        (same teardown as a timeout, attributed to the watchdog)."""
        susp = self.suspensions.pop(tid, None)
        slot_index = self.susp_slot.pop(tid, None)
        if susp is None or slot_index is None:
            return
        if susp.timeout_event is not None:
            self.machine.cancel_event(susp.timeout_event)
        now = core.clock
        self.stats.watchdog_breaks += 1
        self._record_degradation("watchdog-break", now, tid=tid,
                                 cycle=tuple(cycle), slot=slot_index)
        if self.config.trace is not None:
            self.config.trace.emit(now, tid, "watchdog", cycle=tuple(cycle))
        slot = self.slots[slot_index]
        self._journal(now, tid, "watchdog", cycle=tuple(cycle),
                      slot=slot_index, gen=slot.gen)
        if susp in slot.suspended:
            slot.suspended.remove(susp)
        self.machine.wake_thread(tid)
        self._release_containments(tid, core)
        self._zombify_and_free(slot, now, core=core)

    def _on_timeout(self, tid):
        """10 ms suspension timeout (Section 3.3): resume the thread, move
        the slot's ARs to zombies and free the watchpoint."""
        susp = self.suspensions.pop(tid, None)
        slot_index = self.susp_slot.pop(tid, None)
        if susp is None or slot_index is None:
            return
        thread = self.machine.threads.get(tid)
        if thread is None or thread.state != ThreadState.SUSPENDED:
            return
        self.stats.suspend_timeouts += 1
        now = self.machine.now()
        if self.config.trace is not None:
            self.config.trace.emit(now, tid, "timeout", slot=slot_index)
        slot = self.slots[slot_index]
        self._journal(now, tid, "timeout", slot=slot_index, gen=slot.gen,
                      stale=susp not in slot.suspended)
        if susp not in slot.suspended:
            # the slot was freed or reused while this thread stayed
            # suspended (e.g. its wake-up was lost): recover the thread
            # but leave the slot's current tenants alone
            self._record_degradation("suspend-timeout", now, tid=tid,
                                     slot=slot_index, stale=True)
            self.machine.wake_thread(tid)
            self._release_containments(tid, None)
            return
        slot.suspended.remove(susp)
        self._record_degradation("suspend-timeout", now, tid=tid,
                                 slot=slot_index)
        self.machine.wake_thread(tid)
        self._release_containments(tid, None)
        self._zombify_and_free(slot, now)

    def _zombify_and_free(self, slot, now, core=None, feed=True):
        """Move all ARs on ``slot`` to zombies (their late end_atomic
        still records violations, flagged unprevented), feed the breaker
        and quarantine planes (unless ``feed`` is False — arbiter
        preemption is not the AR's failure), and free the watchpoint."""
        for ar in list(slot.ars):
            self.zombies[(ar.tid, ar.ar_id)] = ZombieAR(
                ar.info, ar.tid, ar.addr, slot.triggers, ar.begin_time
            )
            self._journal(now, ar.tid, "zombify", ar=ar.ar_id,
                          slot=slot.index, gen=slot.gen,
                          begin_time=ar.begin_time)
            table = self.ar_tables.get(ar.tid)
            if table is not None:
                table.pop(ar.ar_id, None)
            if feed and self.breaker is not None:
                backoff = self.breaker.record_timeout(ar.ar_id, now)
                if backoff is not None:
                    self._record_breaker_trip(ar.ar_id, ar.tid, now, backoff)
            if feed:
                # a blown suspension window is a pressure strike whether
                # or not it also tripped the breaker
                self._note_ar_pressure(ar.ar_id, ar.tid, now)
        self._free_slot(slot, core)

    # ------------------------------------------------------------------
    # begin_atomic (Sections 3.2 + 3.3)
    # ------------------------------------------------------------------

    def begin_atomic(self, core, thread, info, addr):
        out = BeginOutcome()
        opt = self.config.opt
        tid = thread.tid
        table = self.ar_tables.setdefault(tid, {})

        # re-begin of an AR already active in this thread: refresh it
        if info.ar_id in table:
            self._detach_ar(table.pop(info.ar_id), core, evaluate=False)

        slot = self._slot_watching(addr)
        if slot is not None and slot.lazily_freed:
            # second optimization: the slot should have been freed; this
            # begin_atomic reconciles it
            self.stats.lazy_reconciles += 1
            self._free_slot(slot, core)
            out.hw_changed = True
            slot = None

        if slot is not None and slot.containment_owner is not None:
            if tid != slot.containment_owner:
                self._suspend(core, thread, slot, Suspension.REASON_BEGIN,
                              retry_instr=True)
                out.suspended = True
            else:
                self.stats.missed_ars += 1
                out.missed = True
                self._journal(core.clock, tid, "miss", ar=info.ar_id,
                              reason="containment")
            return out

        if slot is not None and slot.owner_tid != tid:
            # this thread is remote with respect to another thread's AR:
            # delay its first access until those ARs complete. The paper
            # detects remote accesses "whether via a watchpoint or a
            # begin_atomic", so the imminent access is recorded as a
            # trigger for the serializability check at end_atomic.
            if self.config.prevention_enabled:
                # The remote's begin_atomic hands the kernel its full AR
                # description, so the imminent access pattern (first kind
                # plus the registered second kinds) is recorded
                # conservatively for the serializability check.
                kinds = [info.first_kind]
                for kind in _sorted_kinds(set(info.second_kinds.values())):
                    if kind not in kinds:
                        kinds.append(kind)
                slot.triggers.append(Trigger(
                    tid, tuple(kinds), None,
                    "begin_atomic(ar %d) in %s" % (info.ar_id, info.func),
                    core.clock, True,
                ))
                self._journal(core.clock, tid, "trigger", slot=slot.index,
                              gen=slot.gen, kinds=tuple(kinds), pc=None,
                              undone=True, via_begin=True,
                              location="begin_atomic(ar %d) in %s"
                              % (info.ar_id, info.func))
                self._suspend(core, thread, slot, Suspension.REASON_BEGIN,
                              retry_instr=True)
                out.suspended = True
                return out
            self.stats.missed_ars += 1
            out.missed = True
            self._journal(core.clock, tid, "miss", ar=info.ar_id,
                          reason="remote-owner")
            return out

        now = core.clock
        depth = thread.call_depth
        pending = (info.first_kind == AccessKind.WRITE
                   and not opt.o3_local_disable)

        if slot is not None:
            # already monitored by this thread: join the slot
            ar = ActiveAR(info, tid, addr, depth, now, slot.index, pending)
            slot.ars.append(ar)
            table[info.ar_id] = ar
            slot.last_use_ns = now
            slot.captured_value = self.machine.read_raw(addr)
            if slot.recompute_kinds(opt.o3_local_disable):
                self._bump_epoch(core)
                out.hw_changed = True
            out.attached = True
            out.monitored = True
            self.stats.monitored_ars += 1
            self._journal(now, tid, "begin", ar=info.ar_id, slot=slot.index,
                          gen=slot.gen, addr=addr, first=info.first_kind,
                          var=info.var, joined=True)
            return out

        free, reused = self._find_free_slot(core)
        if (free is None and self.pressure is not None
                and self.pressure.policy.arbiter):
            free = self._arbitrate_slot(core, tid, info, now)
        if free is None:
            # all watchpoint registers in use: log that this AR cannot be
            # monitored (Table 8)
            self.stats.missed_ars += 1
            out.missed = True
            self._journal(now, tid, "miss", ar=info.ar_id, reason="no-slot")
            return out

        ar = ActiveAR(info, tid, addr, depth, now, free.index, pending)
        free.enabled = True
        free.gen += 1
        free.last_use_ns = now
        self.stats.watchpoint_arms += 1
        free.addr = addr
        free.size = info.size
        free.owner_tid = tid
        free.ars = [ar]
        free.triggers = []
        free.suspended = []
        free.lazily_freed = False
        free.captured_value = self.machine.read_raw(addr)
        free.recompute_kinds(opt.o3_local_disable)
        table[info.ar_id] = ar
        self._bump_epoch(core)
        out.hw_changed = True
        out.monitored = True
        self.stats.monitored_ars += 1
        self._journal(now, tid, "arm", slot=free.index, gen=free.gen,
                      addr=addr, size=info.size,
                      read=free.watch_read, write=free.watch_write)
        self._journal(now, tid, "begin", ar=info.ar_id, slot=free.index,
                      gen=free.gen, addr=addr, first=info.first_kind,
                      var=info.var, joined=False)

        # block until other busy cores adopt the new watchpoint state
        self._maybe_block_for_sync(core, thread)
        return out

    # ------------------------------------------------------------------
    # end_atomic
    # ------------------------------------------------------------------

    def end_atomic(self, core, thread, ar_id, second_kind):
        out = EndOutcome()
        opt = self.config.opt
        tid = thread.tid
        table = self.ar_tables.get(tid, {})
        ar = table.pop(ar_id, None)

        if ar is None:
            zombie = self.zombies.pop((tid, ar_id), None)
            if zombie is not None:
                # the AR timed out earlier: record the violation but note
                # it was not prevented
                out.zombie = True
                out.found = True
                self._journal(core.clock, tid, "end", ar=ar_id,
                              second=second_kind, zombie=True,
                              begin_time=zombie.begin_time)
                self._evaluate(zombie.info, tid, zombie.addr,
                               zombie.triggers, zombie.begin_time,
                               second_kind, core, force_unprevented=True)
            return out

        out.found = True
        if self.pressure is not None:
            # a monitored window of a quarantined AR completed without
            # blowing its suspension: additive-decrease its sampling N
            action = self.pressure.note_clean_end(ar_id, core.clock)
            if action is not None:
                self._quarantine_action(action, ar_id, tid, core.clock)
        if ar.slot_index is None:
            return out
        slot = self.slots[ar.slot_index]

        relevant = [t for t in slot.triggers
                    if t.time >= ar.begin_time and t.tid != tid]
        self._journal(core.clock, tid, "end", ar=ar_id, slot=slot.index,
                      gen=slot.gen, second=second_kind, zombie=False,
                      begin_time=ar.begin_time,
                      had_triggers=bool(relevant))
        if relevant:
            out.had_triggers = True
            self._evaluate(ar.info, tid, ar.addr, relevant, ar.begin_time,
                           second_kind, core)

        if ar in slot.ars:
            slot.ars.remove(ar)
        if not slot.ars:
            if slot.suspended or not opt.o2_lazy_free:
                self._free_slot(slot, core)
                out.hw_changed = True
            else:
                # second optimization: leave the hardware armed; note in the
                # (shared) metadata that the watchpoint is no longer active
                slot.lazily_freed = True
                slot.freed_at = core.clock
                slot.triggers = []
                self.stats.lazy_frees += 1
        else:
            if not opt.o2_lazy_free:
                if slot.recompute_kinds(opt.o3_local_disable):
                    self._bump_epoch(core)
                    out.hw_changed = True
            # with O2, keep the most aggressive settings until reconciled
        return out

    # ------------------------------------------------------------------
    # clear_ar
    # ------------------------------------------------------------------

    def clear_ar(self, core, thread):
        out = ClearOutcome()
        opt = self.config.opt
        tid = thread.tid
        table = self.ar_tables.get(tid)
        if not table:
            return out
        depth = thread.call_depth
        doomed = [ar for ar in table.values() if ar.depth == depth]
        for ar in doomed:
            table.pop(ar.ar_id, None)
            if self._detach_ar(ar, core, evaluate=False):
                out.hw_changed = True
            out.cleared += 1
        return out

    def _detach_ar(self, ar, core, evaluate):
        """Remove an ActiveAR from its slot without violation evaluation
        (clear_ar semantics). Returns True if hardware state changed."""
        self._journal(core.clock if core is not None else self.machine.now(),
                      ar.tid, "clear", ar=ar.ar_id)
        if ar.slot_index is None:
            return False
        slot = self.slots[ar.slot_index]
        if ar not in slot.ars:
            return False
        slot.ars.remove(ar)
        opt = self.config.opt
        if not slot.ars:
            if slot.suspended or not opt.o2_lazy_free:
                self._free_slot(slot, core)
                return True
            slot.lazily_freed = True
            slot.freed_at = (core.clock if core is not None
                             else self.machine.now())
            slot.triggers = []
            self.stats.lazy_frees += 1
            return False
        if not opt.o2_lazy_free and slot.recompute_kinds(opt.o3_local_disable):
            self._bump_epoch(core)
            return True
        return False

    # ------------------------------------------------------------------
    # shadow capture (third optimization)
    # ------------------------------------------------------------------

    def shadow_store(self, thread, ar_id, addr):
        """Record the value after a local write via the shared page.

        With the third optimization, watchpoint delivery is suppressed for
        the owning thread, so the annotation pass replicates local shared
        writes into the page shared between the user library and the
        kernel; this keeps the undo value current (the base-mode
        equivalent is the local-trap refresh in the trap handler). The
        write is matched to a slot by address, which also covers local
        writes through pointer aliases."""
        for slot in self.slots:
            if (slot.enabled and not slot.lazily_freed
                    and slot.owner_tid == thread.tid
                    and slot.addr <= addr < slot.addr + slot.size):
                slot.captured_value = self.machine.read_raw(slot.addr)
                return

    # ------------------------------------------------------------------
    # watchpoint trap handler
    # ------------------------------------------------------------------

    def on_trap(self, core, thread, after_pc, hit_slots, accesses):
        """Handle a debug trap. With trap-after hardware ``after_pc`` is
        all we know besides the hit slot indices; the faulting instruction
        is recovered through the memory map."""
        self.on_kernel_entry(core)
        machine = self.machine
        prevention = self.config.prevention_enabled
        trap_before = machine.trap_before

        for idx in hit_slots:
            slot = self.slots[idx]
            if not slot.enabled:
                # the core's registers were stale (lazy propagation)
                self.stats.stale_traps += 1
                continue
            if not any(slot.addr <= a < slot.addr + slot.size
                       for a, _ in accesses):
                # the core's hardware slot still held a previous tenant's
                # address (lazy propagation): the trapping access does not
                # touch what this logical slot now watches, so attributing
                # it to the current tenant would fabricate a remote access
                self.stats.stale_traps += 1
                continue
            if slot.lazily_freed:
                # second optimization reconciliation on trap: free now and
                # do not log a violation
                self.stats.lazy_reconciles += 1
                self._free_slot(slot, core)
                continue
            if slot.containment_owner is not None:
                if thread.tid == slot.containment_owner:
                    continue
                if thread.state == ThreadState.RUNNING:
                    self._suspend(core, thread, slot, Suspension.REASON_TRAP,
                                  retry_instr=not trap_before)
                continue
            if slot.owner_tid == thread.tid:
                # Local thread's own access. Refresh the undo value so a
                # later rollback restores the value after the *latest*
                # local access, never clobbering local writes. Also
                # completes the base-mode first-write capture.
                self.stats.local_traps += 1
                slot.last_use_ns = core.clock
                slot.captured_value = machine.read_raw(slot.addr)
                had_pending = False
                for ar in slot.ars:
                    if ar.pending_capture:
                        ar.pending_capture = False
                        had_pending = True
                if had_pending:
                    if slot.recompute_kinds(self.config.opt.o3_local_disable):
                        self._bump_epoch(core)
                continue

            # ---- remote access ------------------------------------------
            self.stats.remote_traps += 1
            slot.last_use_ns = core.clock
            undone = False
            fpc = None
            resolved = False
            if trap_before:
                kinds = _sorted_kinds(
                    {AccessKind.WRITE if w else AccessKind.READ
                     for a, w in accesses
                     if slot.addr <= a < slot.addr + slot.size}
                ) or (AccessKind.READ,)
            else:
                stack_top = None
                if after_pc in machine.program.memory_map.subroutine_entries:
                    stack_top = machine.read_raw(thread.sp)
                fpc = machine.program.memory_map.faulting_pc(after_pc,
                                                             stack_top)
                resolved = (fpc is not None
                            and 0 <= fpc < len(machine.program.instrs))
                if not resolved:
                    self.stats.unresolved_pcs += 1
                    kinds = _sorted_kinds(
                        {AccessKind.WRITE if w else AccessKind.READ
                         for a, w in accesses
                         if slot.addr <= a < slot.addr + slot.size}
                    ) or (AccessKind.READ,)
                else:
                    kinds = classify_access_kinds(
                        machine.program.instrs[fpc], thread, slot.addr)
            # duplicated/late delivery: hardware can re-report a trap the
            # kernel already handled (and possibly already undid); a
            # second undo of the same instruction would corrupt state, so
            # dedup before acting
            prev = slot.triggers[-1] if slot.triggers else None
            if (prev is not None and prev.tid == thread.tid
                    and prev.pc == fpc
                    and 0 <= core.clock - prev.time
                    <= machine.costs.trap * 2):
                self.stats.duplicate_traps_ignored += 1
                self._record_degradation("duplicate-trap", core.clock,
                                         tid=thread.tid, pc=fpc)
                continue
            if trap_before:
                if prevention and thread.state == ThreadState.RUNNING:
                    # access not yet committed: simply delay the thread
                    self._suspend(core, thread, slot, Suspension.REASON_TRAP,
                                  retry_instr=True)
                    undone = True
            elif resolved:
                instr = machine.program.instrs[fpc]
                if (prevention and thread.state == ThreadState.RUNNING
                        and instr.op not in SYNC_OPS):
                    undone = self._try_undo(core, thread, fpc, slot)
                elif prevention and instr.op in SYNC_OPS:
                    self.stats.unable_to_reorder += 1
            if self.breaker is not None:
                for ar in slot.ars:
                    backoff = self.breaker.record_trap(ar.ar_id, core.clock)
                    if backoff is not None:
                        self._record_breaker_trip(ar.ar_id, ar.tid,
                                                  core.clock, backoff)
                        self._note_ar_pressure(ar.ar_id, ar.tid, core.clock)
            slot.triggers.append(
                Trigger(thread.tid, kinds, fpc,
                        machine.program.location(fpc) if fpc is not None
                        else "pc=?", core.clock, undone)
            )
            self._journal(core.clock, thread.tid, "trigger",
                          slot=slot.index, gen=slot.gen, kinds=kinds,
                          pc=fpc, undone=undone, via_begin=False,
                          location=machine.program.location(fpc)
                          if fpc is not None else "pc=?")
        return 0

    def _try_undo(self, core, thread, fpc, slot):
        """Undo + suspend a remote access (trap-after prevention path)."""
        machine = self.machine
        if self.faults is not None and self.faults.fires(
                "kernel.undo.fail", core.clock, tid=thread.tid, pc=fpc):
            # forced rollback failure: fail open — the access stays
            # committed, the thread continues, and any violation will be
            # recorded as not prevented
            self.stats.undo_faults_injected += 1
            self.stats.unable_to_reorder += 1
            self._record_degradation("undo-failed", core.clock,
                                     tid=thread.tid, pc=fpc)
            return False
        instr = machine.program.instrs[fpc]
        # the leak-containment case needs a spare watchpoint; check before
        # undoing so failure leaves the access committed (paper: "allows
        # the remote thread to continue and logs that it was unable to
        # reorder")
        if instr.op is Op.CPY:
            src = thread.regs[instr.b]
            dst = thread.regs[instr.a]
            if src == slot.addr and dst != slot.addr:
                free = None
                for s in self.slots:
                    if not s.enabled:
                        free = s
                        break
                if free is None:
                    self.stats.unable_to_reorder += 1
                    return False
        outcome = undo_remote_access(machine, thread, fpc, slot)
        if not outcome.ok:
            self.stats.unable_to_reorder += 1
            return False
        self.stats.undos += 1
        if self.config.trace is not None:
            self.config.trace.emit(core.clock, thread.tid, "undo",
                                   pc=fpc, addr=slot.addr,
                                   loc=machine.program.location(fpc))
        self._journal(core.clock, thread.tid, "undo", pc=fpc,
                      addr=slot.addr, slot=slot.index, gen=slot.gen,
                      loc=machine.program.location(fpc))
        if outcome.needs_containment_addr is not None:
            free = None
            for s in self.slots:
                if not s.enabled:
                    free = s
                    break
            if free is not None:
                free.enabled = True
                free.gen += 1
                self.stats.watchpoint_arms += 1
                free.addr = outcome.needs_containment_addr
                free.size = 1
                free.watch_read = True
                free.watch_write = True
                free.containment_owner = thread.tid
                free.owner_tid = thread.tid
                self._bump_epoch(core)
                self.stats.containments += 1
                self._journal(core.clock, thread.tid, "arm",
                              slot=free.index, gen=free.gen, addr=free.addr,
                              size=1, read=True, write=True,
                              containment=True)
        self._suspend(core, thread, slot, Suspension.REASON_TRAP,
                      retry_instr=False)
        return True

    # ------------------------------------------------------------------
    # violation evaluation
    # ------------------------------------------------------------------

    def _evaluate(self, info, local_tid, addr, triggers, begin_time,
                  second_kind, core, force_unprevented=False):
        for trigger in triggers:
            if trigger.tid == local_tid or trigger.time < begin_time:
                continue
            for kind in trigger.kinds:
                if is_unserializable(info.first_kind, kind, second_kind):
                    prevented = trigger.undone and not force_unprevented
                    self.log.add(ViolationRecord(
                        ar_id=info.ar_id,
                        var=info.var,
                        func=info.func,
                        addr=addr,
                        local_tid=local_tid,
                        remote_tid=trigger.tid,
                        first_kind=info.first_kind,
                        remote_kind=kind,
                        second_kind=second_kind,
                        remote_pc=trigger.pc,
                        remote_location=trigger.location,
                        local_line_first=info.line,
                        local_line_second=min(info.second_lines.values())
                        if info.second_lines else info.line,
                        time_ns=core.clock if core is not None else trigger.time,
                        prevented=prevented,
                    ))
                    self.stats.violations += 1
                    if not prevented:
                        self.stats.unprevented_violations += 1
                    if self.pressure is not None:
                        # violation history is the arbiter's priority
                        # signal: ARs that produce violations are the
                        # ones worth a hardware watchpoint
                        self.pressure.note_violation(info.ar_id)
                    if self.config.trace is not None:
                        self.config.trace.emit(
                            core.clock if core is not None else trigger.time,
                            local_tid, "violation", ar=info.ar_id,
                            var=info.var, remote_tid=trigger.tid,
                            prevented=prevented)
                    self._journal(
                        core.clock if core is not None else trigger.time,
                        local_tid, "violation", ar=info.ar_id, var=info.var,
                        addr=addr, remote_tid=trigger.tid,
                        first=info.first_kind, remote=kind,
                        second=second_kind, prevented=prevented)
                    break
