"""Atomic-region registry.

One AR corresponds to one *first access instance* found by the pairing
DFA, together with every second access it pairs with. The begin_atomic
site is the statement containing the first access; each second access
site receives an end_atomic carrying the same AR id and its own second
access type (the paper's end_atomic arguments).
"""

from repro.analysis.watchtype import union_watch_kinds


class ARInfo:
    """Static description of one atomic region."""

    __slots__ = (
        "ar_id",
        "func",
        "var",
        "first_kind",
        "watch_read",
        "watch_write",
        "size",
        "begin_uid",
        "second_kinds",
        "line",
        "second_lines",
        "is_sync",
        "lvalue",
    )

    def __init__(self, ar_id, func, var, first_kind, begin_uid, second_kinds,
                 line, second_lines, is_sync, lvalue, size=1):
        self.ar_id = ar_id
        self.func = func
        self.var = var
        self.first_kind = first_kind
        self.begin_uid = begin_uid
        self.second_kinds = dict(second_kinds)  # stmt_uid -> AccessKind
        self.line = line
        self.second_lines = dict(second_lines)  # stmt_uid -> line
        self.is_sync = is_sync
        self.lvalue = lvalue
        self.size = size
        self.watch_read, self.watch_write = union_watch_kinds(
            first_kind, self.second_kinds.values()
        )

    @property
    def watches_both(self):
        return self.watch_read and self.watch_write

    def second_kind_at(self, stmt_uid):
        return self.second_kinds.get(stmt_uid)

    def describe(self):
        kinds = "/".join(str(k) for k in set(self.second_kinds.values()))
        watch = ("R" if self.watch_read else "") + ("W" if self.watch_write else "")
        return "AR %d: %s in %s, first=%s seconds=%s watch=%s line %d%s" % (
            self.ar_id,
            self.var,
            self.func,
            self.first_kind,
            kinds,
            watch,
            self.line,
            " [sync]" if self.is_sync else "",
        )

    def __repr__(self):
        return "ARInfo(%d, %s %s->%s)" % (
            self.ar_id,
            self.var,
            self.first_kind,
            "/".join(str(k) for k in set(self.second_kinds.values())) or "?",
        )


def build_ar_infos(func_name, pair_result, lsv, start_id,
                   extra_sync_vars=()):
    """Group pairs by first access into ARInfo records.

    ``extra_sync_vars`` are additional variable names to treat as
    synchronization variables (e.g. spin flags found by the annotator's
    heuristic). Returns (list of ARInfo, next free ar_id).
    """
    sync_names = set(lsv.sync_vars) | set(extra_sync_vars)
    by_first = {}
    for first_aid, second_aid in sorted(pair_result.pairs):
        by_first.setdefault(first_aid, []).append(second_aid)

    infos = []
    ar_id = start_id
    for first_aid in sorted(by_first):
        first = pair_result.accesses[first_aid]
        # if a statement touches the variable more than once, the first
        # (lowest-order) access is the one that closes the AR
        per_uid = {}
        for second_aid in by_first[first_aid]:
            second = pair_result.accesses[second_aid]
            cur = per_uid.get(second.stmt_uid)
            if cur is None or second.order < cur[0]:
                per_uid[second.stmt_uid] = (second.order, second.kind,
                                            second.line)
        second_kinds = {uid: kind for uid, (_, kind, _) in per_uid.items()}
        second_lines = {uid: line for uid, (_, _, line) in per_uid.items()}
        base_var = first.var.split("[")[0].lstrip("*")
        infos.append(
            ARInfo(
                ar_id=ar_id,
                func=func_name,
                var=first.var,
                first_kind=first.kind,
                begin_uid=first.stmt_uid,
                second_kinds=second_kinds,
                line=first.line,
                second_lines=second_lines,
                is_sync=base_var in sync_names,
                lvalue=first.lvalue,
            )
        )
        ar_id += 1
    return infos, ar_id
