"""Annotation insertion — the output stage of the static annotator.

Produces an annotated AST with:

- ``begin_atomic(ar_id, &var)`` immediately before the statement that
  contains an AR's first access,
- ``end_atomic(ar_id)`` immediately after each statement containing one
  of its second accesses,
- a shadow-store after first-write statements (used only when the third
  optimization is enabled at run time),
- ``clear_ar()`` at every subroutine exit.
"""

import copy as _copy

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.typecheck import check
from repro.analysis.arinfo import build_ar_infos
from repro.analysis.cfg import build_cfg
from repro.analysis.lsv import compute_lsv
from repro.analysis.normalize import TEMP_PREFIX, normalize_program
from repro.analysis.pairs import find_pairs
from repro.minic.ast import AccessKind


class _ShadowSite:
    __slots__ = ("var", "lvalue")

    def __init__(self, var, lvalue):
        self.var = var
        self.lvalue = lvalue


class AnnotationResult:
    """Everything the annotator produced for one program."""

    __slots__ = ("ast", "pinfo", "ar_table", "lsvs", "sync_ar_ids",
                 "ar_ids_by_func", "locks", "guards", "prune",
                 "footprints", "func_footprints", "conflicts")

    def __init__(self, ast_, pinfo, ar_table, lsvs, sync_ar_ids,
                 ar_ids_by_func, locks=None, guards=None, prune=None,
                 footprints=None, func_footprints=None, conflicts=None):
        self.ast = ast_
        self.pinfo = pinfo
        self.ar_table = ar_table          # ar_id -> ARInfo
        self.lsvs = lsvs                  # func name -> LSVResult
        self.sync_ar_ids = sync_ar_ids    # frozenset of AR ids on sync vars
        self.ar_ids_by_func = ar_ids_by_func
        self.locks = locks                # locks.LockAnalysis
        self.guards = guards              # guarded.GuardReport
        self.prune = prune                # prune.PruneResult
        self.footprints = footprints or {}        # ar_id -> Footprint
        self.func_footprints = func_footprints or {}  # name -> Footprint
        self.conflicts = conflicts        # conflict.ConflictGraph

    @property
    def num_ars(self):
        return len(self.ar_table)

    @property
    def static_safe_ar_ids(self):
        """AR ids the lock-discipline analysis proved safe to skip."""
        if self.prune is None:
            return frozenset()
        return self.prune.static_safe_ids


def _copy_lvalue(expr):
    """Deep-copy an lvalue expression, giving fresh uids."""
    if isinstance(expr, ast.Var):
        return ast.Var(expr.name, expr.line, expr.col)
    if isinstance(expr, ast.Deref):
        return ast.Deref(_copy_lvalue(expr.operand), expr.line, expr.col)
    if isinstance(expr, ast.Index):
        return ast.Index(
            _copy_lvalue(expr.base), _copy_expr(expr.index), expr.line, expr.col
        )
    raise TypeError("not an lvalue: %r" % expr)


def _copy_expr(expr):
    new = _copy.deepcopy(expr)
    for node in ast.walk(new):
        node.uid = ast.fresh_uid()
    return new


def _insert_annotations(block, begins, ends, shadows):
    """Rewrite a block, inserting annotation statements around the
    statements named in the maps (stmt uid -> list of ARInfo)."""
    out = []
    for stmt in block.stmts:
        if isinstance(stmt, ast.Block):
            out.append(_insert_annotations(stmt, begins, ends, shadows))
            continue
        if isinstance(stmt, ast.If):
            stmt.then = _insert_annotations(_ensure_block(stmt.then), begins,
                                            ends, shadows)
            if stmt.els is not None:
                stmt.els = _insert_annotations(_ensure_block(stmt.els), begins,
                                               ends, shadows)
        elif isinstance(stmt, ast.While):
            stmt.body = _insert_annotations(_ensure_block(stmt.body), begins,
                                            ends, shadows)
        for info in begins.get(stmt.uid, ()):
            out.append(ast.BeginAtomic(info.ar_id, _copy_lvalue(info.lvalue),
                                       stmt.line, stmt.col))
        out.append(stmt)
        for site in shadows.get(stmt.uid, ()):
            out.append(ast.ShadowStore(0, _copy_lvalue(site.lvalue),
                                       stmt.line, stmt.col))
        for info in ends.get(stmt.uid, ()):
            out.append(ast.EndAtomic(info.ar_id, info.second_kind_at(stmt.uid),
                                     stmt.line, stmt.col))
    return ast.Block(out, block.line, block.col)


def _ensure_block(stmt):
    if isinstance(stmt, ast.Block):
        return stmt
    return ast.Block([stmt], stmt.line, stmt.col)


def _insert_clear_ars(block):
    """Insert clear_ar() before every return and at the end of the body."""
    def rewrite(blk):
        out = []
        for stmt in blk.stmts:
            if isinstance(stmt, ast.Return):
                out.append(ast.ClearAr(stmt.line, stmt.col))
                out.append(stmt)
                continue
            if isinstance(stmt, ast.Block):
                out.append(rewrite(stmt))
                continue
            if isinstance(stmt, ast.If):
                stmt.then = rewrite(_ensure_block(stmt.then))
                if stmt.els is not None:
                    stmt.els = rewrite(_ensure_block(stmt.els))
            elif isinstance(stmt, ast.While):
                stmt.body = rewrite(_ensure_block(stmt.body))
            out.append(stmt)
        return ast.Block(out, blk.line, blk.col)

    new = rewrite(block)
    new.stmts.append(ast.ClearAr(block.line, block.col))
    return new


def spin_flag_vars(func):
    """Identify flag variables: shared words a thread spin-waits on.

    The paper's fourth optimization whitelists all synchronization
    variables, explicitly including flags. A flag is recognized as a
    variable read in the exit condition of a loop whose body yields or
    sleeps (the canonical spin-wait shape after normalization).
    """
    flags = set()

    def scan(stmt, loop_conds):
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                scan(s, loop_conds)
        elif isinstance(stmt, ast.While):
            cond_reads = set()
            waits = [False]
            _collect_spin(stmt.body, cond_reads, waits)
            if waits[0]:
                flags.update(cond_reads)
            scan(stmt.body, loop_conds)
        elif isinstance(stmt, ast.If):
            scan(stmt.then, loop_conds)
            if stmt.els is not None:
                scan(stmt.els, loop_conds)

    def _collect_spin(body, cond_reads, waits):
        for s in (body.stmts if isinstance(body, ast.Block) else [body]):
            if isinstance(s, ast.Decl) and s.name.startswith("__c") and \
                    s.init is not None:
                for node in ast.walk(s.init):
                    if isinstance(node, ast.Var):
                        cond_reads.add(node.name)
            elif isinstance(s, ast.ExprStmt) and isinstance(s.expr, ast.Call) \
                    and s.expr.name in ("yield", "sleep"):
                waits[0] = True
            elif isinstance(s, ast.If):
                # condition reads inside guards count as spin reads too
                for node in ast.walk(s.cond):
                    if isinstance(node, ast.Var):
                        cond_reads.add(node.name)
                _collect_spin(s.then, cond_reads, waits)
                if s.els is not None:
                    _collect_spin(s.els, cond_reads, waits)
            elif isinstance(s, ast.Block):
                _collect_spin(s, cond_reads, waits)

    scan(func.body, [])
    return {f for f in flags if not f.startswith(TEMP_PREFIX)}


def annotate(source_or_ast, emit_shadow_stores=True,
             interprocedural=False, pointer_analysis=False):
    """Run the full static annotator.

    Accepts mini-C source text or a parsed Program AST. Returns an
    :class:`AnnotationResult` whose ``ast`` can be fed to
    :func:`repro.compiler.compile_program` together with ``ar_table``.

    ``interprocedural=True`` enables the Section 3.5 extension: call
    statements contribute their callee's transitive global accesses, so
    atomic regions can span subroutines. ``pointer_analysis=True``
    enables the other Section 3.5 extension: points-to-resolved aliases
    pair with direct accesses, and constant-index array accesses are
    tracked per element.
    """
    if isinstance(source_or_ast, str):
        program = parse(source_or_ast)
    else:
        program = source_or_ast
    program = normalize_program(program)
    pinfo = check(program)

    ar_table = {}
    lsvs = {}
    sync_ar_ids = set()
    ar_ids_by_func = {}
    next_id = 1

    # flags are program-wide: a variable spin-waited on anywhere is a
    # synchronization variable everywhere
    flag_vars = set()
    for func in program.funcs:
        flag_vars |= spin_flag_vars(func)

    summaries = None
    if interprocedural:
        from repro.analysis.interproc import compute_call_summaries

        summaries = compute_call_summaries(program, pinfo)

    # points-to sets always feed the guarded-by inference; they change
    # pairing behavior only under the pointer_analysis extension
    from repro.analysis.pointers import compute_points_to

    points_to = compute_points_to(program, pinfo)

    # ---- phase 1: per-function analyses on the pristine bodies -----------
    func_data = {}   # func name -> (lsv, pair_result)
    cfgs = {}
    per_func_infos = {}
    for func in program.funcs:
        lsv = compute_lsv(func, pinfo)
        lsvs[func.name] = lsv
        cfg = build_cfg(func)
        cfgs[func.name] = cfg
        pair_result = find_pairs(
            func, lsv, pinfo, cfg, summaries=summaries,
            points_to=points_to.get(func.name) if pointer_analysis else None,
            element_granularity=pointer_analysis,
        )
        func_data[func.name] = (lsv, pair_result)
        infos, next_id = build_ar_infos(func.name, pair_result, lsv, next_id,
                                        extra_sync_vars=flag_vars)
        per_func_infos[func.name] = infos
        ids = []
        for info in infos:
            ar_table[info.ar_id] = info
            ids.append(info.ar_id)
            if info.is_sync:
                sync_ar_ids.add(info.ar_id)
        ar_ids_by_func[func.name] = ids

    # ---- lock discipline, guarded-by inference and AR pruning ------------
    from repro.analysis.guarded import infer_guards
    from repro.analysis.locks import compute_lock_analysis
    from repro.analysis.prune import classify_ars

    lock_analysis = compute_lock_analysis(program, pinfo, cfgs=cfgs)
    guards = infer_guards(program, pinfo, lock_analysis, func_data,
                          points_to=points_to, extra_sync_vars=flag_vars)
    prune_result = classify_ars(ar_table, guards, lock_analysis)

    # ---- per-AR footprints and the inter-AR conflict graph ---------------
    # (on the pristine bodies/CFGs: the span uids predate the rewrite)
    from repro.analysis.conflict import build_conflict_graph
    from repro.analysis.footprint import (compute_ar_footprints,
                                          compute_function_footprints)

    func_footprints = compute_function_footprints(program, pinfo, points_to)
    footprints = compute_ar_footprints(program, pinfo, ar_table, cfgs,
                                       points_to,
                                       func_footprints=func_footprints)
    conflicts = build_conflict_graph(ar_table, footprints,
                                     sync_names=guards.sync_names)

    # ---- phase 2: rewrite bodies with the annotation statements ----------
    for func in program.funcs:
        _, pair_result = func_data[func.name]
        begins = {}
        ends = {}
        for info in per_func_infos[func.name]:
            begins.setdefault(info.begin_uid, []).append(info)
            for uid in info.second_kinds:
                ends.setdefault(uid, []).append(info)

        # Third-optimization support: replicate every local write to a
        # shared variable so the kernel's undo value stays current even
        # with local watchpoint delivery suppressed. One shadow store per
        # (statement, written variable).
        shadows = {}
        if emit_shadow_stores:
            for acc in pair_result.accesses.values():
                if acc.kind != AccessKind.WRITE:
                    continue
                entries = shadows.setdefault(acc.stmt_uid, [])
                if any(e.var == acc.var for e in entries):
                    continue
                entries.append(_ShadowSite(acc.var, acc.lvalue))

        func.body = _insert_annotations(func.body, begins, ends, shadows)
        func.body = _insert_clear_ars(func.body)

    # re-check so callers get an up-to-date ProgramInfo for codegen
    pinfo = check(program)
    return AnnotationResult(program, pinfo, ar_table, lsvs,
                            frozenset(sync_ar_ids), ar_ids_by_func,
                            locks=lock_analysis, guards=guards,
                            prune=prune_result, footprints=footprints,
                            func_footprints=func_footprints,
                            conflicts=conflicts)
