"""Flow-insensitive points-to analysis (Section 3.5 future work).

"In addition, pointer analysis could be used to better identify shared
variables. ... Pointer analysis will allow us to also identify ARs
involving local accesses to the same shared variable that occur due to an
alias, as well as produce finer-grain labelling of shared elements in
arrays."

This is an Andersen-style, context- and flow-insensitive analysis over
mini-C's simple pointer vocabulary:

- ``p = &x`` / ``p = &a[i]``  ->  x (or a) ∈ pts(p)
- ``p = q``                    ->  pts(q) ⊆ pts(p)
- ``p = alloc(n)``             ->  a fresh heap object ∈ pts(p)
- pointer parameters           ->  pts of every actual at every call site

The annotator consumes the result two ways (``pointer_analysis=True``):

1. **Alias resolution**: a dereference ``*p`` whose points-to set is a
   single named variable is treated as an access to that variable, so it
   pairs with direct accesses to the same name (the paper's example of
   ARs missed "due to an alias").
2. **Element granularity**: array accesses with constant indices are
   tracked as ``a[k]`` pseudo-variables instead of whole-array ``a``,
   producing finer-grain labelling (and per-element watchpoints).
"""

from repro.minic import ast
from repro.minic.builtins import is_builtin


class PointsTo:
    """Result of the analysis: variable name -> frozenset of target names.

    Targets are global/local variable names, array names, or synthetic
    ``heap@N`` objects for allocation sites.
    """

    def __init__(self, sets):
        self.sets = {name: frozenset(targets)
                     for name, targets in sets.items()}

    def targets(self, name):
        return self.sets.get(name, frozenset())

    def resolve_deref(self, pointer_name):
        """If ``*pointer_name`` definitely refers to one named variable,
        return that name; otherwise None (unknown or ambiguous)."""
        targets = self.targets(pointer_name)
        if len(targets) == 1:
            target = next(iter(targets))
            if not target.startswith("heap@"):
                return target
        return None

    def __repr__(self):
        return "PointsTo(%s)" % {k: sorted(v) for k, v in self.sets.items()}


def _qualify(func_name, name, globals_):
    """Variables are per-function except globals."""
    if name in globals_:
        return name
    return "%s::%s" % (func_name, name)


def compute_points_to(program, pinfo):
    """Whole-program Andersen-lite fixpoint.

    Returns {func_name: PointsTo} where each PointsTo maps the function's
    *local* names (plus globals) to target variable names as visible in
    that function (globals unqualified, locals only of that function).
    """
    globals_ = set(pinfo.global_sizes)
    points = {}      # qualified name -> set of qualified targets
    copies = []      # (dst qualified, src qualified)
    heap_counter = [0]

    def pts(name):
        return points.setdefault(name, set())

    def add_addr(func, target_expr, dst):
        if isinstance(target_expr, ast.Var):
            pts(dst).add(_qualify(func, target_expr.name, globals_))
        elif isinstance(target_expr, ast.Index):
            pts(dst).add(_qualify(func, target_expr.base.name, globals_))

    def handle_assign(func, target, value):
        if not isinstance(target, ast.Var):
            return
        dst = _qualify(func, target.name, globals_)
        if isinstance(value, ast.AddrOf):
            add_addr(func, value.operand, dst)
        elif isinstance(value, ast.Var):
            copies.append((dst, _qualify(func, value.name, globals_)))
        elif isinstance(value, ast.Call) and value.name == "alloc":
            heap_counter[0] += 1
            pts(dst).add("heap@%d" % heap_counter[0])

    # collect base facts + call-site parameter bindings
    for func in program.funcs:
        for stmt in ast.statements(func.body):
            if isinstance(stmt, ast.Assign):
                handle_assign(func.name, stmt.target, stmt.value)
            elif isinstance(stmt, ast.Decl) and stmt.init is not None:
                handle_assign(func.name, ast.Var(stmt.name), stmt.init)
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and not is_builtin(node.name):
                    callee = node.name
                    try:
                        params = program.func(callee).params
                    except KeyError:
                        continue
                    for (pname, _), arg in zip(params, node.args):
                        dst = _qualify(callee, pname, globals_)
                        if isinstance(arg, ast.AddrOf):
                            add_addr(func.name, arg.operand, dst)
                        elif isinstance(arg, ast.Var):
                            copies.append(
                                (dst,
                                 _qualify(func.name, arg.name, globals_)))
                elif isinstance(node, ast.Spawn):
                    callee = node.func
                    params = program.func(callee).params
                    for (pname, _), arg in zip(params, node.args):
                        dst = _qualify(callee, pname, globals_)
                        if isinstance(arg, ast.AddrOf):
                            add_addr(func.name, arg.operand, dst)
                        elif isinstance(arg, ast.Var):
                            copies.append(
                                (dst,
                                 _qualify(func.name, arg.name, globals_)))

    # propagate copies to fixpoint
    changed = True
    while changed:
        changed = False
        for dst, src in copies:
            src_set = points.get(src)
            if not src_set:
                continue
            dst_set = pts(dst)
            if not src_set <= dst_set:
                dst_set |= src_set
                changed = True

    # project per function
    result = {}
    for func in program.funcs:
        prefix = func.name + "::"
        local_view = {}
        for name, targets in points.items():
            if name.startswith(prefix):
                short = name[len(prefix):]
            elif "::" not in name:
                short = name
            else:
                continue
            visible = set()
            for target in targets:
                if target.startswith(prefix):
                    visible.add(target[len(prefix):])
                elif "::" not in target:
                    visible.add(target)
                else:
                    # a target local to another function is opaque here
                    visible.add("heap@foreign")
            local_view[short] = visible
        result[func.name] = PointsTo(local_view)
    return result
