"""Static AR pruning: STATIC_SAFE vs MONITOR classification.

An atomic region may skip run-time monitoring entirely when static
analysis proves no unserializable interleaving can be observed on it:

- the AR's variable is ``THREAD_LOCAL`` — no other thread can reach its
  address, so no remote access can interleave;
- the variable is ``READ_SHARED`` — with no writes anywhere, every
  interleaving of reads is serializable (Figure 2: all-R patterns);
- the variable is ``GUARDED_BY`` lock L **and the AR's whole span holds
  L**: every remote access also holds L (that is what GUARDED_BY means),
  so no remote access can execute between the AR's first and second
  accesses while the local thread holds L continuously.

The span condition is what makes the guarded case sound. GUARDED_BY
alone is *not* enough: an AR pairing accesses in two separate critical
sections (``lock; x=1; unlock; ...; lock; y=x; unlock``) has every site
locked, yet a remote locked write can interleave between the sections
and produce a flagged (W, W, R) pattern. We therefore require, for some
common guard L, that L is in the must-hold set at every CFG node on
every begin→end path and that no event in the span can release L (no
unlock of L, no imprecise unlock, no call that may release L or has
unknown release effects, no indirect invoke).

Synchronization-variable ARs are always MONITOR here: their benignity is
the fourth optimization's (dynamic whitelist) call, and with ``o4`` off
the runtime genuinely flags them, so calling them STATIC_SAFE would be
unsound against the cross-validation harness. Likewise ARs on pointer
pseudo-variables (``*p``): their watchpoint address is only known at run
time.
"""

from repro.analysis import guarded as _g

STATIC_SAFE = "static-safe"
MONITOR = "monitor"


class ARVerdict:
    """Prune classification of one atomic region."""

    __slots__ = ("ar_id", "verdict", "reason", "lock", "blocking")

    def __init__(self, ar_id, verdict, reason, lock=None, blocking=()):
        self.ar_id = ar_id
        self.verdict = verdict
        self.reason = reason
        self.lock = lock
        # blocking calls inside the AR's span: tuple of (line, name);
        # W004's evidence, recorded for every AR regardless of verdict
        self.blocking = tuple(blocking)

    def describe(self):
        extra = " [%s]" % self.lock if self.lock else ""
        return "AR %d: %s (%s)%s" % (self.ar_id, self.verdict, self.reason,
                                     extra)

    def __repr__(self):
        return "ARVerdict(%d, %s, %s)" % (self.ar_id, self.verdict,
                                          self.reason)


class PruneResult:
    """Classification of every AR in the table."""

    __slots__ = ("verdicts", "static_safe_ids")

    def __init__(self, verdicts):
        self.verdicts = verdicts  # ar_id -> ARVerdict
        self.static_safe_ids = frozenset(
            ar_id for ar_id, v in verdicts.items()
            if v.verdict == STATIC_SAFE)

    def verdict(self, ar_id):
        return self.verdicts.get(ar_id)

    def monitored_ids(self):
        return frozenset(ar_id for ar_id in self.verdicts
                         if ar_id not in self.static_safe_ids)

    def counts(self):
        return {STATIC_SAFE: len(self.static_safe_ids),
                MONITOR: len(self.verdicts) - len(self.static_safe_ids)}

    def __repr__(self):
        c = self.counts()
        return "PruneResult(safe=%d, monitor=%d)" % (c[STATIC_SAFE],
                                                     c[MONITOR])


def _uid_node_map(cfg):
    out = {}
    for node in cfg.nodes:
        if node.kind in ("stmt", "cond") and node.stmt is not None:
            out[node.stmt.uid] = node
    return out


def _span_nodes(cfg, begin_node, end_nodes):
    """Nodes on some begin→end path that does not revisit begin.

    The monitored window mirrors annotation placement: it opens at the
    begin_atomic before the first-access statement and closes at the
    end_atomic after the *next executed* second-access statement. Two
    consequences for reachability:

    - re-reaching the begin site restarts the window (each begin opens a
      fresh one), so traversal never continues through the begin node —
      a loop's back edge does not extend the AR across iterations;
    - reaching any end site closes the window, so traversal never
      continues through an end node either."""
    end_ids = {n.nid for n in end_nodes}
    fwd = {begin_node.nid}
    work = [begin_node]
    while work:
        node = work.pop()
        if node.nid in end_ids:
            continue  # window already closed here
        for succ in node.succs:
            if succ.nid == begin_node.nid or succ.nid in fwd:
                continue
            fwd.add(succ.nid)
            work.append(succ)
    bwd = set()
    work = []
    for end in end_nodes:
        if end.nid not in bwd:
            bwd.add(end.nid)
            if end.nid != begin_node.nid:
                work.append(end)
    while work:
        node = work.pop()
        for pred in node.preds:
            if pred.nid in bwd:
                continue
            bwd.add(pred.nid)
            if pred.nid != begin_node.nid and pred.nid not in end_ids:
                work.append(pred)
    keep = fwd & bwd
    return [n for n in cfg.nodes if n.nid in keep]


def _releases(event, lock, summaries):
    """Can this event release ``lock``?"""
    if event.kind == "unlock":
        return (not event.precise) or event.token == lock
    if event.kind == "invoke":
        return True
    if event.kind == "call":
        summ = summaries.get(event.name)
        if summ is None:
            return False
        return summ.releases_unknown or lock in summ.may_released
    return False


def _span_holds(span, lock, func_result, summaries):
    """True when ``lock`` is continuously held across the span."""
    for node in span:
        if lock not in func_result.node_must_in.get(node.nid, frozenset()):
            return False
        for event in func_result.node_events.get(node.nid, ()):
            if _releases(event, lock, summaries):
                return False
    return True


def _blocking_calls(span, func_result, summaries):
    out = []
    for node in span:
        for event in func_result.node_events.get(node.nid, ()):
            if event.kind in ("lock", "block"):
                name = event.name or "lock"
                out.append((event.line, name))
            elif event.kind == "call":
                summ = summaries.get(event.name)
                if summ is not None and summ.may_block:
                    out.append((event.line, event.name))
    return sorted(set(out))


def classify_ars(ar_table, guards, lock_analysis):
    """Classify every AR; returns a :class:`PruneResult`."""
    summaries = lock_analysis.summaries
    uid_maps = {}
    verdicts = {}

    for ar_id in sorted(ar_table):
        info = ar_table[ar_id]
        func_result = lock_analysis.per_func.get(info.func)

        # span + blocking evidence (wanted for every AR, W004)
        blocking = ()
        span = None
        if func_result is not None:
            uid_map = uid_maps.get(info.func)
            if uid_map is None:
                uid_map = _uid_node_map(func_result.cfg)
                uid_maps[info.func] = uid_map
            begin_node = uid_map.get(info.begin_uid)
            end_nodes = [uid_map[uid] for uid in info.second_kinds
                         if uid in uid_map]
            if begin_node is not None and end_nodes:
                span = _span_nodes(func_result.cfg, begin_node, end_nodes)
                blocking = _blocking_calls(span, func_result, summaries)

        def monitor(reason):
            return ARVerdict(ar_id, MONITOR, reason, blocking=blocking)

        if info.is_sync:
            verdicts[ar_id] = monitor("sync")
            continue
        base = info.var.split("[")[0]
        if base.startswith("*"):
            verdicts[ar_id] = monitor("pointer")
            continue
        vg = guards.verdict_for(info.func, base)
        if vg is None:
            verdicts[ar_id] = monitor("unclassified")
            continue
        if vg.verdict == _g.THREAD_LOCAL:
            verdicts[ar_id] = ARVerdict(ar_id, STATIC_SAFE, "thread-local",
                                        blocking=blocking)
            continue
        if vg.verdict == _g.READ_SHARED:
            verdicts[ar_id] = ARVerdict(ar_id, STATIC_SAFE, "read-shared",
                                        blocking=blocking)
            continue
        if vg.verdict == _g.GUARDED_BY:
            if span is None or func_result is None:
                verdicts[ar_id] = monitor("guarded-no-span")
                continue
            held = None
            for lock in sorted(vg.locks):
                if _span_holds(span, lock, func_result, summaries):
                    held = lock
                    break
            if held is not None:
                verdicts[ar_id] = ARVerdict(ar_id, STATIC_SAFE,
                                            "guarded-by", lock=held,
                                            blocking=blocking)
            else:
                verdicts[ar_id] = monitor("guard-not-spanning")
            continue
        verdicts[ar_id] = monitor(vg.verdict)

    return PruneResult(verdicts)
