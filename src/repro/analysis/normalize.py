"""CIL-style normalization.

CIL lowers C into a form where conditions are side-effect-free and every
memory access sits in a simple statement. The annotator relies on the same
property so that ``begin_atomic``/``end_atomic`` can always be inserted
immediately before/after the statement containing an access:

- ``while (cond) body`` becomes::

      while (1) { int __cN = cond; if (!__cN) break; body }

  (so ``continue`` still re-evaluates the condition), and

- ``if (cond) ...`` with a non-trivial condition becomes::

      int __cN = cond; if (__cN) ...

Temporaries ``__cN`` are compiler-generated, never address-taken and never
escape, so the LSV pass excludes them by name prefix.
"""

import itertools

from repro.minic import ast

TEMP_PREFIX = "__c"

_temp_counter = itertools.count()


def _fresh_temp():
    return "%s%d" % (TEMP_PREFIX, next(_temp_counter))


def _is_trivial(expr):
    """Conditions that contain no memory access need no hoisting."""
    if isinstance(expr, ast.IntLit):
        return True
    if isinstance(expr, ast.Unary):
        return _is_trivial(expr.operand)
    return False


def normalize_program(program):
    """Normalize all functions in place; returns the same Program node."""
    for func in program.funcs:
        func.body = _norm_block(func.body)
    return program


def _norm_block(block):
    out = []
    for stmt in block.stmts:
        out.extend(_norm_stmt(stmt))
    return ast.Block(out, block.line, block.col)


def _norm_stmt(stmt):
    """Return a list of statements replacing ``stmt``."""
    if isinstance(stmt, ast.Block):
        return [_norm_block(stmt)]
    if isinstance(stmt, ast.If):
        then = _as_block(stmt.then)
        els = _as_block(stmt.els) if stmt.els is not None else None
        if _is_trivial(stmt.cond):
            return [ast.If(stmt.cond, then, els, stmt.line, stmt.col)]
        temp = _fresh_temp()
        decl = ast.Decl(temp, False, 1, stmt.cond, stmt.line, stmt.col)
        cond = ast.Var(temp, stmt.line, stmt.col)
        return [decl, ast.If(cond, then, els, stmt.line, stmt.col)]
    if isinstance(stmt, ast.Return):
        # hoist non-trivial return values so a second access inside the
        # return expression gets its end_atomic before clear_ar runs
        if stmt.value is None or _is_trivial(stmt.value) or isinstance(
                stmt.value, ast.Var):
            return [stmt]
        temp = _fresh_temp()
        decl = ast.Decl(temp, False, 1, stmt.value, stmt.line, stmt.col)
        ret = ast.Return(ast.Var(temp, stmt.line, stmt.col), stmt.line, stmt.col)
        return [decl, ret]
    if isinstance(stmt, ast.While):
        body = _as_block(stmt.body)
        if _is_trivial(stmt.cond):
            return [ast.While(stmt.cond, body, stmt.line, stmt.col)]
        temp = _fresh_temp()
        line, col = stmt.line, stmt.col
        assign_ok = ast.Decl(temp, False, 1, stmt.cond, line, col)
        guard = ast.If(
            ast.Unary("!", ast.Var(temp, line, col), line, col),
            ast.Block([ast.Break(line, col)], line, col),
            None,
            line,
            col,
        )
        new_body = ast.Block([assign_ok, guard] + list(body.stmts), line, col)
        return [ast.While(ast.IntLit(1, line, col), new_body, line, col)]
    return [stmt]


def _as_block(stmt):
    if isinstance(stmt, ast.Block):
        return _norm_block(stmt)
    return ast.Block(
        [s for sub in [stmt] for s in _norm_stmt(sub)], stmt.line, stmt.col
    )
