"""Per-AR may-read/may-write shared-variable footprints.

For every atomic region the annotator finds, compute a sound
over-approximation of the shared memory its dynamic window may touch:
the set of global variables (and ``heap@N`` allocation sites) that any
execution of the static span — the same begin→end CFG region the prune
analysis uses, which mirrors the runtime window exactly — may read or
write.  Two ARs with disjoint footprints can never suspend, undo or
flag each other, which is what makes the conflict graph
(:mod:`repro.analysis.conflict`) and the conflict-aware scheduler
(:mod:`repro.machine.conflictsched`) sound consumers.

Soundness is the contract (there is a hypothesis property test pinning
it): the static footprint must be a superset of every dynamically
observed footprint on every schedule.  The over-approximations that
guarantee it:

- named locals are excluded from the domain — a stack slot is reached
  by another thread only through a pointer, and every pointer deref is
  handled separately;
- a dereference ``*p`` expands to the points-to targets of ``p``
  (:mod:`repro.analysis.pointers`); global and heap targets enter the
  footprint, named-local targets are per-thread and skipped;
- an *empty* or foreign points-to set, a pointer the Andersen-lite
  analysis cannot see (address stored through memory, pointer
  arithmetic), or an indirect ``invoke`` makes the footprint **wild**:
  it may touch anything, and conflicts with everything;
- calls are always folded transitively (a span can contain call
  statements even when the inter-procedural pairing extension is off);
  an unknown callee is wild.

Array element pseudo-variables (``a[k]``) collapse to the base array
name: footprints are about *which memory* can be touched, and the
machine lays an array out as one contiguous range.
"""

from repro.minic import ast
from repro.minic.ast import AccessKind
from repro.minic.builtins import SYNC_BUILTINS, is_builtin

from repro.analysis.prune import _span_nodes, _uid_node_map


class Footprint:
    """May-read/may-write sets over globals and heap allocation sites.

    ``wild`` means the region may touch memory the analysis cannot
    name; a wild footprint conflicts with every non-empty footprint.
    """

    __slots__ = ("reads", "writes", "wild")

    EMPTY = None  # filled in below

    def __init__(self, reads=(), writes=(), wild=False):
        self.reads = frozenset(reads)
        self.writes = frozenset(writes)
        self.wild = bool(wild)

    def touched(self):
        return self.reads | self.writes

    def is_empty(self):
        return not (self.reads or self.writes or self.wild)

    def union(self, other):
        if other.is_empty():
            return self
        if self.is_empty():
            return other
        return Footprint(self.reads | other.reads,
                         self.writes | other.writes,
                         self.wild or other.wild)

    def conflict_vars(self, other):
        """Variables witnessing a conflict: at least one side writes.

        Wildness is *not* reflected here — callers that care about wild
        regions must check :attr:`wild` (the scheduler does; the lint
        pass deliberately does not, to avoid quadratic noise)."""
        return ((self.writes & other.touched())
                | (self.reads & other.writes))

    def conflicts_with(self, other):
        """True when the two regions may touch a common word with at
        least one write, or either side is wild and the other non-empty."""
        if self.wild and not other.is_empty():
            return True
        if other.wild and not self.is_empty():
            return True
        return bool(self.conflict_vars(other))

    def kinds_of(self, var):
        kinds = []
        if var in self.reads:
            kinds.append(AccessKind.READ)
        if var in self.writes:
            kinds.append(AccessKind.WRITE)
        return kinds

    def as_dict(self):
        return {"reads": sorted(self.reads), "writes": sorted(self.writes),
                "wild": self.wild}

    def describe(self):
        bits = []
        if self.reads:
            bits.append("R{%s}" % ",".join(sorted(self.reads)))
        if self.writes:
            bits.append("W{%s}" % ",".join(sorted(self.writes)))
        if self.wild:
            bits.append("wild")
        return " ".join(bits) or "(empty)"

    def __repr__(self):
        return "Footprint(%s)" % self.describe()


Footprint.EMPTY = Footprint()

WILD = Footprint(wild=True)


def _base_name(var):
    """Collapse ``a[k]`` element pseudo-vars to the base array name."""
    return var.split("[")[0]


class _Collector:
    """Accumulates the footprint of one function's statements.

    ``fold_calls=False`` collects only the function's *direct* accesses
    (callees contribute a read of nothing; call edges are returned for
    the caller's fixpoint to fold)."""

    def __init__(self, func_name, global_names, pts, addr_escapes,
                 func_footprints=None):
        self.func_name = func_name
        self.global_names = global_names
        self.pts = pts
        # when the program stores an address somewhere the points-to
        # analysis cannot model, any deref may follow it: wild
        self.addr_escapes = addr_escapes
        self.func_footprints = func_footprints  # None => record callees
        self.reads = set()
        self.writes = set()
        self.wild = False
        self.callees = set()

    def _add(self, name, kind):
        if name not in self.global_names and not name.startswith("heap@"):
            return  # named local: per-thread, never a cross-thread conflict
        if kind == AccessKind.WRITE:
            self.writes.add(name)
        else:
            self.reads.add(name)

    def _deref(self, pointer_name, kind):
        """Expand ``*pointer`` through the points-to sets."""
        if self.addr_escapes:
            self.wild = True
            return
        targets = (self.pts.targets(pointer_name)
                   if self.pts is not None else frozenset())
        if not targets:
            self.wild = True  # pointer from arithmetic/array/call: anything
            return
        for target in sorted(targets):
            if target == "heap@foreign":
                # an address that is some other function's stack slot
                # here; through it any address-taken word is reachable
                self.wild = True
            elif target.startswith("heap@") or target in self.global_names:
                self._add(target, kind)
            # else: a named local of this function — per-thread, skipped

    def _fold_call(self, callee):
        if self.func_footprints is None:
            self.callees.add(callee)
            return
        fp = self.func_footprints.get(callee)
        if fp is None:
            self.wild = True  # unknown callee: could touch anything
            return
        self.reads |= fp.reads
        self.writes |= fp.writes
        self.wild = self.wild or fp.wild

    # -- expression / statement walkers -------------------------------

    def reads_of(self, expr):
        if isinstance(expr, ast.Var):
            self._add(expr.name, AccessKind.READ)
        elif isinstance(expr, ast.Deref):
            if isinstance(expr.operand, ast.Var):
                self._add(expr.operand.name, AccessKind.READ)
                self._deref(expr.operand.name, AccessKind.READ)
            else:
                self.reads_of(expr.operand)
                self.wild = True  # deref of a computed address
        elif isinstance(expr, ast.AddrOf):
            if isinstance(expr.operand, ast.Index):
                self.reads_of(expr.operand.index)
        elif isinstance(expr, ast.Index):
            self.reads_of(expr.index)
            self._add(expr.base.name, AccessKind.READ)
        elif isinstance(expr, ast.Unary):
            self.reads_of(expr.operand)
        elif isinstance(expr, ast.Binary):
            self.reads_of(expr.left)
            self.reads_of(expr.right)
        elif isinstance(expr, ast.Call):
            self.call(expr)

    def write_target(self, target):
        if isinstance(target, ast.Var):
            self._add(target.name, AccessKind.WRITE)
        elif isinstance(target, ast.Deref):
            if isinstance(target.operand, ast.Var):
                self._add(target.operand.name, AccessKind.READ)
                self._deref(target.operand.name, AccessKind.WRITE)
            else:
                self.reads_of(target.operand)
                self.wild = True
        elif isinstance(target, ast.Index):
            self.reads_of(target.index)
            self._add(target.base.name, AccessKind.WRITE)

    def _copyword_arg(self, arg, kind):
        """copyword moves a word through an address-valued argument."""
        if isinstance(arg, ast.AddrOf):
            if isinstance(arg.operand, ast.Var):
                self._add(arg.operand.name, kind)
            elif isinstance(arg.operand, ast.Index):
                self.reads_of(arg.operand.index)
                self._add(arg.operand.base.name, kind)
        elif isinstance(arg, ast.Var):
            self._add(arg.name, AccessKind.READ)
            self._deref(arg.name, kind)
        else:
            self.reads_of(arg)
            self.wild = True

    def call(self, expr):
        name = expr.name
        if name in SYNC_BUILTINS and expr.args:
            arg = expr.args[0]
            for other in expr.args[1:]:
                self.reads_of(other)
            if isinstance(arg, ast.AddrOf) and isinstance(arg.operand,
                                                          ast.Var):
                lockname = arg.operand.name
                # machine semantics: LOCK reads the word and writes it on
                # acquire; UNLOCK only writes; cas/atomic_add read+write
                if name != "unlock":
                    self._add(lockname, AccessKind.READ)
                self._add(lockname, AccessKind.WRITE)
            elif isinstance(arg, ast.AddrOf) and isinstance(arg.operand,
                                                            ast.Index):
                self.reads_of(arg.operand.index)
                lockname = arg.operand.base.name
                if name != "unlock":
                    self._add(lockname, AccessKind.READ)
                self._add(lockname, AccessKind.WRITE)
            else:
                self._copyword_arg(arg, AccessKind.WRITE)
                if name != "unlock":
                    self._copyword_arg(arg, AccessKind.READ)
        elif name == "copyword":
            self._copyword_arg(expr.args[0], AccessKind.WRITE)
            self._copyword_arg(expr.args[1], AccessKind.READ)
        elif name == "invoke":
            # an indirect call: the function-pointer word is read, and
            # the (statically unknown) callee may touch anything
            self._copyword_arg(expr.args[0], AccessKind.READ)
            self.wild = True
        elif is_builtin(name):
            for a in expr.args:
                self.reads_of(a)
        else:
            for a in expr.args:
                self.reads_of(a)
            self._fold_call(name)

    def statement(self, stmt):
        if isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                self.reads_of(stmt.init)
                self._add(stmt.name, AccessKind.WRITE)
        elif isinstance(stmt, ast.Assign):
            self.reads_of(stmt.value)
            self.write_target(stmt.target)
        elif isinstance(stmt, ast.ExprStmt):
            self.reads_of(stmt.expr)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.reads_of(stmt.value)
        elif isinstance(stmt, ast.Spawn):
            # the spawned body runs in another thread, not in this
            # window; only the argument evaluation is local work
            for a in stmt.args:
                self.reads_of(a)

    def footprint(self):
        return Footprint(self.reads, self.writes, self.wild)


#: expression positions where the Andersen-lite analysis models an
#: AddrOf: RHS of Var-assign/Decl, call/spawn arguments. An AddrOf
#: anywhere else (stored through memory, inside arithmetic) escapes the
#: model, so derefs can no longer be trusted to the points-to sets.
def _address_escapes(program):
    modeled = set()
    for func in program.funcs:
        for stmt in ast.statements(func.body):
            exprs = []
            if isinstance(stmt, ast.Assign) and isinstance(stmt.target,
                                                           ast.Var):
                exprs.append(stmt.value)
            elif isinstance(stmt, ast.Decl) and stmt.init is not None:
                exprs.append(stmt.init)
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    if node.name in SYNC_BUILTINS or node.name in (
                            "copyword", "invoke"):
                        # the collector resolves AddrOf in these
                        # positions itself, without the points-to sets
                        exprs.extend(node.args)
                    elif not is_builtin(node.name):
                        exprs.extend(node.args)
                elif isinstance(node, ast.Spawn):
                    exprs.extend(node.args)
            for expr in exprs:
                if isinstance(expr, ast.AddrOf):
                    modeled.add(id(expr))
    for func in program.funcs:
        for stmt in ast.statements(func.body):
            for node in ast.walk(stmt):
                if isinstance(node, ast.AddrOf) and id(node) not in modeled:
                    return True
    return False


def compute_function_footprints(program, pinfo, points_to):
    """Transitive per-function footprints over the pristine bodies.

    Returns ``{func_name: Footprint}``.  The fixpoint folds callee
    footprints into callers until stable; recursion converges because
    footprints only grow and the domain is finite.
    """
    global_names = set(pinfo.global_sizes)
    addr_escapes = _address_escapes(program)

    direct = {}
    call_edges = {}
    for func in program.funcs:
        coll = _Collector(func.name, global_names,
                          points_to.get(func.name), addr_escapes,
                          func_footprints=None)
        for stmt in ast.statements(func.body):
            if isinstance(stmt, (ast.If, ast.While)):
                coll.reads_of(stmt.cond)
            else:
                coll.statement(stmt)
        direct[func.name] = coll
        call_edges[func.name] = coll.callees

    result = {name: coll.footprint() for name, coll in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in sorted(result):
            fp = result[name]
            for callee in sorted(call_edges[name]):
                callee_fp = result.get(callee)
                if callee_fp is None:
                    if not fp.wild:
                        fp = Footprint(fp.reads, fp.writes, True)
                        changed = True
                    continue
                merged = fp.union(callee_fp)
                if (merged.reads != fp.reads or merged.writes != fp.writes
                        or merged.wild != fp.wild):
                    fp = merged
                    changed = True
            result[name] = fp
    return result


def compute_ar_footprints(program, pinfo, ar_table, cfgs, points_to,
                          func_footprints=None):
    """Per-AR span footprints.

    ``cfgs`` maps function name to the *pristine* (pre-annotation) CFG —
    the same objects the pairing DFA ran on, so ``begin_uid`` /
    ``second_kinds`` uids resolve.  Returns ``{ar_id: Footprint}``.

    An AR whose span cannot be reconstructed (begin or end statement
    missing from the CFG) is conservatively wild.
    """
    global_names = set(pinfo.global_sizes)
    addr_escapes = _address_escapes(program)
    if func_footprints is None:
        func_footprints = compute_function_footprints(program, pinfo,
                                                      points_to)

    uid_maps = {}
    footprints = {}
    for ar_id in sorted(ar_table):
        info = ar_table[ar_id]
        cfg = cfgs.get(info.func)
        if cfg is None:
            footprints[ar_id] = WILD
            continue
        uid_map = uid_maps.get(info.func)
        if uid_map is None:
            uid_map = _uid_node_map(cfg)
            uid_maps[info.func] = uid_map
        begin_node = uid_map.get(info.begin_uid)
        end_nodes = [uid_map[uid] for uid in sorted(info.second_kinds)
                     if uid in uid_map]
        if begin_node is None or not end_nodes:
            footprints[ar_id] = WILD
            continue
        span = _span_nodes(cfg, begin_node, end_nodes)
        coll = _Collector(info.func, global_names,
                          points_to.get(info.func), addr_escapes,
                          func_footprints=func_footprints)
        for node in sorted(span, key=lambda n: n.nid):
            if node.kind == "stmt" and node.stmt is not None:
                coll.statement(node.stmt)
            elif node.kind == "cond" and getattr(node, "expr", None) \
                    is not None:
                coll.reads_of(node.expr)
        # the AR's own variable is always in the footprint: the begin
        # site's first access may precede the span's first node
        base = _base_name(info.var)
        if base.startswith("*"):
            coll._add(base.lstrip("*"), AccessKind.READ)
            coll._deref(base.lstrip("*"), info.first_kind)
        else:
            coll._add(base, info.first_kind)
        footprints[ar_id] = coll.footprint()
    return footprints


__all__ = ["Footprint", "WILD", "compute_ar_footprints",
           "compute_function_footprints"]
