"""SARIF 2.1.0 output for ``kivati lint --sarif``.

Static Analysis Results Interchange Format: the JSON shape CI systems
(GitHub code scanning et al.) ingest to surface diagnostics as inline
annotations.  Only the mandatory skeleton is emitted — tool driver with
rule metadata, one result per diagnostic with a physical location —
and :func:`validate_sarif` structurally checks that skeleton (the
container has no ``jsonschema``; the validator is hand-rolled the same
way the bench artifact validators are).
"""

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

RULE_DESCRIPTIONS = {
    "W001": "Shared variable written with no lock held",
    "W002": "Inconsistent lock discipline across access sites",
    "W003": "Lock/unlock imbalance on some path",
    "W004": "Atomic region spans a potentially blocking call",
    "W005": "Predicted write-write interleaving between atomic regions",
    "W006": "Predicted read-write interleaving between atomic regions",
    "W007": "Predicted unserializable (AVIO-pattern) interleaving",
}


def sarif_payload(diags_by_file):
    """One SARIF run over ``{display name: [Diagnostic, ...]}``."""
    rules_used = sorted({d.code for diags in diags_by_file.values()
                         for d in diags})
    results = []
    for name in sorted(diags_by_file):
        for d in diags_by_file[name]:
            results.append({
                "ruleId": d.code,
                "level": "warning",
                "message": {"text": d.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.file},
                        "region": {"startLine": max(1, d.line)},
                    },
                }],
            })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "kivati-lint",
                    "informationUri":
                        "https://doi.org/10.1145/1755913.1755932",
                    "rules": [
                        {"id": code,
                         "shortDescription":
                             {"text": RULE_DESCRIPTIONS[code]}}
                        for code in rules_used
                    ],
                },
            },
            "results": results,
        }],
    }


def validate_sarif(payload):
    """Structural SARIF 2.1.0 check; returns a list of problem strings
    (empty when valid)."""
    problems = []

    def need(cond, msg):
        if not cond:
            problems.append(msg)
        return cond

    if not need(isinstance(payload, dict), "payload is not an object"):
        return problems
    need(payload.get("version") == SARIF_VERSION,
         "version is not %r" % SARIF_VERSION)
    need(isinstance(payload.get("$schema"), str), "$schema missing")
    runs = payload.get("runs")
    if not need(isinstance(runs, list) and runs, "runs must be a non-empty "
                "array"):
        return problems
    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not need(isinstance(run, dict), where + " is not an object"):
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if need(isinstance(driver, dict), where + ".tool.driver missing"):
            need(isinstance(driver.get("name"), str) and driver.get("name"),
                 where + ".tool.driver.name missing")
            rule_ids = set()
            for j, rule in enumerate(driver.get("rules", ())):
                rwhere = "%s.rules[%d]" % (where, j)
                if need(isinstance(rule, dict) and
                        isinstance(rule.get("id"), str), rwhere + " has no "
                        "string id"):
                    rule_ids.add(rule["id"])
                    desc = rule.get("shortDescription")
                    need(isinstance(desc, dict) and
                         isinstance(desc.get("text"), str),
                         rwhere + ".shortDescription.text missing")
        else:
            rule_ids = set()
        results = run.get("results")
        if not need(isinstance(results, list), where + ".results must be "
                    "an array"):
            continue
        for j, res in enumerate(results):
            rwhere = "%s.results[%d]" % (where, j)
            if not need(isinstance(res, dict), rwhere + " is not an "
                        "object"):
                continue
            need(isinstance(res.get("ruleId"), str),
                 rwhere + ".ruleId missing")
            if rule_ids:
                need(res.get("ruleId") in rule_ids,
                     rwhere + ".ruleId %r not declared in driver.rules"
                     % (res.get("ruleId"),))
            need(res.get("level") in ("none", "note", "warning", "error"),
                 rwhere + ".level invalid")
            msg = res.get("message")
            need(isinstance(msg, dict) and isinstance(msg.get("text"), str),
                 rwhere + ".message.text missing")
            locs = res.get("locations")
            if not need(isinstance(locs, list) and locs,
                        rwhere + ".locations must be non-empty"):
                continue
            for k, loc in enumerate(locs):
                lwhere = "%s.locations[%d]" % (rwhere, k)
                phys = loc.get("physicalLocation") \
                    if isinstance(loc, dict) else None
                if not need(isinstance(phys, dict),
                            lwhere + ".physicalLocation missing"):
                    continue
                art = phys.get("artifactLocation")
                need(isinstance(art, dict) and
                     isinstance(art.get("uri"), str),
                     lwhere + ".artifactLocation.uri missing")
                region = phys.get("region")
                need(isinstance(region, dict) and
                     isinstance(region.get("startLine"), int) and
                     region["startLine"] >= 1,
                     lwhere + ".region.startLine must be a positive int")
    return problems


__all__ = ["RULE_DESCRIPTIONS", "SARIF_SCHEMA", "SARIF_VERSION",
           "sarif_payload", "validate_sarif"]
