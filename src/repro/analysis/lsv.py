"""List of shared variables (LSV) construction (Section 3.1).

Per subroutine, the LSV is seeded with:

- every global variable,
- every argument passed in by reference (pointer parameters),
- every variable assigned the result of a subroutine call (the paper's
  "pointers returned from a called subroutine" — conservatively, any call
  result, matching the prototype's imprecision),
- every variable whose address is taken (it escapes and may be shared).

A data-flow closure then adds any variable data-flow dependent on an LSV
member. Pointer dereferences ``*p`` with ``p`` in the LSV contribute a
pseudo-variable named ``"*p"`` so that accesses through the same pointer
name pair with each other — exactly the paper's name-based matching
limitation (Section 3.5).

Variables in the LSV that are not truly shared cost monitoring overhead
but can never produce a violation; annotator-generated condition temps
(``__c*``) are excluded because the annotator itself created them and
knows they never escape.
"""

from repro.minic import ast
from repro.minic.builtins import POINTER_RETURNING, SYNC_BUILTINS
from repro.analysis.normalize import TEMP_PREFIX


class LSVResult:
    """LSV of one function."""

    __slots__ = ("func_name", "shared", "sync_vars")

    def __init__(self, func_name, shared, sync_vars):
        self.func_name = func_name
        self.shared = frozenset(shared)
        self.sync_vars = frozenset(sync_vars)

    def __contains__(self, name):
        return name in self.shared


def _expr_var_names(expr, out):
    """Collect variable names read by ``expr`` (including deref pseudo
    names)."""
    if isinstance(expr, ast.Var):
        out.add(expr.name)
    elif isinstance(expr, ast.Deref):
        if isinstance(expr.operand, ast.Var):
            out.add(expr.operand.name)
            out.add("*" + expr.operand.name)
        else:
            _expr_var_names(expr.operand, out)
    elif isinstance(expr, ast.AddrOf):
        # taking an address is not a read of the variable's value, but the
        # underlying name is data-flow relevant (p = &shared makes p shared)
        if isinstance(expr.operand, ast.Var):
            out.add(expr.operand.name)
        elif isinstance(expr.operand, ast.Index):
            out.add(expr.operand.base.name)
            _expr_var_names(expr.operand.index, out)
    elif isinstance(expr, ast.Index):
        out.add(expr.base.name)
        _expr_var_names(expr.index, out)
    elif isinstance(expr, (ast.Unary,)):
        _expr_var_names(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        _expr_var_names(expr.left, out)
        _expr_var_names(expr.right, out)
    elif isinstance(expr, ast.Call):
        for a in expr.args:
            _expr_var_names(a, out)


def compute_lsv(func, pinfo):
    """Compute the LSV for ``func``. ``pinfo`` is the checked ProgramInfo."""
    finfo = pinfo.funcs[func.name]
    shared = set()
    sync_vars = set()

    # seed: globals
    shared.update(pinfo.global_sizes.keys())
    # seed: by-reference parameters (and everything reachable through them)
    for pname, is_ptr in func.params:
        if is_ptr:
            shared.add(pname)
            shared.add("*" + pname)

    assigns = []  # (target_name or None, rhs expr)
    addr_taken = set()

    for stmt in ast.statements(func.body):
        if isinstance(stmt, ast.Decl) and stmt.init is not None:
            assigns.append((stmt.name, stmt.init))
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Var):
                assigns.append((stmt.target.name, stmt.value))
            else:
                assigns.append((None, stmt.value))
        for node in ast.walk(stmt):
            if isinstance(node, ast.AddrOf):
                if isinstance(node.operand, ast.Var):
                    addr_taken.add(node.operand.name)
                elif isinstance(node.operand, ast.Index):
                    addr_taken.add(node.operand.base.name)
            elif isinstance(node, ast.Call):
                if node.name in SYNC_BUILTINS and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.AddrOf) and isinstance(
                            arg.operand, ast.Var):
                        sync_vars.add(arg.operand.name)
                # call results are conservatively shared
            elif isinstance(node, ast.Spawn):
                pass

    # seed: address-taken locals escape
    shared.update(addr_taken)

    # seed: variables assigned a *pointer* returned from a called
    # subroutine (the paper's rule is type-based: only pointer returns
    # seed the LSV; integer-returning calls do not)
    for target, rhs in assigns:
        if target is None:
            continue
        if isinstance(rhs, ast.Call) and rhs.name in POINTER_RETURNING:
            shared.add(target)

    # closure: data-flow dependence
    changed = True
    while changed:
        changed = False
        for target, rhs in assigns:
            if target is None or target in shared:
                continue
            names = set()
            _expr_var_names(rhs, names)
            if names & shared:
                shared.add(target)
                changed = True

    # add deref pseudo-vars for shared pointers that are dereferenced
    deref_names = set()
    for stmt in ast.statements(func.body):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Deref) and isinstance(node.operand, ast.Var):
                deref_names.add(node.operand.name)
    for name in deref_names:
        if name in shared:
            shared.add("*" + name)

    # drop annotator temps
    shared = {n for n in shared if not n.lstrip("*").startswith(TEMP_PREFIX)}

    return LSVResult(func.name, shared, sync_vars)
