"""The static annotator (Section 3.1).

Mirrors the paper's CIL pass:

1. :mod:`repro.analysis.normalize` — CIL-style simplification: loop
   conditions are lowered to ``while(1){ t = cond; if(!t) break; ... }``
   and effectful ``if`` conditions are hoisted into temporaries, so every
   shared-variable access occurs in a simple statement.
2. :mod:`repro.analysis.lsv` — per-subroutine list of shared variables:
   seeded with globals, by-reference arguments and call results, closed
   under data-flow dependence and address-taken escape.
3. :mod:`repro.analysis.cfg` — per-subroutine control-flow graph.
4. :mod:`repro.analysis.pairs` — path-insensitive reaching-latest-access
   DFA pairing consecutive accesses to the same shared variable into
   atomic regions.
5. :mod:`repro.analysis.watchtype` — the Figure 6 matrix (which remote
   access kinds each AR watches) and the four non-serializable
   interleavings of Figure 2.
6. :mod:`repro.analysis.annotate` — inserts ``begin_atomic`` /
   ``end_atomic`` / ``clear_ar`` (and the optimization-3 shadow stores)
   into the AST and emits the AR registry.
"""

from repro.analysis.annotate import AnnotationResult, annotate
from repro.analysis.arinfo import ARInfo
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.diagnostics import Diagnostic, run_diagnostics
from repro.analysis.guarded import GuardReport, infer_guards
from repro.analysis.lockmodel import HeldLockTracker, lock_ref
from repro.analysis.locks import LockAnalysis, compute_lock_analysis
from repro.analysis.lsv import compute_lsv
from repro.analysis.pairs import Access, find_pairs
from repro.analysis.prune import MONITOR, STATIC_SAFE, classify_ars
from repro.analysis.watchtype import is_unserializable, remote_watch_kinds

__all__ = [
    "ARInfo",
    "Access",
    "AnnotationResult",
    "CFG",
    "Diagnostic",
    "GuardReport",
    "HeldLockTracker",
    "LockAnalysis",
    "MONITOR",
    "STATIC_SAFE",
    "annotate",
    "build_cfg",
    "classify_ars",
    "compute_lock_analysis",
    "compute_lsv",
    "find_pairs",
    "infer_guards",
    "is_unserializable",
    "lock_ref",
    "run_diagnostics",
]
