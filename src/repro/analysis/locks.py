"""Lock-discipline dataflow: must-hold and may-hold locksets.

A forward dataflow over the per-function CFG, seeded by the
``lock(&m)``/``unlock(&m)`` builtins (recognized through
:mod:`repro.analysis.lockmodel`):

- **must-hold** — intersection at joins; a token in the must set at a
  statement is held on *every* path reaching it. This is the fact the
  guarded-by inference and the AR pruner consume, so it must be an
  under-approximation of the locks actually held at run time.
- **may-hold** — union at joins; used only for diagnostics (W003
  imbalance warnings), where over-approximation merely widens warnings.

Calls propagate locks across functions with context-insensitive call
summaries in the style of :mod:`repro.analysis.interproc`: each function
gets a fixpoint summary of the (global) locks it certainly adds
(``must_added``), possibly releases (``may_released``), and whether it
can release an unidentifiable lock (``releases_unknown`` — an imprecise
unlock or an indirect ``invoke`` anywhere in its transitive callees).

On top of the summaries, an *entry context* per function is computed as
the intersection of the must-hold states at all of its call sites
(restricted to global tokens). Thread entry points — ``main``, spawned
functions and functions whose reference is taken with ``funcref`` — get
the empty context. Any fixpoint of these equations with roots pinned to
the empty set is a sound under-approximation of the locks held at entry;
iterating downward from the full token universe yields the greatest (most
precise) one.

Only *global* lock tokens cross function boundaries (a callee-local lock
name means nothing at the call site); function-local lock tokens still
participate in the intra-procedural sets so diagnostics can reason about
them.
"""

from collections import deque

from repro.minic import ast
from repro.minic.builtins import is_builtin
from repro.analysis.cfg import build_cfg
from repro.analysis.lockmodel import (LOCK_BUILTIN, UNLOCK_BUILTIN,
                                      lock_ref, token_base)

#: Builtins whose call can block the calling thread (W004 evidence).
BLOCKING_BUILTINS = frozenset({LOCK_BUILTIN, "join", "sleep"})


class LockEvent:
    """One lockset-relevant action inside a statement, in evaluation
    order. ``kind`` is 'lock', 'unlock', 'call', 'invoke', 'spawn' or
    'block' (a blocking builtin that does not change locksets)."""

    __slots__ = ("kind", "token", "precise", "name", "line")

    def __init__(self, kind, token=None, precise=False, name=None, line=0):
        self.kind = kind
        self.token = token
        self.precise = precise
        self.name = name
        self.line = line

    def __repr__(self):
        return "LockEvent(%s, %s)" % (self.kind, self.token or self.name)


class LockSummary:
    """Caller-visible lock effect of one function (global tokens only)."""

    __slots__ = ("func_name", "must_added", "may_added", "may_released",
                 "releases_unknown", "may_block")

    def __init__(self, func_name):
        self.func_name = func_name
        self.must_added = frozenset()
        self.may_added = frozenset()
        self.may_released = set()
        self.releases_unknown = False
        self.may_block = False

    def __repr__(self):
        return "LockSummary(%s, +%s, -%s%s)" % (
            self.func_name, sorted(self.must_added),
            sorted(self.may_released),
            ", unknown" if self.releases_unknown else "")


class FuncLocksets:
    """Per-function analysis result."""

    __slots__ = ("func_name", "cfg", "entry_context", "node_events",
                 "node_must_in", "node_may_in", "must_in", "may_in",
                 "stmt_lines", "exit_must", "exit_may",
                 "unmatched_unlocks")

    def __init__(self, func_name, cfg):
        self.func_name = func_name
        self.cfg = cfg
        self.entry_context = frozenset()
        self.node_events = {}     # nid -> tuple of LockEvent
        self.node_must_in = {}    # nid -> frozenset of tokens
        self.node_may_in = {}     # nid -> frozenset of tokens
        self.must_in = {}         # stmt uid -> frozenset of tokens
        self.may_in = {}          # stmt uid -> frozenset of tokens
        self.stmt_lines = {}      # stmt uid -> source line
        self.exit_must = frozenset()
        self.exit_may = frozenset()
        self.unmatched_unlocks = ()  # tuple of (line, token)


class LockAnalysis:
    """Whole-program result of :func:`compute_lock_analysis`."""

    __slots__ = ("per_func", "summaries", "contexts", "global_names",
                 "universe")

    def __init__(self, per_func, summaries, contexts, global_names,
                 universe):
        self.per_func = per_func        # func name -> FuncLocksets
        self.summaries = summaries      # func name -> LockSummary
        self.contexts = contexts        # func name -> frozenset of tokens
        self.global_names = global_names
        self.universe = universe        # all precise global tokens

    def token_is_global(self, token):
        return token_base(token) in self.global_names

    def globals_only(self, tokens):
        return frozenset(t for t in tokens if self.token_is_global(t))

    def must_at(self, func_name, stmt_uid):
        """Must-hold lockset entering the statement, or empty."""
        fr = self.per_func.get(func_name)
        if fr is None:
            return frozenset()
        return fr.must_in.get(stmt_uid, frozenset())

    def global_must_at(self, func_name, stmt_uid):
        return self.globals_only(self.must_at(func_name, stmt_uid))


# ---------------------------------------------------------------------------
# event extraction
# ---------------------------------------------------------------------------


def _stmt_events(stmt):
    """Lock events of one simple statement, in evaluation order."""
    events = []
    if isinstance(stmt, ast.Spawn):
        events.append(LockEvent("spawn", name=stmt.func, line=stmt.line))
        return events
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        if node.name in (LOCK_BUILTIN, UNLOCK_BUILTIN):
            ref = lock_ref(node)
            kind = "lock" if node.name == LOCK_BUILTIN else "unlock"
            events.append(LockEvent(kind, token=ref.token,
                                    precise=ref.precise, line=node.line))
        elif node.name == "invoke":
            events.append(LockEvent("invoke", line=node.line))
        elif node.name in BLOCKING_BUILTINS:
            events.append(LockEvent("block", name=node.name, line=node.line))
        elif not is_builtin(node.name):
            events.append(LockEvent("call", name=node.name, line=node.line))
    return events


def _collect_events(cfg):
    """nid -> tuple of LockEvent for every node of ``cfg``."""
    out = {}
    for node in cfg.nodes:
        if node.kind == "stmt":
            events = _stmt_events(node.stmt)
        elif node.kind == "cond":
            events = (_stmt_events(ast.ExprStmt(node.expr))
                      if _has_calls(node.expr) else [])
        else:
            events = []
        if events:
            out[node.nid] = tuple(events)
    return out


def _has_calls(expr):
    return any(isinstance(n, ast.Call) for n in ast.walk(expr))


# ---------------------------------------------------------------------------
# transfer functions
# ---------------------------------------------------------------------------


def _apply_must(state, events, summaries):
    if not events:
        return state
    s = set(state)
    for ev in events:
        if ev.kind == "lock":
            if ev.precise:
                s.add(ev.token)
        elif ev.kind == "unlock":
            if ev.precise:
                s.discard(ev.token)
            else:
                # an unlock we cannot name may release anything
                s.clear()
        elif ev.kind == "call":
            summ = summaries.get(ev.name)
            if summ is not None:
                if summ.releases_unknown:
                    s.clear()
                else:
                    s.difference_update(summ.may_released)
                s.update(summ.must_added)
        elif ev.kind == "invoke":
            # indirect call: target unknown, assume it may release anything
            s.clear()
    return frozenset(s)


def _apply_may(state, events, summaries):
    if not events:
        return state
    s = set(state)
    for ev in events:
        if ev.kind == "lock":
            s.add(ev.token)
        elif ev.kind == "unlock":
            if ev.precise:
                s.discard(ev.token)
            # an imprecise unlock releases *something*; keeping everything
            # over-approximates, which is the right direction for may
        elif ev.kind == "call":
            summ = summaries.get(ev.name)
            if summ is not None:
                s.update(summ.may_added)
    return frozenset(s)


# ---------------------------------------------------------------------------
# intra-procedural fixpoints
# ---------------------------------------------------------------------------


def _must_flow(cfg, events, entry_state, summaries):
    """Forward must analysis; returns (ins, outs) keyed by nid.

    Unreachable nodes get the empty set (they never execute; claiming
    nothing is held there is harmlessly conservative)."""
    outs = {cfg.entry.nid: entry_state}
    work = deque(cfg.entry.succs)
    while work:
        node = work.popleft()
        pred_outs = [outs[p.nid] for p in node.preds if p.nid in outs]
        if not pred_outs:
            continue
        in_ = frozenset.intersection(*pred_outs)
        out = _apply_must(in_, events.get(node.nid, ()), summaries)
        if outs.get(node.nid) != out:
            outs[node.nid] = out
            work.extend(node.succs)
    ins = {}
    for node in cfg.nodes:
        if node is cfg.entry:
            ins[node.nid] = entry_state
            continue
        pred_outs = [outs[p.nid] for p in node.preds if p.nid in outs]
        ins[node.nid] = (frozenset.intersection(*pred_outs)
                        if pred_outs else frozenset())
    return ins, outs


def _may_flow(cfg, events, entry_state, summaries):
    outs = {n.nid: frozenset() for n in cfg.nodes}
    outs[cfg.entry.nid] = entry_state
    # every node starts on the worklist: outs are pre-seeded with the
    # bottom element, so a first visit that computes bottom would look
    # "unchanged" and never propagate to its successors
    work = deque(n for n in cfg.nodes if n is not cfg.entry)
    while work:
        node = work.popleft()
        in_ = frozenset()
        for p in node.preds:
            in_ = in_ | outs[p.nid]
        out = _apply_may(in_, events.get(node.nid, ()), summaries)
        if out != outs[node.nid]:
            outs[node.nid] = out
            work.extend(node.succs)
    ins = {}
    for node in cfg.nodes:
        if node is cfg.entry:
            ins[node.nid] = entry_state
            continue
        in_ = frozenset()
        for p in node.preds:
            in_ = in_ | outs[p.nid]
        ins[node.nid] = in_
    return ins, outs


# ---------------------------------------------------------------------------
# whole-program analysis
# ---------------------------------------------------------------------------


def compute_lock_analysis(program, pinfo, cfgs=None):
    """Run the lock-discipline analysis over a normalized program.

    ``cfgs`` may supply prebuilt per-function CFGs (the annotator shares
    its own); missing entries are built here. Must run on the
    *pre-annotation* AST.
    """
    global_names = frozenset(pinfo.global_sizes)
    per_func = {}
    for func in program.funcs:
        cfg = cfgs.get(func.name) if cfgs else None
        if cfg is None:
            cfg = build_cfg(func)
        fr = FuncLocksets(func.name, cfg)
        fr.node_events = _collect_events(cfg)
        per_func[func.name] = fr

    def is_global_token(token):
        return token_base(token) in global_names

    # universe of precise global tokens + roots (thread entry points)
    universe = set()
    roots = {"main"}
    referenced = set()
    for func in program.funcs:
        fr = per_func[func.name]
        for events in fr.node_events.values():
            for ev in events:
                if ev.kind in ("lock", "unlock") and ev.precise \
                        and is_global_token(ev.token):
                    universe.add(ev.token)
                elif ev.kind == "spawn":
                    roots.add(ev.name)
                    referenced.add(ev.name)
                elif ev.kind == "call":
                    referenced.add(ev.name)
        # funcref-taken functions can be invoked with anything held
        for stmt in ast.statements(func.body):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and node.name == "funcref":
                    arg = node.args[0] if node.args else None
                    if isinstance(arg, ast.Var):
                        roots.add(arg.name)
                        referenced.add(arg.name)
    universe = frozenset(universe)

    # ---- summaries: syntactic parts first (release effects, blocking) ----
    summaries = {f.name: LockSummary(f.name) for f in program.funcs}
    callee_map = {}
    for func in program.funcs:
        summ = summaries[func.name]
        callees = set()
        for events in per_func[func.name].node_events.values():
            for ev in events:
                if ev.kind == "unlock":
                    if ev.precise:
                        if is_global_token(ev.token):
                            summ.may_released.add(ev.token)
                    else:
                        summ.releases_unknown = True
                elif ev.kind == "invoke":
                    summ.releases_unknown = True
                elif ev.kind in ("block",):
                    summ.may_block = True
                elif ev.kind == "lock":
                    summ.may_block = True
                elif ev.kind == "call":
                    callees.add(ev.name)
        callee_map[func.name] = callees

    changed = True
    while changed:
        changed = False
        for name, summ in summaries.items():
            for callee in callee_map[name]:
                other = summaries.get(callee)
                if other is None:
                    continue
                if other.releases_unknown and not summ.releases_unknown:
                    summ.releases_unknown = True
                    changed = True
                if not other.may_released <= summ.may_released:
                    summ.may_released |= other.may_released
                    changed = True
                if other.may_block and not summ.may_block:
                    summ.may_block = True
                    changed = True

    # ---- summaries: additive parts need the dataflow (least fixpoint) ----
    changed = True
    while changed:
        changed = False
        for func in program.funcs:
            fr = per_func[func.name]
            summ = summaries[func.name]
            _, must_outs = _must_flow(fr.cfg, fr.node_events, frozenset(),
                                      summaries)
            exit_preds = [must_outs[p.nid] for p in fr.cfg.exit.preds
                          if p.nid in must_outs]
            exit_must = (frozenset.intersection(*exit_preds)
                         if exit_preds else frozenset())
            must_added = frozenset(t for t in exit_must
                                   if is_global_token(t))
            _, may_outs = _may_flow(fr.cfg, fr.node_events, frozenset(),
                                    summaries)
            exit_may = frozenset()
            for p in fr.cfg.exit.preds:
                exit_may = exit_may | may_outs[p.nid]
            may_added = frozenset(t for t in exit_may if is_global_token(t))
            if must_added != summ.must_added:
                summ.must_added = must_added
                changed = True
            if may_added != summ.may_added:
                summ.may_added = may_added
                changed = True

    # ---- entry contexts: greatest fixpoint, roots pinned to empty -------
    contexts = {f.name: (frozenset() if f.name in roots else universe)
                for f in program.funcs}
    while True:
        observed = {}  # callee -> intersection of call-site must states

        def record(callee, state):
            state = frozenset(t for t in state if is_global_token(t))
            if callee in observed:
                observed[callee] = observed[callee] & state
            else:
                observed[callee] = state

        for func in program.funcs:
            fr = per_func[func.name]
            ins, _ = _must_flow(fr.cfg, fr.node_events,
                                contexts[func.name], summaries)
            for node in fr.cfg.nodes:
                events = fr.node_events.get(node.nid)
                if not events:
                    continue
                state = ins[node.nid]
                for ev in events:
                    if ev.kind == "call":
                        record(ev.name, state)
                    elif ev.kind == "spawn":
                        record(ev.name, frozenset())
                    state = _apply_must(state, (ev,), summaries)
        new_contexts = {}
        for func in program.funcs:
            name = func.name
            if name in roots:
                new_contexts[name] = frozenset()
            elif name in observed:
                new_contexts[name] = observed[name]
            else:
                # never referenced: dead code, nothing can be assumed
                new_contexts[name] = frozenset()
        if new_contexts == contexts:
            break
        contexts = new_contexts

    # ---- final per-function results with contexts applied ----------------
    for func in program.funcs:
        fr = per_func[func.name]
        fr.entry_context = contexts[func.name]
        must_ins, must_outs = _must_flow(fr.cfg, fr.node_events,
                                         fr.entry_context, summaries)
        may_ins, may_outs = _may_flow(fr.cfg, fr.node_events,
                                      fr.entry_context, summaries)
        fr.node_must_in = must_ins
        fr.node_may_in = may_ins
        unmatched = []
        for node in fr.cfg.nodes:
            stmt = node.stmt if node.kind in ("stmt", "cond") else None
            if stmt is not None:
                fr.must_in[stmt.uid] = must_ins[node.nid]
                fr.may_in[stmt.uid] = may_ins[node.nid]
                fr.stmt_lines[stmt.uid] = stmt.line
            events = fr.node_events.get(node.nid)
            if not events:
                continue
            may_state = may_ins[node.nid]
            for ev in events:
                if (ev.kind == "unlock" and ev.precise
                        and ev.token not in may_state):
                    unmatched.append((ev.line, ev.token))
                may_state = _apply_may(may_state, (ev,), summaries)
        fr.unmatched_unlocks = tuple(unmatched)
        exit_preds = [must_outs[p.nid] for p in fr.cfg.exit.preds
                      if p.nid in must_outs]
        fr.exit_must = (frozenset.intersection(*exit_preds)
                        if exit_preds else frozenset())
        exit_may = frozenset()
        for p in fr.cfg.exit.preds:
            exit_may = exit_may | may_outs[p.nid]
        fr.exit_may = exit_may

    return LockAnalysis(per_func, summaries, contexts, global_names,
                        universe)
