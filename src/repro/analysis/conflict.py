"""Inter-AR static conflict graph over footprints.

Two atomic regions *conflict* when their footprints
(:mod:`repro.analysis.footprint`) may touch a common variable with at
least one write.  Each edge is classified, strongest first:

- ``unserializable`` — the remote side's access kinds complete one of
  Figure 2's four non-serializable single-variable interleavings with
  the local side's (first, second) pair on its own AR variable (the
  AVIO shape: this co-schedule can *flag*, not just suspend);
- ``ww`` — both sides may write a common variable;
- ``rw`` — one side reads what the other writes.

Wild ARs (footprint says "may touch anything") get **no** pairwise
edges — they would connect to every other AR and drown the graph in
quadratic noise.  Wildness stays a node property: the dump shows it and
the conflict-aware scheduler treats a wild AR as conflicting with
everything.  Edges whose every witness variable is a synchronization
variable are kept in the graph (lock-word conflicts are real suspension
sources for the scheduler) but marked ``sync_only`` so the lint pass
can skip them, exactly like W004 skips sync ARs.
"""

from repro.analysis.watchtype import is_unserializable

UNSERIALIZABLE = "unserializable"
WW = "ww"
RW = "rw"

#: scheduler/binning weight of one edge, by class
EDGE_WEIGHTS = {UNSERIALIZABLE: 4, WW: 2, RW: 1}


class ConflictEdge:
    """One conflict between two ARs (``a < b`` by id)."""

    __slots__ = ("a", "b", "kind", "variables", "sync_only")

    def __init__(self, a, b, kind, variables, sync_only):
        self.a = a
        self.b = b
        self.kind = kind
        self.variables = tuple(variables)
        self.sync_only = sync_only

    @property
    def weight(self):
        return EDGE_WEIGHTS[self.kind]

    def as_dict(self):
        return {"a": self.a, "b": self.b, "kind": self.kind,
                "vars": list(self.variables), "sync_only": self.sync_only}

    def __repr__(self):
        return "ConflictEdge(%d-%d %s %s)" % (self.a, self.b, self.kind,
                                              ",".join(self.variables))


class ConflictGraph:
    """All pairwise AR conflicts of one program."""

    __slots__ = ("edges", "wild_ar_ids", "_adj")

    def __init__(self, edges, wild_ar_ids):
        self.edges = tuple(edges)
        self.wild_ar_ids = frozenset(wild_ar_ids)
        self._adj = {}
        for edge in self.edges:
            self._adj.setdefault(edge.a, []).append(edge)
            self._adj.setdefault(edge.b, []).append(edge)

    def edges_of(self, ar_id):
        return tuple(self._adj.get(ar_id, ()))

    def degree(self, ar_id):
        return len(self._adj.get(ar_id, ()))

    def counts(self):
        out = {UNSERIALIZABLE: 0, WW: 0, RW: 0}
        for edge in self.edges:
            out[edge.kind] += 1
        return out

    def as_dict(self):
        return {"edges": [e.as_dict() for e in self.edges],
                "wild_ars": sorted(self.wild_ar_ids),
                "counts": self.counts()}

    def __repr__(self):
        c = self.counts()
        return "ConflictGraph(%d edges: %d unserializable, %d ww, %d rw)" \
            % (len(self.edges), c[UNSERIALIZABLE], c[WW], c[RW])


def _classify(info_a, info_b, fp_a, fp_b, shared):
    """Strongest conflict class over the witness variables."""

    def avio(local, local_fp, remote_fp):
        base = local.var.split("[")[0].lstrip("*")
        if base not in shared:
            return False
        for second in set(local.second_kinds.values()):
            for remote in remote_fp.kinds_of(base):
                if is_unserializable(local.first_kind, remote, second):
                    return True
        return False

    if avio(info_a, fp_a, fp_b) or avio(info_b, fp_b, fp_a):
        return UNSERIALIZABLE
    if fp_a.writes & fp_b.writes & shared:
        return WW
    return RW


def build_conflict_graph(ar_table, footprints, sync_names=frozenset()):
    """Pairwise conflicts over concrete (non-wild) footprints.

    ``sync_names`` — lock words / sync-builtin targets, used only to
    mark ``sync_only`` edges. Returns a :class:`ConflictGraph`.
    """
    ids = sorted(ar_table)
    wild = [ar_id for ar_id in ids
            if footprints.get(ar_id) is not None
            and footprints[ar_id].wild]
    edges = []
    for i, a in enumerate(ids):
        fp_a = footprints.get(a)
        if fp_a is None or fp_a.wild:
            continue
        for b in ids[i + 1:]:
            fp_b = footprints.get(b)
            if fp_b is None or fp_b.wild:
                continue
            shared = fp_a.conflict_vars(fp_b)
            if not shared:
                continue
            kind = _classify(ar_table[a], ar_table[b], fp_a, fp_b, shared)
            sync_only = all(v in sync_names for v in shared)
            edges.append(ConflictEdge(a, b, kind, sorted(shared), sync_only))
    return ConflictGraph(edges, wild)


def conflict_weight(graph, history=None):
    """Scalar conflict weight of one program's graph.

    The fleet scheduler bins jobs by this: heavier programs run first
    (longest-processing-time order) and, with >1 worker, the heaviest
    jobs spread over distinct workers.  ``history`` is an optional
    ``{ar_id: violation count}`` map (the pressure arbiter's
    violation-history shape): past violations multiply an edge's weight,
    so empirically hot conflicts dominate.
    """
    history = history or {}
    total = 0
    for edge in graph.edges:
        boost = 1 + history.get(edge.a, 0) + history.get(edge.b, 0)
        total += edge.weight * boost
    # a wild AR conflicts with everything the graph cannot enumerate
    total += 8 * len(graph.wild_ar_ids)
    return total


__all__ = ["EDGE_WEIGHTS", "RW", "UNSERIALIZABLE", "WW", "ConflictEdge",
           "ConflictGraph", "build_conflict_graph", "conflict_weight"]
