"""Lint diagnostics derived from the lock-discipline analysis.

Stable warning codes (``kivati lint``):

- **W001** — unprotected shared write: a shared variable is written with
  no lock held at any of its access sites.
- **W002** — inconsistent lock discipline: some of a shared variable's
  access sites hold a lock, others do not (or the locked sites hold
  disjoint locks). The classic Eraser report shape, computed statically.
- **W003** — lock/unlock imbalance on a path: an ``unlock`` that no path
  matches with a ``lock``, or a lock held on only *some* paths to a
  function's return.
- **W004** — an atomic region spans a potentially blocking
  synchronization call (``lock``, ``join``, ``sleep`` or a callee that
  may block): the watchpoint stays pinned across the wait, increasing
  missed-AR and suspension pressure.
- **W005** — predicted write-write interleaving: two atomic regions'
  static footprints both may-write a common shared variable, so
  co-scheduling them risks suspensions/undos on every overlap.
- **W006** — predicted read-write interleaving: one region's may-read
  set intersects another's may-write set.
- **W007** — predicted *unserializable* interleaving: the remote
  region's accesses complete one of Figure 2's four non-serializable
  single-variable patterns with the local region's access pair (the
  AVIO shape) — this co-schedule can produce a flagged violation, not
  just scheduler pressure.

Diagnostics carry ``file:line`` anchors and render as text
(``file:line: W00N: message``) or JSON; ordering is fully deterministic.
"""

from repro.analysis import conflict as _c
from repro.analysis import guarded as _g
from repro.minic.ast import AccessKind

CODES = ("W001", "W002", "W003", "W004", "W005", "W006", "W007")

#: conflict-edge class -> lint code
CONFLICT_CODES = {_c.WW: "W005", _c.RW: "W006", _c.UNSERIALIZABLE: "W007"}


class Diagnostic:
    """One lint finding."""

    __slots__ = ("code", "file", "line", "func", "var", "message")

    def __init__(self, code, file, line, message, func=None, var=None):
        self.code = code
        self.file = file
        self.line = line
        self.func = func
        self.var = var
        self.message = message

    def format(self):
        return "%s:%d: %s: %s" % (self.file, self.line, self.code,
                                  self.message)

    def as_dict(self):
        return {
            "code": self.code,
            "file": self.file,
            "line": self.line,
            "func": self.func,
            "var": self.var,
            "message": self.message,
        }

    def __repr__(self):
        return "Diagnostic(%s)" % self.format()


def _sites_sorted(vg):
    return sorted(vg.sites, key=lambda s: (s.line, s.func, str(s.kind)))


def _first_line(vg, pred):
    for site in _sites_sorted(vg):
        if pred(site):
            return site.line, site.func
    sites = _sites_sorted(vg)
    if sites:
        return sites[0].line, sites[0].func
    return 0, None


def _guard_diags(result, filename, out):
    guards = result.guards
    if guards is None:
        return
    for vg in guards.all_guards():
        if vg.verdict != _g.UNPROTECTED or not vg.has_writes:
            continue
        if vg.inconsistent:
            line, func = _first_line(vg, lambda s: not s.locks)
            out.append(Diagnostic(
                "W002", filename, line,
                "inconsistent lock discipline on '%s': %d of %d access "
                "sites hold a lock" % (vg.display_name(), vg.n_locked,
                                       vg.n_total),
                func=func, var=vg.display_name()))
        else:
            line, func = _first_line(
                vg, lambda s: s.kind == AccessKind.WRITE)
            out.append(Diagnostic(
                "W001", filename, line,
                "shared variable '%s' is written with no lock held"
                % vg.display_name(),
                func=func, var=vg.display_name()))


def _lock_diags(result, filename, out):
    locks = result.locks
    if locks is None:
        return
    for name in sorted(locks.per_func):
        fr = locks.per_func[name]
        for line, token in sorted(fr.unmatched_unlocks):
            out.append(Diagnostic(
                "W003", filename, line,
                "unlock of '%s' without a matching lock on any path "
                "in '%s'" % (token, name),
                func=name, var=token))
        # a lock held on some paths to return but not all: path imbalance
        func_line = _func_line(result, name)
        for token in sorted(fr.exit_may - fr.exit_must):
            if not locks.token_is_global(token):
                continue
            out.append(Diagnostic(
                "W003", filename, func_line,
                "lock '%s' is held on only some paths to the return of "
                "'%s'" % (token, name),
                func=name, var=token))


def _func_line(result, name):
    for func in result.ast.funcs:
        if func.name == name:
            return func.line
    return 0


def _ar_diags(result, filename, out):
    prune = result.prune
    if prune is None:
        return
    for ar_id in sorted(prune.verdicts):
        verdict = prune.verdicts[ar_id]
        if not verdict.blocking:
            continue
        info = result.ar_table[ar_id]
        if info.is_sync:
            # a lock word's own AR trivially spans its lock call
            continue
        first_line, first_name = verdict.blocking[0]
        extra = ("" if len(verdict.blocking) == 1
                 else " (+%d more)" % (len(verdict.blocking) - 1))
        out.append(Diagnostic(
            "W004", filename, info.line,
            "atomic region %d on '%s' spans blocking call '%s' "
            "(line %d)%s" % (ar_id, info.var, first_name, first_line,
                             extra),
            func=info.func, var=info.var))


_CONFLICT_PHRASE = {
    _c.WW: "may write-write conflict on",
    _c.RW: "may read-write conflict on",
    _c.UNSERIALIZABLE: "admit an unserializable interleaving on",
}


def _conflict_diags(result, filename, out):
    graph = result.conflicts
    if graph is None:
        return
    for edge in graph.edges:
        # sync ARs and lock-word-only conflicts are the scheduler's
        # business, not the programmer's (same carve-out as W004)
        if edge.sync_only:
            continue
        info_a = result.ar_table[edge.a]
        info_b = result.ar_table[edge.b]
        if info_a.is_sync or info_b.is_sync:
            continue
        out.append(Diagnostic(
            CONFLICT_CODES[edge.kind], filename, info_a.line,
            "atomic regions %d (%s:%d) and %d (%s:%d) %s '%s'"
            % (edge.a, info_a.func, info_a.line,
               edge.b, info_b.func, info_b.line,
               _CONFLICT_PHRASE[edge.kind],
               "', '".join(edge.variables)),
            func=info_a.func, var=",".join(edge.variables)))


def run_diagnostics(result, filename="<source>"):
    """All lint findings for one :class:`AnnotationResult`, sorted."""
    out = []
    _guard_diags(result, filename, out)
    _lock_diags(result, filename, out)
    _ar_diags(result, filename, out)
    _conflict_diags(result, filename, out)
    out.sort(key=lambda d: (d.line, d.code, d.var or "", d.message))
    return out


def render_diagnostics(diags, stream_name=None):
    """Plain-text lint report."""
    lines = [d.format() for d in diags]
    counts = {}
    for d in diags:
        counts[d.code] = counts.get(d.code, 0) + 1
    summary = ", ".join("%d %s" % (counts[c], c) for c in CODES
                        if c in counts)
    lines.append("%d warning%s%s" % (len(diags),
                                     "" if len(diags) == 1 else "s",
                                     " (%s)" % summary if summary else ""))
    return "\n".join(lines)


def diagnostics_json(diags):
    """JSON-able payload, stable across runs."""
    return {"warnings": [d.as_dict() for d in diags],
            "count": len(diags)}


# ---------------------------------------------------------------------------
# --dump-analysis payload
# ---------------------------------------------------------------------------


def analysis_dump(result):
    """JSON-able dump of everything the static analysis concluded:
    per-function LSVs and locksets, per-variable guard verdicts and the
    per-AR prune classification."""
    funcs = {}
    for name in sorted(result.lsvs):
        lsv = result.lsvs[name]
        entry = {
            "lsv": sorted(lsv.shared),
            "sync_vars": sorted(lsv.sync_vars),
        }
        if result.locks is not None:
            fr = result.locks.per_func.get(name)
            if fr is not None:
                entry["entry_context"] = sorted(fr.entry_context)
                entry["exit_must"] = sorted(fr.exit_must)
                entry["exit_may"] = sorted(fr.exit_may)
                locksets = {}
                for uid in sorted(fr.must_in):
                    line = fr.stmt_lines.get(uid, 0)
                    tokens = sorted(fr.must_in[uid])
                    if tokens:
                        locksets.setdefault(str(line), tokens)
                entry["must_hold_by_line"] = locksets
        if result.locks is not None:
            summ = result.locks.summaries.get(name)
            if summ is not None:
                entry["summary"] = {
                    "must_added": sorted(summ.must_added),
                    "may_added": sorted(summ.may_added),
                    "may_released": sorted(summ.may_released),
                    "releases_unknown": summ.releases_unknown,
                    "may_block": summ.may_block,
                }
        funcs[name] = entry

    guards = []
    if result.guards is not None:
        for vg in result.guards.all_guards():
            guards.append({
                "name": vg.display_name(),
                "scope": vg.scope,
                "verdict": vg.verdict,
                "locks": sorted(vg.locks),
                "sites_locked": vg.n_locked,
                "sites_total": vg.n_total,
                "has_writes": vg.has_writes,
            })

    ars = []
    for ar_id in sorted(result.ar_table):
        info = result.ar_table[ar_id]
        entry = {
            "ar_id": ar_id,
            "func": info.func,
            "var": info.var,
            "line": info.line,
            "is_sync": info.is_sync,
        }
        if result.prune is not None:
            v = result.prune.verdict(ar_id)
            if v is not None:
                entry["verdict"] = v.verdict
                entry["reason"] = v.reason
                if v.lock:
                    entry["lock"] = v.lock
        ars.append(entry)

    dump = {"functions": funcs, "guards": guards, "ars": ars}
    if result.prune is not None:
        dump["prune_counts"] = result.prune.counts()
    return dump


def render_dump(dump):
    """Human-readable rendering of :func:`analysis_dump`."""
    lines = []
    for name in sorted(dump["functions"]):
        entry = dump["functions"][name]
        lines.append("function %s:" % name)
        lines.append("  lsv: %s" % (", ".join(entry["lsv"]) or "(none)"))
        if entry.get("sync_vars"):
            lines.append("  sync vars: %s" % ", ".join(entry["sync_vars"]))
        if "entry_context" in entry:
            lines.append("  entry locks: %s"
                         % (", ".join(entry["entry_context"]) or "(none)"))
        for line_no in sorted(entry.get("must_hold_by_line", {}),
                              key=int):
            lines.append("  line %s holds: %s"
                         % (line_no,
                            ", ".join(entry["must_hold_by_line"][line_no])))
        summ = entry.get("summary")
        if summ and (summ["must_added"] or summ["may_released"]
                     or summ["releases_unknown"] or summ["may_block"]):
            bits = []
            if summ["must_added"]:
                bits.append("+%s" % ",".join(summ["must_added"]))
            if summ["may_released"]:
                bits.append("-%s" % ",".join(summ["may_released"]))
            if summ["releases_unknown"]:
                bits.append("releases-unknown")
            if summ["may_block"]:
                bits.append("may-block")
            lines.append("  summary: %s" % " ".join(bits))
    lines.append("guards:")
    for g in dump["guards"]:
        if g["verdict"] == "guarded-by":
            lines.append("  %s: guarded by '%s'"
                         % (g["name"], "', '".join(g["locks"])))
        else:
            lines.append("  %s: %s" % (g["name"], g["verdict"]))
    lines.append("atomic regions:")
    for entry in dump["ars"]:
        verdict = entry.get("verdict", "?")
        lock = " [%s]" % entry["lock"] if entry.get("lock") else ""
        lines.append("  AR %d %s:%d var=%s -> %s (%s)%s"
                     % (entry["ar_id"], entry["func"], entry["line"],
                        entry["var"], verdict, entry.get("reason", "?"),
                        lock))
    if "prune_counts" in dump:
        counts = dump["prune_counts"]
        lines.append("prune: %d static-safe, %d monitored"
                     % (counts.get("static-safe", 0),
                        counts.get("monitor", 0)))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# --dump-footprints payload
# ---------------------------------------------------------------------------


def footprint_dump(result):
    """JSON-able dump of per-function and per-AR footprints plus the
    inter-AR conflict graph (``kivati annotate --dump-footprints``)."""
    funcs = {}
    for name in sorted(result.func_footprints):
        funcs[name] = result.func_footprints[name].as_dict()
    ars = []
    for ar_id in sorted(result.footprints):
        info = result.ar_table[ar_id]
        entry = {"ar_id": ar_id, "func": info.func, "var": info.var,
                 "line": info.line, "is_sync": info.is_sync}
        entry.update(result.footprints[ar_id].as_dict())
        ars.append(entry)
    dump = {"functions": funcs, "ars": ars}
    if result.conflicts is not None:
        dump["conflicts"] = result.conflicts.as_dict()
    return dump


def render_footprints(dump):
    """Human-readable rendering of :func:`footprint_dump`."""

    def fmt(entry):
        bits = []
        if entry["reads"]:
            bits.append("R{%s}" % ",".join(entry["reads"]))
        if entry["writes"]:
            bits.append("W{%s}" % ",".join(entry["writes"]))
        if entry["wild"]:
            bits.append("wild")
        return " ".join(bits) or "(empty)"

    lines = ["function footprints:"]
    for name in sorted(dump["functions"]):
        lines.append("  %s: %s" % (name, fmt(dump["functions"][name])))
    lines.append("atomic-region footprints:")
    for entry in dump["ars"]:
        lines.append("  AR %d %s:%d var=%s%s -> %s"
                     % (entry["ar_id"], entry["func"], entry["line"],
                        entry["var"], " [sync]" if entry["is_sync"] else "",
                        fmt(entry)))
    graph = dump.get("conflicts")
    if graph is not None:
        counts = graph["counts"]
        lines.append("conflict graph: %d edges (%d unserializable, "
                     "%d ww, %d rw), %d wild AR(s)"
                     % (len(graph["edges"]), counts["unserializable"],
                        counts["ww"], counts["rw"],
                        len(graph["wild_ars"])))
        for edge in graph["edges"]:
            lines.append("  AR %d <-> AR %d: %s on %s%s"
                         % (edge["a"], edge["b"], edge["kind"],
                            ", ".join(edge["vars"]),
                            " [sync]" if edge["sync_only"] else ""))
    return "\n".join(lines)
