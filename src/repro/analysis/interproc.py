"""Inter-procedural extension (Section 3.5 future work).

"Kivati could be enhanced to perform inter-procedural analysis to detect
ARs that span subroutines, allowing it to detect atomicity violations on
such ARs as well."

The extension is context-insensitive call summaries: for every function,
compute the set of *global* shared variables it (transitively) accesses
and with which kinds. During pairing, a call statement then contributes
synthetic accesses to those globals at the call site, so a caller access
can pair with "the callee touches it" — producing an atomic region whose
begin_atomic precedes the caller's access and whose end_atomic follows
the call statement, i.e. an AR spanning the subroutine.

Summaries cover globals only (a callee's locals are meaningless at the
call site, and by-reference parameters would require the pointer analysis
the paper also defers); dereference pseudo-variables of global pointers
are included since their address is caller-computable.
"""

from repro.minic import ast
from repro.minic.ast import AccessKind
from repro.minic.builtins import SYNC_BUILTINS, is_builtin


class CallSummary:
    """Per-function transitive global-access summary."""

    __slots__ = ("func_name", "reads", "writes")

    def __init__(self, func_name):
        self.func_name = func_name
        self.reads = set()
        self.writes = set()

    def touched(self):
        return self.reads | self.writes

    def kinds_for(self, var):
        kinds = []
        if var in self.reads:
            kinds.append(AccessKind.READ)
        if var in self.writes:
            kinds.append(AccessKind.WRITE)
        return kinds

    def __repr__(self):
        return "CallSummary(%s, R=%s, W=%s)" % (
            self.func_name, sorted(self.reads), sorted(self.writes))


def _direct_global_accesses(func, pinfo):
    """(reads, writes, callees) of one function over global names and
    global-pointer deref pseudo-names."""
    global_names = set(pinfo.global_sizes)
    reads = set()
    writes = set()
    callees = set()

    def is_global(name):
        return name in global_names

    def read_expr(expr):
        if isinstance(expr, ast.Var):
            if is_global(expr.name):
                reads.add(expr.name)
        elif isinstance(expr, ast.Deref):
            if isinstance(expr.operand, ast.Var):
                if is_global(expr.operand.name):
                    reads.add(expr.operand.name)
                    reads.add("*" + expr.operand.name)
            else:
                read_expr(expr.operand)
        elif isinstance(expr, ast.AddrOf):
            if isinstance(expr.operand, ast.Index):
                read_expr(expr.operand.index)
        elif isinstance(expr, ast.Index):
            read_expr(expr.index)
            if is_global(expr.base.name):
                reads.add(expr.base.name)
        elif isinstance(expr, ast.Unary):
            read_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            read_expr(expr.left)
            read_expr(expr.right)
        elif isinstance(expr, ast.Call):
            if not is_builtin(expr.name):
                callees.add(expr.name)
            elif expr.name in SYNC_BUILTINS and expr.args:
                arg = expr.args[0]
                if isinstance(arg, ast.AddrOf) and isinstance(arg.operand,
                                                              ast.Var):
                    name = arg.operand.name
                    if is_global(name):
                        if expr.name != "unlock":
                            reads.add(name)
                        writes.add(name)
            for a in expr.args:
                read_expr(a)

    def write_target(target):
        if isinstance(target, ast.Var):
            if is_global(target.name):
                writes.add(target.name)
        elif isinstance(target, ast.Deref):
            if isinstance(target.operand, ast.Var):
                if is_global(target.operand.name):
                    reads.add(target.operand.name)
                    writes.add("*" + target.operand.name)
            else:
                read_expr(target.operand)
        elif isinstance(target, ast.Index):
            read_expr(target.index)
            if is_global(target.base.name):
                writes.add(target.base.name)

    for stmt in ast.statements(func.body):
        if isinstance(stmt, ast.Decl) and stmt.init is not None:
            read_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            read_expr(stmt.value)
            write_target(stmt.target)
        elif isinstance(stmt, ast.ExprStmt):
            read_expr(stmt.expr)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            read_expr(stmt.value)
        elif isinstance(stmt, ast.Spawn):
            for a in stmt.args:
                read_expr(a)
        elif isinstance(stmt, (ast.If, ast.While)):
            read_expr(stmt.cond)
    return reads, writes, callees


def compute_call_summaries(program, pinfo):
    """Fixpoint transitive summaries for every function.

    Returns {func_name: CallSummary}. Spawned functions are *not* folded
    into the spawner (they run in another thread; their accesses are not
    part of the caller's sequential execution).
    """
    direct = {}
    callee_map = {}
    for func in program.funcs:
        reads, writes, callees = _direct_global_accesses(func, pinfo)
        summary = CallSummary(func.name)
        summary.reads = reads
        summary.writes = writes
        direct[func.name] = summary
        callee_map[func.name] = callees

    changed = True
    while changed:
        changed = False
        for name, summary in direct.items():
            for callee in callee_map[name]:
                other = direct.get(callee)
                if other is None:
                    continue
                if not other.reads <= summary.reads:
                    summary.reads |= other.reads
                    changed = True
                if not other.writes <= summary.writes:
                    summary.writes |= other.writes
                    changed = True
    return direct
