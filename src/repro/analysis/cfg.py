"""Per-subroutine control-flow graph construction.

Nodes are simple statements plus condition pseudo-nodes for ``if`` and
``while``. The annotator runs on normalized ASTs (see
:mod:`repro.analysis.normalize`) where conditions are access-free, but the
CFG handles general conditions so it is independently reusable.
"""

from repro.minic import ast


class CFGNode:
    """One CFG node.

    ``kind`` is 'entry', 'exit', 'stmt' or 'cond'. ``stmt`` is the AST
    statement for 'stmt' nodes; ``expr`` the condition for 'cond' nodes.
    """

    __slots__ = ("nid", "kind", "stmt", "expr", "succs", "preds")

    def __init__(self, nid, kind, stmt=None, expr=None):
        self.nid = nid
        self.kind = kind
        self.stmt = stmt
        self.expr = expr
        self.succs = []
        self.preds = []

    def __repr__(self):
        return "CFGNode(%d, %s)" % (self.nid, self.kind)


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, func_name):
        self.func_name = func_name
        self.nodes = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")

    def _new(self, kind, stmt=None, expr=None):
        node = CFGNode(len(self.nodes), kind, stmt, expr)
        self.nodes.append(node)
        return node

    def add_edge(self, src, dst):
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def stmt_nodes(self):
        return [n for n in self.nodes if n.kind == "stmt"]


def build_cfg(func):
    """Build the CFG of a FuncDef."""
    cfg = CFG(func.name)
    builder = _Builder(cfg)
    tails = builder.build_block(func.body, [cfg.entry])
    for node in tails:
        cfg.add_edge(node, cfg.exit)
    return cfg


class _Builder:
    def __init__(self, cfg):
        self.cfg = cfg
        # stack of (break_sources, continue_target_node-or-None placeholder)
        self.loops = []

    def _link(self, sources, node):
        for src in sources:
            self.cfg.add_edge(src, node)

    def build_block(self, block, sources):
        """Wire ``block`` after ``sources``; returns the fall-through tail
        nodes (empty if all paths returned/broke)."""
        current = sources
        for stmt in block.stmts:
            current = self.build_stmt(stmt, current)
            if not current:
                # unreachable code after return/break/continue still gets
                # nodes (it exists in the binary) but no incoming edges
                current = []
        return current

    def build_stmt(self, stmt, sources):
        cfg = self.cfg
        if isinstance(stmt, ast.Block):
            return self.build_block(stmt, sources)
        if isinstance(stmt, ast.If):
            cond = cfg._new("cond", stmt=stmt, expr=stmt.cond)
            self._link(sources, cond)
            then_tails = self.build_stmt(stmt.then, [cond])
            if stmt.els is not None:
                else_tails = self.build_stmt(stmt.els, [cond])
            else:
                else_tails = [cond]
            return then_tails + else_tails
        if isinstance(stmt, ast.While):
            cond = cfg._new("cond", stmt=stmt, expr=stmt.cond)
            self._link(sources, cond)
            breaks = []
            self.loops.append((breaks, cond))
            body_tails = self.build_stmt(stmt.body, [cond])
            self.loops.pop()
            self._link(body_tails, cond)  # back edge
            exits = breaks
            if not isinstance(stmt.cond, ast.IntLit) or stmt.cond.value == 0:
                exits = exits + [cond]  # cond can fall through when false
            return exits
        if isinstance(stmt, ast.Break):
            node = cfg._new("stmt", stmt=stmt)
            self._link(sources, node)
            if self.loops:
                self.loops[-1][0].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg._new("stmt", stmt=stmt)
            self._link(sources, node)
            if self.loops:
                cfg.add_edge(node, self.loops[-1][1])
            return []
        if isinstance(stmt, ast.Return):
            node = cfg._new("stmt", stmt=stmt)
            self._link(sources, node)
            cfg.add_edge(node, cfg.exit)
            return []
        # simple statement
        node = cfg._new("stmt", stmt=stmt)
        self._link(sources, node)
        return [node]
