"""Atomic-region pairing: the reaching-latest-access DFA (Section 3.1).

"Kivati performs a path-insensitive DFA on the CFG, tracking the program
statement and type of each access to variables in the LSV. ... it forms
intra-procedural local access pairs by matching each shared variable
access with another access to the same variable that precedes it in the
DFA. The operation is conceptually similar to a reaching-definition
analysis except that Kivati considers all preceding accesses, not just
definitions."

Accordingly, the dataflow fact at each point maps each shared variable to
the set of accesses that are the *latest* access to it along some path;
every access pairs with every reaching latest access and then replaces
them.
"""

from repro.minic import ast
from repro.minic.ast import AccessKind
from repro.minic.builtins import SYNC_BUILTINS
from repro.analysis.cfg import build_cfg


class Access:
    """One static access to a shared variable."""

    __slots__ = ("aid", "var", "kind", "stmt_uid", "line", "lvalue", "order")

    def __init__(self, aid, var, kind, stmt_uid, line, lvalue, order):
        self.aid = aid
        self.var = var
        self.kind = kind
        self.stmt_uid = stmt_uid
        self.line = line
        self.lvalue = lvalue
        self.order = order

    def __repr__(self):
        return "Access(%d, %s %s @uid%d)" % (self.aid, self.kind, self.var,
                                             self.stmt_uid)


class PairResult:
    """Pairs and accesses of one function."""

    __slots__ = ("func_name", "accesses", "pairs")

    def __init__(self, func_name, accesses, pairs):
        self.func_name = func_name
        self.accesses = accesses  # aid -> Access
        self.pairs = pairs        # set of (first_aid, second_aid)


class _Extractor:
    """Collects ordered shared-variable accesses of one statement.

    With ``summaries`` (inter-procedural mode), a call to a user function
    contributes synthetic accesses to the globals the callee transitively
    touches, so pairs — and therefore atomic regions — can span
    subroutines (Section 3.5 future work).
    """

    def __init__(self, lsv, array_names, summaries=None, points_to=None,
                 element_granularity=False):
        self.lsv = lsv
        self.array_names = array_names
        self.summaries = summaries
        self.points_to = points_to
        self.element_granularity = element_granularity
        self.out = []

    def _emit(self, var, kind, lvalue):
        base = var.split("[")[0].lstrip("*")
        if var in self.lsv.shared or base in self.lsv.shared:
            self.out.append((var, kind, lvalue))

    def _deref_var(self, pointer_name):
        """Name under which a ``*pointer`` access is tracked: the aliased
        variable when pointer analysis resolves it uniquely, else the
        name-based pseudo-variable of the base prototype."""
        if self.points_to is not None:
            resolved = self.points_to.resolve_deref(pointer_name)
            if resolved is not None:
                return resolved
        return "*" + pointer_name

    def _index_var(self, base, index_expr):
        """Array accesses with constant indices get per-element names
        under the pointer-analysis extension."""
        if self.element_granularity and isinstance(index_expr, ast.IntLit):
            return "%s[%d]" % (base, index_expr.value)
        return base

    def reads(self, expr):
        if isinstance(expr, ast.Var):
            if expr.name not in self.array_names:
                self._emit(expr.name, AccessKind.READ, expr)
        elif isinstance(expr, ast.Deref):
            if isinstance(expr.operand, ast.Var):
                self._emit(expr.operand.name, AccessKind.READ, expr.operand)
                self._emit(self._deref_var(expr.operand.name),
                           AccessKind.READ, expr)
            else:
                self.reads(expr.operand)
        elif isinstance(expr, ast.AddrOf):
            if isinstance(expr.operand, ast.Index):
                self.reads(expr.operand.index)
        elif isinstance(expr, ast.Index):
            self.reads(expr.index)
            base = expr.base.name
            if base in self.array_names:
                self._emit(self._index_var(base, expr.index),
                           AccessKind.READ, expr)
            else:
                self._emit(base, AccessKind.READ, expr.base)
                self._emit(self._deref_var(base), AccessKind.READ, expr)
        elif isinstance(expr, ast.Unary):
            self.reads(expr.operand)
        elif isinstance(expr, ast.Binary):
            self.reads(expr.left)
            self.reads(expr.right)
        elif isinstance(expr, ast.Call):
            if expr.name in SYNC_BUILTINS and expr.args:
                arg = expr.args[0]
                for other in expr.args[1:]:
                    self.reads(other)
                if isinstance(arg, ast.AddrOf) and isinstance(arg.operand,
                                                              ast.Var):
                    name = arg.operand.name
                    if expr.name != "unlock":
                        self._emit(name, AccessKind.READ, arg.operand)
                    self._emit(name, AccessKind.WRITE, arg.operand)
                else:
                    self.reads(arg)
            else:
                for a in expr.args:
                    self.reads(a)
                self._emit_call_summary(expr.name)

    def _emit_call_summary(self, callee):
        if self.summaries is None:
            return
        summary = self.summaries.get(callee)
        if summary is None:
            return
        for var in sorted(summary.touched()):
            if var.startswith("*"):
                lvalue = ast.Deref(ast.Var(var[1:]))
            else:
                lvalue = ast.Var(var)
            for kind in summary.kinds_for(var):
                self._emit(var, kind, lvalue)

    def write_target(self, target):
        if isinstance(target, ast.Var):
            self._emit(target.name, AccessKind.WRITE, target)
        elif isinstance(target, ast.Deref):
            if isinstance(target.operand, ast.Var):
                self._emit(target.operand.name, AccessKind.READ, target.operand)
                self._emit(self._deref_var(target.operand.name),
                           AccessKind.WRITE, target)
            else:
                self.reads(target.operand)
        elif isinstance(target, ast.Index):
            self.reads(target.index)
            base = target.base.name
            if base in self.array_names:
                self._emit(self._index_var(base, target.index),
                           AccessKind.WRITE, target)
            else:
                self._emit(base, AccessKind.READ, target.base)
                self._emit(self._deref_var(base), AccessKind.WRITE, target)


def stmt_accesses(stmt, lsv, array_names, summaries=None, points_to=None,
                  element_granularity=False):
    """Return ordered (var, kind, lvalue) tuples for a simple statement."""
    ex = _Extractor(lsv, array_names, summaries, points_to,
                    element_granularity)
    if isinstance(stmt, ast.Decl):
        if stmt.init is not None:
            ex.reads(stmt.init)
            ex._emit(stmt.name, AccessKind.WRITE, ast.Var(stmt.name, stmt.line,
                                                          stmt.col))
    elif isinstance(stmt, ast.Assign):
        ex.reads(stmt.value)
        ex.write_target(stmt.target)
    elif isinstance(stmt, ast.ExprStmt):
        ex.reads(stmt.expr)
    elif isinstance(stmt, ast.Spawn):
        for a in stmt.args:
            ex.reads(a)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            ex.reads(stmt.value)
    return ex.out


def expr_accesses(expr, lsv, array_names, summaries=None, points_to=None,
                  element_granularity=False):
    """Accesses performed by evaluating a bare expression (conditions)."""
    ex = _Extractor(lsv, array_names, summaries, points_to,
                    element_granularity)
    ex.reads(expr)
    return ex.out


def find_pairs(func, lsv, pinfo, cfg=None, summaries=None, points_to=None,
               element_granularity=False):
    """Run the pairing DFA on ``func``; returns a PairResult.

    ``summaries`` enables the inter-procedural extension (call statements
    contribute the callee's transitive global accesses); ``points_to``
    and ``element_granularity`` enable the pointer-analysis extension."""
    if cfg is None:
        cfg = build_cfg(func)
    finfo = pinfo.funcs[func.name]
    array_names = set(pinfo.global_arrays) | set(finfo.array_names)

    accesses = {}
    node_accesses = {}
    next_aid = [0]

    def register(node, tuples):
        regs = []
        for order, (var, kind, lvalue) in enumerate(tuples):
            aid = next_aid[0]
            next_aid[0] += 1
            stmt = node.stmt
            acc = Access(aid, var, kind, stmt.uid if stmt is not None else 0,
                         stmt.line if stmt is not None else 0, lvalue, order)
            accesses[aid] = acc
            regs.append(acc)
        node_accesses[node.nid] = regs

    for node in cfg.nodes:
        if node.kind == "stmt":
            register(node, stmt_accesses(node.stmt, lsv, array_names,
                                         summaries, points_to,
                                         element_granularity))
        elif node.kind == "cond":
            register(node, expr_accesses(node.expr, lsv, array_names,
                                         summaries, points_to,
                                         element_granularity))
        else:
            node_accesses[node.nid] = []

    # fixpoint: OUT[node] as dict var -> frozenset(aid)
    outs = {node.nid: {} for node in cfg.nodes}

    def transfer(node, state):
        state = dict(state)
        for acc in node_accesses[node.nid]:
            state[acc.var] = frozenset((acc.aid,))
        return state

    def merged_in(node):
        state = {}
        for pred in node.preds:
            for var, aids in outs[pred.nid].items():
                if var in state:
                    state[var] = state[var] | aids
                else:
                    state[var] = aids
        return state

    worklist = list(cfg.nodes)
    while worklist:
        node = worklist.pop()
        new_out = transfer(node, merged_in(node))
        if new_out != outs[node.nid]:
            outs[node.nid] = new_out
            for succ in node.succs:
                if succ not in worklist:
                    worklist.append(succ)

    # final pass: collect pairs
    pairs = set()
    for node in cfg.nodes:
        state = merged_in(node)
        for acc in node_accesses[node.nid]:
            # sorted so pair discovery order (and everything derived from
            # it) is independent of set iteration order
            for prev_aid in sorted(state.get(acc.var, ())):
                pairs.add((prev_aid, acc.aid))
            state[acc.var] = frozenset((acc.aid,))
    return PairResult(func.name, accesses, pairs)
