"""Figure 6 and Figure 2 logic.

Figure 2 lists the four non-serializable interleavings of a remote access
with a local access pair:

    (local R, remote W, local R) — the two local reads see different values
    (local W, remote W, local R) — the local read sees the remote write
    (local W, remote R, local W) — the remote read sees an intermediate value
    (local R, remote W, local W) — the remote write is lost

Figure 6 derives, from the two local access kinds, which remote access
kind begin_atomic must watch for:

    first R, second R -> remote W
    first R, second W -> remote W
    first W, second R -> remote W
    first W, second W -> remote R

When a first access pairs with both a second read and a second write along
different paths (the bottom-right case), the union is watched and the
recorded first-access type disambiguates at end_atomic time.
"""

from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE

_UNSERIALIZABLE = frozenset([
    (R, W, R),
    (W, W, R),
    (W, R, W),
    (R, W, W),
])

_WATCH = {
    (R, R): (False, True),   # (watch_read, watch_write)
    (R, W): (False, True),
    (W, R): (False, True),
    (W, W): (True, False),
}


def is_unserializable(first, remote, second):
    """True if (first, remote, second) forms a non-serializable
    interleaving (Figure 2)."""
    return (first, remote, second) in _UNSERIALIZABLE


def remote_watch_kinds(first, second):
    """Figure 6: (watch_read, watch_write) for one local access pair."""
    return _WATCH[(first, second)]


def union_watch_kinds(first, second_kinds):
    """Watch kinds for an AR whose first access pairs with several second
    accesses (possibly of different kinds on different paths)."""
    watch_read = False
    watch_write = False
    for second in second_kinds:
        r, w = _WATCH[(first, second)]
        watch_read = watch_read or r
        watch_write = watch_write or w
    return watch_read, watch_write
