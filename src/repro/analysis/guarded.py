"""Static guarded-by inference: which lock protects each shared variable.

Eraser's lockset discipline, applied statically: for every variable the
LSV construction considers shared, intersect the must-hold locksets (from
:mod:`repro.analysis.locks`) at all of its access sites. The verdicts:

- ``GUARDED_BY`` — every access site holds a common global lock;
- ``READ_SHARED`` — the variable is never written (initialization is the
  global initializer, outside any thread);
- ``THREAD_LOCAL`` — a function-local the LSV over-approximated into the
  shared set (typically via the dataflow closure) whose address is never
  taken, so no other thread can reach its stack slot;
- ``SYNC`` — lock words, CAS/atomic targets and spin flags; their
  accesses are intentionally racy and are the fourth optimization's
  domain, not this analysis';
- ``UNPROTECTED`` — everything else (including *inconsistent* discipline,
  where only some sites are locked — W002's evidence).

Writes through pointers are resolved with the Andersen-lite points-to
sets (:mod:`repro.analysis.pointers`): each named target gets a synthetic
access site. A dereference with an *empty* points-to set is wild — it
poisons the whole program (no READ_SHARED / THREAD_LOCAL verdicts, and
any guarded-by intersection is discarded), because it could touch any
word without holding anything.
"""

from repro.minic import ast
from repro.minic.ast import AccessKind
from repro.analysis.lockmodel import token_base

GUARDED_BY = "guarded-by"
READ_SHARED = "read-shared"
THREAD_LOCAL = "thread-local"
UNPROTECTED = "unprotected"
SYNC = "sync"


class AccessSite:
    """One (possibly synthetic) access to a classified variable."""

    __slots__ = ("func", "line", "kind", "locks")

    def __init__(self, func, line, kind, locks):
        self.func = func
        self.line = line
        self.kind = kind
        self.locks = locks  # frozenset of global lock tokens (must-hold)

    def __repr__(self):
        return "AccessSite(%s:%d %s %s)" % (self.func, self.line, self.kind,
                                            sorted(self.locks))


class VarGuard:
    """Classification of one variable."""

    __slots__ = ("name", "scope", "verdict", "locks", "sites", "n_locked",
                 "n_total", "has_writes")

    def __init__(self, name, scope, verdict, locks, sites, n_locked,
                 n_total, has_writes):
        self.name = name
        self.scope = scope          # "global" or the owning function name
        self.verdict = verdict
        self.locks = locks          # common guard tokens (GUARDED_BY only)
        self.sites = sites          # tuple of AccessSite, source order
        self.n_locked = n_locked
        self.n_total = n_total
        self.has_writes = has_writes

    @property
    def inconsistent(self):
        """Some but not all sites locked, or locked under disjoint locks —
        the shape W002 warns about."""
        return (self.verdict == UNPROTECTED and self.n_locked > 0
                and self.n_total > 0)

    def display_name(self):
        if self.scope == "global":
            return self.name
        return "%s::%s" % (self.scope, self.name)

    def describe(self):
        if self.verdict == GUARDED_BY:
            return "%s: guarded by '%s'" % (self.display_name(),
                                            "', '".join(sorted(self.locks)))
        extra = ""
        if self.inconsistent:
            extra = " (%d of %d sites locked)" % (self.n_locked,
                                                  self.n_total)
        return "%s: %s%s" % (self.display_name(), self.verdict, extra)


class GuardReport:
    """Result of :func:`infer_guards`."""

    __slots__ = ("globals_", "locals_", "has_wild_write", "has_wild_read",
                 "sync_names")

    def __init__(self, globals_, locals_, has_wild_write, has_wild_read,
                 sync_names):
        self.globals_ = globals_    # name -> VarGuard
        self.locals_ = locals_      # (func, name) -> VarGuard
        self.has_wild_write = has_wild_write
        self.has_wild_read = has_wild_read
        self.sync_names = sync_names

    def verdict_for(self, func_name, base_name):
        """VarGuard of a base variable as seen from ``func_name``."""
        vg = self.locals_.get((func_name, base_name))
        if vg is not None:
            return vg
        return self.globals_.get(base_name)

    def all_guards(self):
        for name in sorted(self.globals_):
            yield self.globals_[name]
        for key in sorted(self.locals_):
            yield self.locals_[key]


def _addr_taken_names(func):
    taken = set()
    for stmt in ast.statements(func.body):
        for node in ast.walk(stmt):
            if isinstance(node, ast.AddrOf):
                if isinstance(node.operand, ast.Var):
                    taken.add(node.operand.name)
                elif isinstance(node.operand, ast.Index):
                    taken.add(node.operand.base.name)
    return taken


def infer_guards(program, pinfo, lock_analysis, func_data, points_to=None,
                 extra_sync_vars=()):
    """Classify every accessed shared variable.

    ``func_data`` maps function name to ``(lsv, pair_result)`` as computed
    by the annotator *before* annotation insertion; the pair results
    already carry every shared access with its statement uid, which the
    lock analysis translates into a must-hold lockset.
    """
    global_names = set(pinfo.global_sizes)

    # synchronization names: lock tokens, sync builtin targets, spin flags
    sync_names = set(extra_sync_vars)
    for fr in lock_analysis.per_func.values():
        for events in fr.node_events.values():
            for ev in events:
                if ev.kind in ("lock", "unlock") and ev.token:
                    sync_names.add(token_base(ev.token))
    for lsv, _ in func_data.values():
        sync_names.update(lsv.sync_vars)

    sites = {}          # ("global", name) or (func, name) -> [AccessSite]
    wild_reads = []
    wild_writes = []
    foreign_sites = []  # derefs of heap / foreign-local targets

    def add_site(func_name, name, line, kind, locks):
        if name in global_names:
            key = ("global", name)
        else:
            key = (func_name, name)
        sites.setdefault(key, []).append(
            AccessSite(func_name, line, kind, locks))

    for func in program.funcs:
        fname = func.name
        if fname not in func_data:
            continue
        _, pair_result = func_data[fname]
        pts = points_to.get(fname) if points_to else None
        for acc in sorted(pair_result.accesses.values(),
                          key=lambda a: a.aid):
            locks = lock_analysis.global_must_at(fname, acc.stmt_uid)
            base = acc.var.split("[")[0]
            if base.startswith("*"):
                ptr = base.lstrip("*")
                targets = pts.targets(ptr) if pts is not None else frozenset()
                # sorted: the frozenset's iteration order varies with
                # PYTHONHASHSEED, and site order feeds diagnostics
                named = sorted(t for t in targets
                               if not t.startswith("heap@"))
                if not targets:
                    # wild pointer: could touch anything
                    site = AccessSite(fname, acc.line, acc.kind, locks)
                    if acc.kind == AccessKind.WRITE:
                        wild_writes.append(site)
                    else:
                        wild_reads.append(site)
                elif len(named) < len(targets):
                    # heap or foreign-local targets: may reach any
                    # address-taken stack slot, but never a global's name
                    foreign_sites.append(
                        AccessSite(fname, acc.line, acc.kind, locks))
                for target in named:
                    add_site(fname, target, acc.line, acc.kind, locks)
                continue
            add_site(fname, base, acc.line, acc.kind, locks)

    has_wild_write = bool(wild_writes)
    has_wild_read = bool(wild_reads)

    addr_taken = {f.name: _addr_taken_names(f) for f in program.funcs}

    globals_ = {}
    locals_ = {}
    for key in sorted(sites):
        scope, name = ("global", key[1]) if key[0] == "global" \
            else (key[0], key[1])
        var_sites = tuple(sites[key])
        n_total = len(var_sites)
        n_locked = sum(1 for s in var_sites if s.locks)
        # heap/foreign-target derefs may reach any address-taken stack
        # slot, so they count as sites of every classified local
        reaching = (list(var_sites) if scope == "global"
                    else list(var_sites) + foreign_sites)
        has_writes = any(s.kind == AccessKind.WRITE for s in reaching)

        if name in sync_names:
            verdict, locks = SYNC, frozenset()
        elif scope != "global" and name not in addr_taken.get(scope, ()) \
                and not has_wild_write:
            # a stack slot whose address never escapes its function:
            # no other thread can reach it
            verdict, locks = THREAD_LOCAL, frozenset()
        elif not has_writes and not has_wild_write:
            verdict, locks = READ_SHARED, frozenset()
        else:
            common = None
            for s in reaching:
                common = s.locks if common is None else (common & s.locks)
            for s in wild_writes + wild_reads:
                # a wild access may touch this variable too
                common = s.locks if common is None else (common & s.locks)
            if common:
                verdict, locks = GUARDED_BY, frozenset(common)
            else:
                verdict, locks = UNPROTECTED, frozenset()

        vg = VarGuard(name, scope, verdict, locks, var_sites, n_locked,
                      n_total, has_writes)
        if scope == "global":
            globals_[name] = vg
        else:
            locals_[(scope, name)] = vg

    return GuardReport(globals_, locals_, has_wild_write, has_wild_read,
                       frozenset(sync_names))
