"""Shared lock modeling: one description of what a lock event looks like.

Both the static lock-discipline analysis (:mod:`repro.analysis.locks`)
and the dynamic checkers (:mod:`repro.baselines.lockset`, the
static-vs-dynamic property harness) need to recognize lock acquisitions
and releases. Keeping the recognition rules in one place guarantees the
two sides agree on what counts as a lock:

- **Statically**, a lock is the argument of a ``lock(&m)`` /
  ``unlock(&m)`` builtin call. :func:`lock_ref` names it with a *token*:
  ``"m"`` for a plain variable, ``"a[3]"`` for a constant-index array
  element, and the imprecise tokens ``"a[*]"`` / ``"?"`` when the element
  or the lock itself cannot be named at analysis time.
- **Dynamically**, the machine implements ``lock``/``unlock`` on ordinary
  memory words: an acquire writes ``tid + 1`` into the lock word, a
  release writes ``0``. :class:`HeldLockTracker` reconstructs per-thread
  held-lock sets from either the observed word transitions (what the
  Eraser-style baseline sees) or the executed sync opcodes (what the
  property harness sees).
"""

from repro.minic import ast

#: Token for a lock whose identity cannot be determined statically
#: (``lock(p)`` through a pointer value, computed addresses, ...).
UNKNOWN_LOCK = "?"

#: Names of the builtins that acquire / release a lock word.
LOCK_BUILTIN = "lock"
UNLOCK_BUILTIN = "unlock"


class LockRef:
    """Static name of one lock operand.

    ``token`` is the name used in lockset lattices; ``precise`` is True
    when the token denotes exactly one memory word (so must-hold facts
    about it are meaningful).
    """

    __slots__ = ("token", "precise")

    def __init__(self, token, precise):
        self.token = token
        self.precise = precise

    def __repr__(self):
        return "LockRef(%r%s)" % (self.token,
                                  "" if self.precise else ", imprecise")


def lock_ref(call):
    """Name the lock operand of a ``lock``/``unlock`` Call node.

    Returns a :class:`LockRef`. The recognizable shapes mirror the
    machine's address computation: ``&m`` names the word of ``m`` and
    ``&a[K]`` with a literal index names one array element. Everything
    else — variable indices, pointer values, nested expressions — gets an
    imprecise token (``"a[*]"`` when at least the array is known,
    :data:`UNKNOWN_LOCK` otherwise).
    """
    arg = call.args[0] if call.args else None
    if isinstance(arg, ast.AddrOf):
        op = arg.operand
        if isinstance(op, ast.Var):
            return LockRef(op.name, True)
        if isinstance(op, ast.Index) and isinstance(op.base, ast.Var):
            if isinstance(op.index, ast.IntLit):
                return LockRef("%s[%d]" % (op.base.name, op.index.value),
                               True)
            return LockRef(op.base.name + "[*]", False)
    return LockRef(UNKNOWN_LOCK, False)


def token_base(token):
    """Base variable name of a lock token (``"a[3]"`` -> ``"a"``)."""
    return token.split("[")[0]


def is_lock_call(call):
    return isinstance(call, ast.Call) and call.name == LOCK_BUILTIN


def is_unlock_call(call):
    return isinstance(call, ast.Call) and call.name == UNLOCK_BUILTIN


class HeldLockTracker:
    """Per-thread held-lock sets reconstructed from a dynamic trace.

    Two observation modes, matching the two dynamic consumers:

    - :meth:`observe_word` classifies an access by the lock word's
      post-state (``tid + 1`` means this thread owns it, ``0`` a release
      of a word we held). This is what a software checker that only sees
      addresses and values can do.
    - :meth:`observe_sync_op` classifies by the executed opcode name
      (``"lock"``/``"unlock"``), available to harnesses that can see the
      instruction stream.

    Both return ``"acquire"``, ``"release"`` or ``None``.
    """

    __slots__ = ("held",)

    def __init__(self):
        self.held = {}  # tid -> set of lock-word addresses

    def locks_of(self, tid):
        held = self.held.get(tid)
        if held is None:
            held = set()
            self.held[tid] = held
        return held

    def observe_word(self, tid, addr, post_value):
        held = self.locks_of(tid)
        if post_value == tid + 1:
            if addr not in held:
                held.add(addr)
                return "acquire"
            return None
        if post_value == 0 and addr in held:
            held.discard(addr)
            return "release"
        return None

    def observe_sync_op(self, tid, op_name, addr, is_write):
        """Classify by opcode. A contended (blocked) LOCK performs only a
        read access, so requiring ``is_write`` keeps failed acquires out
        of the held set."""
        held = self.locks_of(tid)
        if op_name == LOCK_BUILTIN and is_write:
            held.add(addr)
            return "acquire"
        if op_name == UNLOCK_BUILTIN and is_write:
            held.discard(addr)
            return "release"
        return None
