"""Builtin functions available to mini-C programs.

These model the C runtime and pthread primitives the paper's applications
use. Synchronization builtins operate on ordinary memory words, so locks
and flags are data addresses that hardware watchpoints can observe — which
is exactly why the paper's fourth optimization (whitelisting
synchronization variables) matters.
"""

# name -> (arity, has_result)
BUILTINS = {
    # pthread-style synchronization. lock/unlock take the *address* of a
    # lock word.
    "lock": (1, False),
    "unlock": (1, False),
    # Atomic compare-and-swap on a memory word; returns 1 on success.
    "cas": (3, True),
    # Atomic fetch-and-add; returns the previous value.
    "atomic_add": (2, True),
    # Thread control.
    "sleep": (1, False),  # argument in simulated nanoseconds
    "yield": (0, False),
    "join": (0, False),  # wait for all threads spawned by this thread
    # Observability: append a word to the program's output channel.
    "output": (1, False),
    # Word-granularity bump allocator; returns the address of n fresh words.
    "alloc": (1, True),
    # Deterministic per-thread pseudo-random integer in [0, n).
    "rand": (1, True),
    # Current thread id.
    "tid": (0, True),
    # Single-instruction memory-to-memory word copy: copyword(dst, src).
    # Exercises the "remote read into another memory location" undo path
    # of Section 3.3.
    "copyword": (2, False),
    # Indirect call through a function pointer stored in memory:
    # invoke(addr) calls the zero-argument function whose index is stored
    # at mem[addr]. Exercises the paper's CALL-with-indirect-memory-operand
    # special case in the rollback engine.
    "invoke": (1, False),
    # funcref(f) yields the index of function f, suitable for storing in
    # memory and later calling via invoke().
    "funcref": (1, True),
}


def is_builtin(name):
    return name in BUILTINS


def arity(name):
    return BUILTINS[name][0]


def has_result(name):
    return BUILTINS[name][1]


#: Builtins that return a pointer (used by LSV seeding: "any pointers
#: returned from a called subroutine" are shared — alloc hands out heap
#: memory that may be published to other threads).
POINTER_RETURNING = frozenset({"alloc"})

#: Builtins whose address argument is a synchronization variable. Used by
#: the fourth optimization to seed the syncvar whitelist.
SYNC_BUILTINS = frozenset({"lock", "unlock", "cas", "atomic_add"})
