"""Recursive-descent parser for mini-C.

Grammar (informal)::

    program   := (global | func)*
    global    := 'int' '*'? ID ('[' INT ']')? ('=' ('-')? INT)? ';'
    func      := ('void'|'int') ID '(' params? ')' block
    param     := 'int' '*'? ID
    stmt      := decl | 'if' ... | 'while' ... | 'for' ... | 'return' ...
               | 'break' ';' | 'continue' ';' | 'spawn' ID '(' args ')' ';'
               | block | lvalue '=' expr ';' | expr ';'

``for (init; cond; step) body`` is desugared to
``{ init; while (cond) { body; step; } }``. Consequently ``continue``
inside a ``for`` loop skips the step expression; workloads avoid that
combination.
"""

from repro.errors import ParseError
from repro.minic import ast
from repro.minic.lexer import tokenize


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead=0):
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind, value=None):
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind, value=None):
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind, value=None):
        tok = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise ParseError(
                "expected %r, found %r" % (want, tok.value), tok.line, tok.col
            )
        return self.next()

    def error(self, msg):
        tok = self.peek()
        raise ParseError(msg, tok.line, tok.col)

    # -- top level -----------------------------------------------------------

    def parse_program(self):
        globals_ = []
        funcs = []
        while not self.at("eof"):
            if self.at("kw", "void"):
                funcs.append(self.parse_func())
            elif self.at("kw", "int"):
                # 'int' ID '(' -> function returning int; otherwise global.
                offset = 1
                if self.peek(1).kind == "op" and self.peek(1).value == "*":
                    offset = 2
                if (
                    self.peek(offset).kind == "id"
                    and self.peek(offset + 1).kind == "op"
                    and self.peek(offset + 1).value == "("
                ):
                    funcs.append(self.parse_func())
                else:
                    globals_.append(self.parse_global())
            else:
                self.error("expected declaration or function")
        return ast.Program(globals_, funcs)

    def parse_global(self):
        tok = self.expect("kw", "int")
        is_ptr = bool(self.accept("op", "*"))
        name = self.expect("id").value
        size = 1
        is_array = False
        if self.accept("op", "["):
            size = self.expect("int").value
            self.expect("op", "]")
            if size <= 0:
                self.error("array size must be positive")
            is_array = True
        init = None
        if self.accept("op", "="):
            neg = bool(self.accept("op", "-"))
            value = self.expect("int").value
            init = -value if neg else value
        self.expect("op", ";")
        return ast.GlobalVar(name, is_ptr, size, init, tok.line, tok.col,
                             is_array=is_array)

    def parse_func(self):
        tok = self.next()  # 'void' or 'int'
        self.accept("op", "*")
        name = self.expect("id").value
        self.expect("op", "(")
        params = []
        if not self.at("op", ")"):
            while True:
                self.expect("kw", "int")
                is_ptr = bool(self.accept("op", "*"))
                pname = self.expect("id").value
                params.append((pname, is_ptr))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDef(name, params, body, tok.line, tok.col)

    # -- statements ----------------------------------------------------------

    def parse_block(self):
        tok = self.expect("op", "{")
        stmts = []
        while not self.at("op", "}"):
            if self.at("eof"):
                self.error("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return ast.Block(stmts, tok.line, tok.col)

    def parse_stmt(self):
        if self.at("op", "{"):
            return self.parse_block()
        if self.at("kw", "int"):
            return self.parse_decl()
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "while"):
            return self.parse_while()
        if self.at("kw", "for"):
            return self.parse_for()
        if self.at("kw", "return"):
            tok = self.next()
            value = None
            if not self.at("op", ";"):
                value = self.parse_expr()
            self.expect("op", ";")
            return ast.Return(value, tok.line, tok.col)
        if self.at("kw", "break"):
            tok = self.next()
            self.expect("op", ";")
            return ast.Break(tok.line, tok.col)
        if self.at("kw", "continue"):
            tok = self.next()
            self.expect("op", ";")
            return ast.Continue(tok.line, tok.col)
        if self.at("kw", "spawn"):
            return self.parse_spawn()
        return self.parse_assign_or_expr()

    def parse_decl(self):
        tok = self.expect("kw", "int")
        is_ptr = bool(self.accept("op", "*"))
        name = self.expect("id").value
        size = 1
        is_array = False
        if self.accept("op", "["):
            size = self.expect("int").value
            self.expect("op", "]")
            if size <= 0:
                self.error("array size must be positive")
            is_array = True
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return ast.Decl(name, is_ptr, size, init, tok.line, tok.col,
                        is_array=is_array)

    def parse_if(self):
        tok = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        els = None
        if self.accept("kw", "else"):
            els = self.parse_stmt()
        return ast.If(cond, then, els, tok.line, tok.col)

    def parse_while(self):
        tok = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.While(cond, body, tok.line, tok.col)

    def parse_for(self):
        tok = self.expect("kw", "for")
        self.expect("op", "(")
        init = None
        if not self.at("op", ";"):
            init = self.parse_simple_stmt()
        self.expect("op", ";")
        cond = ast.IntLit(1, tok.line, tok.col)
        if not self.at("op", ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step = None
        if not self.at("op", ")"):
            step = self.parse_simple_stmt()
        self.expect("op", ")")
        body = self.parse_stmt()
        loop_body = [body]
        if step is not None:
            loop_body.append(step)
        loop = ast.While(cond, ast.Block(loop_body, tok.line, tok.col), tok.line, tok.col)
        outer = [init] if init is not None else []
        outer.append(loop)
        return ast.Block(outer, tok.line, tok.col)

    def parse_simple_stmt(self):
        """Assignment or expression without the trailing semicolon
        (used for `for` headers)."""
        if self.at("kw", "int"):
            self.error("declarations are not allowed in for headers")
        expr = self.parse_expr()
        if self.accept("op", "="):
            self._require_lvalue(expr)
            value = self.parse_expr()
            return ast.Assign(expr, value, expr.line, expr.col)
        return ast.ExprStmt(expr, expr.line, expr.col)

    def parse_spawn(self):
        tok = self.expect("kw", "spawn")
        name = self.expect("id").value
        self.expect("op", "(")
        args = []
        if not self.at("op", ")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.Spawn(name, args, tok.line, tok.col)

    def parse_assign_or_expr(self):
        stmt = self.parse_simple_stmt()
        self.expect("op", ";")
        return stmt

    def _require_lvalue(self, expr):
        if not isinstance(expr, (ast.Var, ast.Deref, ast.Index)):
            raise ParseError(
                "assignment target must be a variable, *pointer or array element",
                expr.line,
                expr.col,
            )

    # -- expressions ---------------------------------------------------------

    def parse_expr(self):
        return self.parse_or()

    def _binary_level(self, ops, parse_next):
        left = parse_next()
        while self.peek().kind == "op" and self.peek().value in ops:
            op = self.next().value
            right = parse_next()
            left = ast.Binary(op, left, right, left.line, left.col)
        return left

    def parse_or(self):
        return self._binary_level(("||",), self.parse_and)

    def parse_and(self):
        return self._binary_level(("&&",), self.parse_eq)

    def parse_eq(self):
        return self._binary_level(("==", "!="), self.parse_rel)

    def parse_rel(self):
        return self._binary_level(("<", "<=", ">", ">="), self.parse_add)

    def parse_add(self):
        return self._binary_level(("+", "-"), self.parse_mul)

    def parse_mul(self):
        return self._binary_level(("*", "/", "%"), self.parse_unary)

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("-", "!"):
            self.next()
            return ast.Unary(tok.value, self.parse_unary(), tok.line, tok.col)
        if tok.kind == "op" and tok.value == "*":
            self.next()
            return ast.Deref(self.parse_unary(), tok.line, tok.col)
        if tok.kind == "op" and tok.value == "&":
            self.next()
            operand = self.parse_unary()
            if not isinstance(operand, (ast.Var, ast.Index)):
                raise ParseError(
                    "can only take the address of a variable or array element",
                    tok.line,
                    tok.col,
                )
            return ast.AddrOf(operand, tok.line, tok.col)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while self.at("op", "["):
            if not isinstance(expr, ast.Var):
                self.error("only named arrays may be indexed")
            self.next()
            index = self.parse_expr()
            self.expect("op", "]")
            expr = ast.Index(expr, index, expr.line, expr.col)
        return expr

    def parse_primary(self):
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return ast.IntLit(tok.value, tok.line, tok.col)
        if tok.kind == "id":
            self.next()
            if self.at("op", "("):
                self.next()
                args = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(tok.value, args, tok.line, tok.col)
            return ast.Var(tok.value, tok.line, tok.col)
        if tok.kind == "op" and tok.value == "(":
            self.next()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        self.error("expected expression")


def parse(source):
    """Parse mini-C ``source`` text into a :class:`repro.minic.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()
