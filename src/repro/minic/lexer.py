"""Hand-written lexer for mini-C."""

from repro.errors import LexError

KEYWORDS = {
    "int",
    "void",
    "if",
    "else",
    "while",
    "for",
    "break",
    "continue",
    "return",
    "spawn",
}

# Longest-match-first operator table.
OPERATORS = [
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
]


class Token:
    """A lexical token.

    ``kind`` is one of ``"int"`` (integer literal), ``"id"``, ``"kw"``,
    ``"op"`` or ``"eof"``. ``value`` is the literal integer, the identifier
    text, the keyword text, or the operator text respectively.
    """

    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind, value, line, col):
        self.kind = kind
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%r, %r, %d:%d)" % (self.kind, self.value, self.line, self.col)

    def __eq__(self, other):
        return (
            isinstance(other, Token)
            and self.kind == other.kind
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.kind, self.value))


def tokenize(source):
    """Tokenize mini-C ``source`` into a list of Tokens ending with eof.

    Supports ``//`` line comments and ``/* ... */`` block comments.
    """
    tokens = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg):
        raise LexError(msg, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            tokens.append(Token("int", int(text), line, col))
            col += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line, col))
            col += len(text)
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            error("unexpected character %r" % ch)
    tokens.append(Token("eof", None, line, col))
    return tokens
