"""Semantic checks for mini-C programs.

The language is word-typed (every value is a machine word; pointers are
words holding addresses), so "type checking" here is name resolution,
arity checking and structural well-formedness. The checker also records,
for each function, its local declarations — the compiler and the static
annotator both consume this.
"""

from repro.errors import TypeError_
from repro.minic import ast
from repro.minic.builtins import BUILTINS, is_builtin


class FuncInfo:
    """Resolved information about one function."""

    __slots__ = ("name", "params", "locals", "local_sizes", "ptr_names",
                 "array_names")

    def __init__(self, name, params):
        self.name = name
        self.params = list(params)
        self.locals = []  # declaration order
        self.local_sizes = {}  # name -> words
        self.ptr_names = set(name for name, is_ptr in params if is_ptr)
        self.array_names = set()


class ProgramInfo:
    """Resolved information about a whole program."""

    __slots__ = ("program", "funcs", "global_sizes", "global_ptrs",
                 "global_arrays")

    def __init__(self, program):
        self.program = program
        self.funcs = {}
        self.global_sizes = {}
        self.global_ptrs = set()
        self.global_arrays = set()


def check(program):
    """Validate ``program`` and return a :class:`ProgramInfo`.

    Raises :class:`repro.errors.TypeError_` on any semantic error.
    """
    info = ProgramInfo(program)

    for g in program.globals:
        if g.name in info.global_sizes:
            raise TypeError_("duplicate global %r" % g.name, g.line, g.col)
        if is_builtin(g.name):
            raise TypeError_("global %r shadows a builtin" % g.name, g.line, g.col)
        info.global_sizes[g.name] = g.size
        if g.is_ptr:
            info.global_ptrs.add(g.name)
        if g.is_array:
            info.global_arrays.add(g.name)

    func_names = set()
    for f in program.funcs:
        if f.name in func_names:
            raise TypeError_("duplicate function %r" % f.name, f.line, f.col)
        if is_builtin(f.name):
            raise TypeError_("function %r shadows a builtin" % f.name, f.line, f.col)
        if f.name in info.global_sizes:
            raise TypeError_(
                "function %r collides with a global" % f.name, f.line, f.col
            )
        func_names.add(f.name)

    if "main" not in func_names:
        raise TypeError_("program has no main()")
    if len(program.func("main").params) != 0:
        main = program.func("main")
        raise TypeError_("main() must take no parameters", main.line, main.col)

    for f in program.funcs:
        info.funcs[f.name] = _check_func(f, info, func_names)
    return info


def _check_func(func, info, func_names):
    finfo = FuncInfo(func.name, func.params)
    seen = set()
    for pname, _ in func.params:
        if pname in seen:
            raise TypeError_(
                "duplicate parameter %r in %s" % (pname, func.name),
                func.line,
                func.col,
            )
        seen.add(pname)

    scope = set(seen)

    def check_stmt(stmt, in_loop):
        if isinstance(stmt, ast.Decl):
            if stmt.name in scope:
                raise TypeError_(
                    "duplicate declaration of %r in %s" % (stmt.name, func.name),
                    stmt.line,
                    stmt.col,
                )
            if is_builtin(stmt.name):
                raise TypeError_(
                    "local %r shadows a builtin" % stmt.name, stmt.line, stmt.col
                )
            if stmt.init is not None:
                check_expr(stmt.init)
            scope.add(stmt.name)
            finfo.locals.append(stmt.name)
            finfo.local_sizes[stmt.name] = stmt.size
            if stmt.is_ptr:
                finfo.ptr_names.add(stmt.name)
            if stmt.is_array:
                finfo.array_names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            check_lvalue(stmt.target)
            check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            check_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                check_stmt(s, in_loop)
        elif isinstance(stmt, ast.If):
            check_expr(stmt.cond)
            check_stmt(stmt.then, in_loop)
            if stmt.els is not None:
                check_stmt(stmt.els, in_loop)
        elif isinstance(stmt, ast.While):
            check_expr(stmt.cond)
            check_stmt(stmt.body, True)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if not in_loop:
                raise TypeError_(
                    "%s outside of loop" % type(stmt).__name__.lower(),
                    stmt.line,
                    stmt.col,
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                check_expr(stmt.value)
        elif isinstance(stmt, ast.Spawn):
            if stmt.func not in func_names:
                raise TypeError_(
                    "spawn of unknown function %r" % stmt.func, stmt.line, stmt.col
                )
            target = info.program.func(stmt.func)
            if len(stmt.args) != len(target.params):
                raise TypeError_(
                    "spawn %s: expected %d args, got %d"
                    % (stmt.func, len(target.params), len(stmt.args)),
                    stmt.line,
                    stmt.col,
                )
            for a in stmt.args:
                check_expr(a)
        elif isinstance(stmt, (ast.BeginAtomic, ast.EndAtomic, ast.ClearAr,
                               ast.ShadowStore)):
            pass  # inserted by the annotator; trusted
        else:
            raise TypeError_("unknown statement %r" % stmt, stmt.line, stmt.col)

    def check_lvalue(expr):
        if isinstance(expr, ast.Var):
            resolve(expr)
        elif isinstance(expr, ast.Deref):
            check_expr(expr.operand)
        elif isinstance(expr, ast.Index):
            resolve(expr.base)
            check_expr(expr.index)
        else:
            raise TypeError_("invalid assignment target", expr.line, expr.col)

    def resolve(var):
        if var.name not in scope and var.name not in info.global_sizes:
            raise TypeError_(
                "undefined variable %r in %s" % (var.name, func.name),
                var.line,
                var.col,
            )

    def check_expr(expr):
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.Var):
            resolve(expr)
            return
        if isinstance(expr, ast.Unary):
            check_expr(expr.operand)
            return
        if isinstance(expr, ast.Deref):
            check_expr(expr.operand)
            return
        if isinstance(expr, ast.AddrOf):
            check_lvalue(expr.operand)
            return
        if isinstance(expr, ast.Index):
            resolve(expr.base)
            check_expr(expr.index)
            return
        if isinstance(expr, ast.Binary):
            check_expr(expr.left)
            check_expr(expr.right)
            return
        if isinstance(expr, ast.Call):
            if expr.name == "funcref":
                if len(expr.args) != 1 or not isinstance(expr.args[0], ast.Var):
                    raise TypeError_(
                        "funcref expects a single function name", expr.line, expr.col
                    )
                if expr.args[0].name not in func_names:
                    raise TypeError_(
                        "funcref of unknown function %r" % expr.args[0].name,
                        expr.line,
                        expr.col,
                    )
                return
            if is_builtin(expr.name):
                want = BUILTINS[expr.name][0]
                if len(expr.args) != want:
                    raise TypeError_(
                        "builtin %s expects %d args, got %d"
                        % (expr.name, want, len(expr.args)),
                        expr.line,
                        expr.col,
                    )
            elif expr.name in func_names:
                target = info.program.func(expr.name)
                if len(expr.args) != len(target.params):
                    raise TypeError_(
                        "call %s: expected %d args, got %d"
                        % (expr.name, len(target.params), len(expr.args)),
                        expr.line,
                        expr.col,
                    )
            else:
                raise TypeError_(
                    "call to unknown function %r" % expr.name, expr.line, expr.col
                )
            for a in expr.args:
                check_expr(a)
            return
        raise TypeError_("unknown expression %r" % expr, expr.line, expr.col)

    check_stmt(func.body, False)
    return finfo
