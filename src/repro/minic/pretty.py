"""Pretty-printer for mini-C ASTs.

Round-trips parsed programs and renders annotator output (including the
``begin_atomic``/``end_atomic``/``clear_ar`` pseudo-statements) in a form
matching the paper's figures, which is useful for inspecting what the
static annotator produced.
"""

from repro.minic import ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def expr_str(expr, parent_prec=0):
    """Render an expression with minimal parentheses."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Unary):
        return expr.op + expr_str(expr.operand, 7)
    if isinstance(expr, ast.Deref):
        return "*" + expr_str(expr.operand, 7)
    if isinstance(expr, ast.AddrOf):
        return "&" + expr_str(expr.operand, 7)
    if isinstance(expr, ast.Index):
        return "%s[%s]" % (expr_str(expr.base, 7), expr_str(expr.index))
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        text = "%s %s %s" % (
            expr_str(expr.left, prec),
            expr.op,
            expr_str(expr.right, prec + 1),
        )
        if prec < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, ast.Call):
        return "%s(%s)" % (expr.name, ", ".join(expr_str(a) for a in expr.args))
    raise TypeError("cannot print %r" % expr)


def _decl_str(name, is_ptr, size, init):
    star = "*" if is_ptr else ""
    dims = "[%d]" % size if size != 1 else ""
    text = "int %s%s%s" % (star, name, dims)
    if init is not None:
        text += " = %s" % init
    return text + ";"


def _stmt_lines(stmt, indent):
    pad = "    " * indent
    if isinstance(stmt, ast.Decl):
        init = expr_str(stmt.init) if stmt.init is not None else None
        return [pad + _decl_str(stmt.name, stmt.is_ptr, stmt.size, init)]
    if isinstance(stmt, ast.Assign):
        return [pad + "%s = %s;" % (expr_str(stmt.target), expr_str(stmt.value))]
    if isinstance(stmt, ast.ExprStmt):
        return [pad + expr_str(stmt.expr) + ";"]
    if isinstance(stmt, ast.Block):
        lines = [pad + "{"]
        for s in stmt.stmts:
            lines.extend(_stmt_lines(s, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.If):
        lines = [pad + "if (%s)" % expr_str(stmt.cond)]
        lines.extend(_stmt_lines(_as_block(stmt.then), indent))
        if stmt.els is not None:
            lines.append(pad + "else")
            lines.extend(_stmt_lines(_as_block(stmt.els), indent))
        return lines
    if isinstance(stmt, ast.While):
        lines = [pad + "while (%s)" % expr_str(stmt.cond)]
        lines.extend(_stmt_lines(_as_block(stmt.body), indent))
        return lines
    if isinstance(stmt, ast.Break):
        return [pad + "break;"]
    if isinstance(stmt, ast.Continue):
        return [pad + "continue;"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + "return %s;" % expr_str(stmt.value)]
    if isinstance(stmt, ast.Spawn):
        return [
            pad
            + "spawn %s(%s);" % (stmt.func, ", ".join(expr_str(a) for a in stmt.args))
        ]
    if isinstance(stmt, ast.BeginAtomic):
        return [pad + "begin_atomic(%d, &%s);" % (stmt.ar_id, expr_str(stmt.addr, 7))]
    if isinstance(stmt, ast.EndAtomic):
        return [pad + "end_atomic(%d);" % stmt.ar_id]
    if isinstance(stmt, ast.ClearAr):
        return [pad + "clear_ar();"]
    if isinstance(stmt, ast.ShadowStore):
        return [pad + "__shadow_store(%d, &%s);" % (stmt.ar_id, expr_str(stmt.addr, 7))]
    raise TypeError("cannot print %r" % stmt)


def _as_block(stmt):
    if isinstance(stmt, ast.Block):
        return stmt
    return ast.Block([stmt], stmt.line, stmt.col)


def pretty(program):
    """Render a whole program (or a single FuncDef) to mini-C source text."""
    if isinstance(program, ast.FuncDef):
        return "\n".join(_func_lines(program))
    lines = []
    for g in program.globals:
        init = str(g.init) if g.init is not None else None
        lines.append(_decl_str(g.name, g.is_ptr, g.size, init))
    if program.globals:
        lines.append("")
    for f in program.funcs:
        lines.extend(_func_lines(f))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _func_lines(func):
    params = ", ".join(
        "int %s%s" % ("*" if is_ptr else "", name) for name, is_ptr in func.params
    )
    lines = ["void %s(%s)" % (func.name, params)]
    lines.extend(_stmt_lines(func.body, 0))
    return lines
