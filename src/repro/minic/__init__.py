"""Mini-C front end.

Kivati protects programs written in C. This subpackage implements a small
C-like language ("mini-C") that is rich enough to express the paper's
examples (Figures 1, 3, 4 and 5), the five application models and the
11-bug corpus: global scalars/arrays/pointers, functions, pointers and
address-of, threads (``spawn``/``join``), and synchronization builtins
(``lock``/``unlock``/``sleep``/``yield_``).
"""

from repro.minic.ast import (
    AccessKind,
    AddrOf,
    Assign,
    BeginAtomic,
    Binary,
    Block,
    Break,
    Call,
    ClearAr,
    Continue,
    Decl,
    Deref,
    EndAtomic,
    ExprStmt,
    FuncDef,
    GlobalVar,
    If,
    Index,
    IntLit,
    Program,
    Return,
    ShadowStore,
    Spawn,
    Unary,
    Var,
    While,
)
from repro.minic.lexer import Token, tokenize
from repro.minic.parser import parse
from repro.minic.pretty import pretty
from repro.minic.typecheck import check

__all__ = [
    "AccessKind",
    "AddrOf",
    "Assign",
    "BeginAtomic",
    "Binary",
    "Block",
    "Break",
    "Call",
    "ClearAr",
    "Continue",
    "Decl",
    "Deref",
    "EndAtomic",
    "ExprStmt",
    "FuncDef",
    "GlobalVar",
    "If",
    "Index",
    "IntLit",
    "Program",
    "Return",
    "ShadowStore",
    "Spawn",
    "Token",
    "Unary",
    "Var",
    "While",
    "check",
    "parse",
    "pretty",
    "tokenize",
]
