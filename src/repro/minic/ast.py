"""AST node definitions for mini-C.

Every node carries a source position and a unique integer ``uid`` assigned
at parse time. The static annotator identifies memory accesses by the uid
of the statement that contains them, so uids must be stable across the
annotation pass (inserted annotation statements receive fresh uids).
"""

import enum
import itertools

_uid_counter = itertools.count(1)


def fresh_uid():
    """Return a new globally unique node id."""
    return next(_uid_counter)


class AccessKind(enum.Enum):
    """Kind of a memory access, as tracked by the annotator and kernel."""

    READ = "R"
    WRITE = "W"

    def __str__(self):
        return self.value


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("line", "col", "uid")

    def __init__(self, line=0, col=0):
        self.line = line
        self.col = col
        self.uid = fresh_uid()

    def children(self):
        """Yield child nodes (used by generic walkers)."""
        return iter(())

    def __repr__(self):
        fields = []
        for slot in self.__slots__:
            if slot in ("line", "col", "uid"):
                continue
            fields.append("%s=%r" % (slot, getattr(self, slot)))
        return "%s(%s)" % (type(self).__name__, ", ".join(fields))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class IntLit(Expr):
    """Integer literal."""

    __slots__ = ("value",)

    def __init__(self, value, line=0, col=0):
        super().__init__(line, col)
        self.value = int(value)


class Var(Expr):
    """Reference to a named variable (global, parameter or local)."""

    __slots__ = ("name",)

    def __init__(self, name, line=0, col=0):
        super().__init__(line, col)
        self.name = name


class Unary(Expr):
    """Unary operation: ``-``, ``!``."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line=0, col=0):
        super().__init__(line, col)
        self.op = op
        self.operand = operand

    def children(self):
        yield self.operand


class Deref(Expr):
    """Pointer dereference ``*e``."""

    __slots__ = ("operand",)

    def __init__(self, operand, line=0, col=0):
        super().__init__(line, col)
        self.operand = operand

    def children(self):
        yield self.operand


class AddrOf(Expr):
    """Address-of an lvalue: ``&x`` or ``&a[i]``."""

    __slots__ = ("operand",)

    def __init__(self, operand, line=0, col=0):
        super().__init__(line, col)
        self.operand = operand

    def children(self):
        yield self.operand


class Index(Expr):
    """Array indexing ``base[idx]`` where ``base`` is a Var."""

    __slots__ = ("base", "index")

    def __init__(self, base, index, line=0, col=0):
        super().__init__(line, col)
        self.base = base
        self.index = index

    def children(self):
        yield self.base
        yield self.index


class Binary(Expr):
    """Binary operation."""

    __slots__ = ("op", "left", "right")

    OPS = ("+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||")

    def __init__(self, op, left, right, line=0, col=0):
        super().__init__(line, col)
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        yield self.left
        yield self.right


class Call(Expr):
    """Function call; ``name`` may be a user function or a builtin."""

    __slots__ = ("name", "args")

    def __init__(self, name, args, line=0, col=0):
        super().__init__(line, col)
        self.name = name
        self.args = list(args)

    def children(self):
        return iter(self.args)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Decl(Stmt):
    """Local declaration: ``int x;`` / ``int x = e;`` / ``int a[n];`` /
    ``int *p;``."""

    __slots__ = ("name", "is_ptr", "size", "init", "is_array")

    def __init__(self, name, is_ptr=False, size=1, init=None, line=0, col=0,
                 is_array=None):
        super().__init__(line, col)
        self.name = name
        self.is_ptr = is_ptr
        self.size = size
        self.init = init
        self.is_array = is_array if is_array is not None else size != 1

    def children(self):
        if self.init is not None:
            yield self.init


class Assign(Stmt):
    """Assignment ``lvalue = expr;`` where lvalue is Var, Deref or Index."""

    __slots__ = ("target", "value")

    def __init__(self, target, value, line=0, col=0):
        super().__init__(line, col)
        self.target = target
        self.value = value

    def children(self):
        yield self.target
        yield self.value


class ExprStmt(Stmt):
    """Expression evaluated for side effects (calls)."""

    __slots__ = ("expr",)

    def __init__(self, expr, line=0, col=0):
        super().__init__(line, col)
        self.expr = expr

    def children(self):
        yield self.expr


class Block(Stmt):
    """Sequence of statements."""

    __slots__ = ("stmts",)

    def __init__(self, stmts=None, line=0, col=0):
        super().__init__(line, col)
        self.stmts = list(stmts or [])

    def children(self):
        return iter(self.stmts)


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els=None, line=0, col=0):
        super().__init__(line, col)
        self.cond = cond
        self.then = then
        self.els = els

    def children(self):
        yield self.cond
        yield self.then
        if self.els is not None:
            yield self.els


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line=0, col=0):
        super().__init__(line, col)
        self.cond = cond
        self.body = body

    def children(self):
        yield self.cond
        yield self.body


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value=None, line=0, col=0):
        super().__init__(line, col)
        self.value = value

    def children(self):
        if self.value is not None:
            yield self.value


class Spawn(Stmt):
    """Create a new thread running ``func(args)``."""

    __slots__ = ("func", "args")

    def __init__(self, func, args, line=0, col=0):
        super().__init__(line, col)
        self.func = func
        self.args = list(args)

    def children(self):
        return iter(self.args)


# ---------------------------------------------------------------------------
# Annotation statements (inserted by the static annotator, not parsed)
# ---------------------------------------------------------------------------


class BeginAtomic(Stmt):
    """``begin_atomic(ar_id, &var, size, watch_kinds, first_kind)``.

    ``addr`` is the lvalue expression whose address is monitored; the
    remaining begin_atomic arguments from the paper (size, remote access
    type to watch for, first local access type) live in the AR registry
    keyed by ``ar_id`` (see :mod:`repro.analysis.arinfo`).
    """

    __slots__ = ("ar_id", "addr")

    def __init__(self, ar_id, addr, line=0, col=0):
        super().__init__(line, col)
        self.ar_id = ar_id
        self.addr = addr

    def children(self):
        yield self.addr


class EndAtomic(Stmt):
    """``end_atomic(second_kind, ar_id)`` — carries the type of the second
    local access at this site, as in the paper."""

    __slots__ = ("ar_id", "second_kind")

    def __init__(self, ar_id, second_kind=None, line=0, col=0):
        super().__init__(line, col)
        self.ar_id = ar_id
        self.second_kind = second_kind if second_kind is not None else AccessKind.READ


class ClearAr(Stmt):
    """``clear_ar()`` — terminate all ARs opened in the current subroutine.

    Inserted at every subroutine exit by the annotator (Section 3.1).
    """

    __slots__ = ()


class ShadowStore(Stmt):
    """Replicate a first local write's value to the Kivati shared page.

    Third optimization of Section 3.4: with local watchpoint delivery
    disabled, the value after the first local write of a W-* AR must still
    be captured for undo, so the annotation pass replicates the write.
    """

    __slots__ = ("ar_id", "addr")

    def __init__(self, ar_id, addr, line=0, col=0):
        super().__init__(line, col)
        self.ar_id = ar_id
        self.addr = addr

    def children(self):
        yield self.addr


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


class GlobalVar(Node):
    """Global variable: scalar, array or pointer."""

    __slots__ = ("name", "is_ptr", "size", "init", "is_array")

    def __init__(self, name, is_ptr=False, size=1, init=None, line=0, col=0,
                 is_array=None):
        super().__init__(line, col)
        self.name = name
        self.is_ptr = is_ptr
        self.size = size
        self.init = init
        self.is_array = is_array if is_array is not None else size != 1


class FuncDef(Node):
    """Function definition. Params are (name, is_ptr) pairs."""

    __slots__ = ("name", "params", "body")

    def __init__(self, name, params, body, line=0, col=0):
        super().__init__(line, col)
        self.name = name
        self.params = list(params)
        self.body = body

    def children(self):
        yield self.body

    @property
    def param_names(self):
        return [name for name, _ in self.params]


class Program(Node):
    """A complete mini-C translation unit."""

    __slots__ = ("globals", "funcs")

    def __init__(self, globals_, funcs, line=0, col=0):
        super().__init__(line, col)
        self.globals = list(globals_)
        self.funcs = list(funcs)

    def children(self):
        yield from self.globals
        yield from self.funcs

    def func(self, name):
        """Return the FuncDef with the given name, or raise KeyError."""
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(name)

    def global_var(self, name):
        """Return the GlobalVar with the given name, or raise KeyError."""
        for g in self.globals:
            if g.name == name:
                return g
        raise KeyError(name)


def walk(node):
    """Yield ``node`` and all descendants in pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def statements(block):
    """Yield every statement nested anywhere inside ``block`` (pre-order)."""
    for node in walk(block):
        if isinstance(node, Stmt):
            yield node
